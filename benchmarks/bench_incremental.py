"""Cold-vs-warm wall-clock benchmark for the snapshot cache.

Builds one world, measures the study three times — uncached (the
baseline), cold through an empty cache directory, and warm against
the snapshot the cold run just wrote — verifies all three results are
identical and that the warm run re-measured nothing, and records the
timings (plus the warm speedup over the uncached baseline) in
``BENCH_incremental.json`` so future perf PRs have a baseline::

    PYTHONPATH=src python benchmarks/bench_incremental.py --domains 20000

The warm run must beat the cold run by at least ``--min-speedup``
(default 2.0) for the benchmark to exit 0; the uncached timing is
recorded as context (it has no store to write or read, so it bounds
the cache's bookkeeping overhead, not its savings).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.core import CacheConfig, MeasurementStudy, RunConfig
from repro.web import EcosystemConfig, WebEcosystem

DEFAULT_OUT = Path(__file__).parent / "BENCH_incremental.json"


def measure(study: MeasurementStudy, config: RunConfig | None = None):
    started = time.perf_counter()
    if config is None:
        result = study.run()
    else:
        result = study.run(config=config)
    return result, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--cache-dir", default=None,
                        help="snapshot directory (default: a fresh tempdir)")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--profile", action="store_true",
                        help="profile the uncached run under cProfile and "
                             "write collapsed stacks next to --out "
                             "(BENCH_incremental.folded)")
    args = parser.parse_args()

    print(f"building world: {args.domains} domains, seed {args.seed} ...")
    build_started = time.perf_counter()
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    build_seconds = time.perf_counter() - build_started
    study = MeasurementStudy.from_ecosystem(world)

    print("uncached run ...")
    if args.profile:
        from repro.obs import profile_report, profile_scope

        with profile_scope() as capture:
            baseline_result, baseline_seconds = measure(study)
        folded_path = Path(args.out).with_suffix(".folded")
        lines = capture.report.write_folded(folded_path)
        print(f"  profile: {folded_path} ({lines} folded stacks)")
        print(profile_report(capture.report, top=10))
    else:
        baseline_result, baseline_seconds = measure(study)
    print(f"  {baseline_seconds:.2f}s")

    with tempfile.TemporaryDirectory() as scratch:
        cache_dir = args.cache_dir or scratch
        config = RunConfig(cache=CacheConfig(cache_dir))

        print(f"cold cached run ({cache_dir}) ...")
        cold_result, cold_seconds = measure(study, config)
        print(f"  {cold_seconds:.2f}s")

        print("warm cached run ...")
        warm_result, warm_seconds = measure(study, config)
        print(f"  {warm_seconds:.2f}s")

    warm_misses = dict(warm_result.statistics.cache_misses_by_stage)
    identical = (
        list(cold_result) == list(baseline_result)
        and list(warm_result) == list(baseline_result)
    )
    nothing_remeasured = not warm_misses
    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    record = {
        "domains": args.domains,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "build_seconds": round(build_seconds, 3),
        "uncached_seconds": round(baseline_seconds, 3),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_speedup": round(speedup, 3),
        "min_speedup": args.min_speedup,
        "warm_cache_hits": warm_result.statistics.cache_hits_total,
        "warm_cache_misses": warm_misses,
        "results_identical": identical,
    }
    Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    ok = identical and nothing_remeasured and speedup >= args.min_speedup
    print(f"wrote {args.out}: warm speedup {speedup:.2f}x "
          f"({'identical' if identical else 'MISMATCH'} results, "
          f"{'no' if nothing_remeasured else 'WARM'} re-measurement)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
