"""Worker-scheduler benchmark: dispatch overhead and fault recovery.

Builds one world, measures the study serially and through the
``workers`` backend (long-lived forked workers, length-prefixed JSON
frames, work stealing), verifies bit-identity, then repeats the
workers run under an injected worker-crash plan to price straggler
re-dispatch.  Records everything in ``BENCH_jobs.json``::

    PYTHONPATH=src python benchmarks/bench_jobs.py --domains 20000 --workers 4

As with ``bench_parallel.py``, the speedup column only means anything
with at least ``--workers`` cores; ``cpu_count`` rides along so the
regression gate can skip the assertion on starved runners.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core import MeasurementStudy, RunConfig
from repro.faults import WORKER_CRASH, FaultPlan, RetryPolicy
from repro.web import EcosystemConfig, WebEcosystem

DEFAULT_OUT = Path(__file__).parent / "BENCH_jobs.json"


def measure(study: MeasurementStudy, config: RunConfig = None):
    started = time.perf_counter()
    result = study.run(config=config)
    return result, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--shard-size", type=int, default=None)
    parser.add_argument("--crash-rate", type=float, default=0.2,
                        help="per-attempt worker-crash probability for "
                             "the fault-recovery leg")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args()

    print(f"building world: {args.domains} domains, seed {args.seed} ...")
    build_started = time.perf_counter()
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    build_seconds = time.perf_counter() - build_started
    study = MeasurementStudy.from_ecosystem(world)

    print("serial run ...")
    serial_result, serial_seconds = measure(study)
    print(f"  {serial_seconds:.2f}s")

    print(f"workers run: {args.workers} workers ...")
    workers_result, workers_seconds = measure(
        study,
        RunConfig(workers=args.workers, mode="workers",
                  shard_size=args.shard_size),
    )
    report = workers_result.scheduler_report
    print(f"  {workers_seconds:.2f}s  "
          f"({report.jobs_total} jobs, {report.stolen} stolen)")

    print(f"faulted workers run: crash rate {args.crash_rate} ...")
    plan = FaultPlan.from_rates(
        {WORKER_CRASH: args.crash_rate}, seed=args.seed, max_consecutive=2
    )
    faulted_result, faulted_seconds = measure(
        study,
        RunConfig(workers=args.workers, mode="workers",
                  shard_size=args.shard_size, faults=plan,
                  retry=RetryPolicy(max_attempts=4)),
    )
    faulted = faulted_result.scheduler_report
    print(f"  {faulted_seconds:.2f}s  "
          f"({faulted.worker_deaths} deaths, "
          f"{faulted.redispatched} re-dispatched)")

    identical = (workers_result == serial_result
                 and faulted_result == serial_result)
    speedup = serial_seconds / workers_seconds if workers_seconds else 0.0
    record = {
        "domains": args.domains,
        "seed": args.seed,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "crash_rate": args.crash_rate,
        "build_seconds": round(build_seconds, 3),
        "serial_seconds": round(serial_seconds, 3),
        "workers_seconds": round(workers_seconds, 3),
        "faulted_seconds": round(faulted_seconds, 3),
        "speedup": round(speedup, 3),
        "jobs_per_second": round(
            report.jobs_total / workers_seconds, 3
        ) if workers_seconds else 0.0,
        "scheduler": report.to_dict(),
        "faulted_scheduler": faulted.to_dict(),
        "results_identical": identical,
    }
    Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    print(f"wrote {args.out}: speedup {speedup:.2f}x "
          f"({'identical' if identical else 'MISMATCH'} results, "
          f"{os.cpu_count()} cores)")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
