"""Serial-vs-parallel wall-clock benchmark for the sharded executor.

Builds one world, measures the study serially and through
``repro.exec`` with N workers, verifies the two results are
identical, and records both timings (plus the speedup) in
``BENCH_parallel.json`` so future perf PRs have a baseline::

    PYTHONPATH=src python benchmarks/bench_parallel.py --domains 20000 --workers 4

The speedup column is only meaningful on a machine with at least
``--workers`` cores; ``cpu_count`` is recorded alongside so a 1-core
CI box doesn't read as a regression.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core import MeasurementStudy, RunConfig
from repro.web import EcosystemConfig, WebEcosystem

DEFAULT_OUT = Path(__file__).parent / "BENCH_parallel.json"


def measure(study: MeasurementStudy, config: RunConfig = None):
    started = time.perf_counter()
    result = study.run(config=config)
    return result, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--mode", default="process",
                        choices=["serial", "thread", "process", "workers"])
    parser.add_argument("--shard-size", type=int, default=None)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--profile", action="store_true",
                        help="profile the serial run under cProfile and "
                             "write collapsed stacks next to --out "
                             "(BENCH_parallel.folded)")
    args = parser.parse_args()

    print(f"building world: {args.domains} domains, seed {args.seed} ...")
    build_started = time.perf_counter()
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    build_seconds = time.perf_counter() - build_started
    study = MeasurementStudy.from_ecosystem(world)

    print("serial run ...")
    if args.profile:
        from repro.obs import profile_report, profile_scope

        with profile_scope() as capture:
            serial_result, serial_seconds = measure(study)
        folded_path = Path(args.out).with_suffix(".folded")
        lines = capture.report.write_folded(folded_path)
        print(f"  profile: {folded_path} ({lines} folded stacks)")
        print(profile_report(capture.report, top=10))
    else:
        serial_result, serial_seconds = measure(study)
    print(f"  {serial_seconds:.2f}s")

    print(f"parallel run: {args.workers} workers, {args.mode} pool ...")
    parallel_result, parallel_seconds = measure(
        study,
        RunConfig(workers=args.workers, mode=args.mode,
                  shard_size=args.shard_size),
    )
    print(f"  {parallel_seconds:.2f}s")

    identical = parallel_result == serial_result
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    record = {
        "domains": args.domains,
        "seed": args.seed,
        "workers": args.workers,
        "mode": args.mode,
        "cpu_count": os.cpu_count(),
        "build_seconds": round(build_seconds, 3),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "results_identical": identical,
    }
    Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    print(f"wrote {args.out}: speedup {speedup:.2f}x "
          f"({'identical' if identical else 'MISMATCH'} results, "
          f"{os.cpu_count()} cores)")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
