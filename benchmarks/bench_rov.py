"""ROV experiment + what-if engine benchmark.

Runs one adoption-inference campaign over the ecosystem topology,
then scores a sweep of adoption futures with the what-if engine,
verifies both replay bit-identically, and records throughput in
``BENCH_rov.json`` so future perf PRs have a baseline::

    PYTHONPATH=src python benchmarks/bench_rov.py --domains 400 --futures 20

``classifications_per_second`` tracks the full campaign cost (seeded
round construction, two propagations per round, candidate-elimination
inference, verdict aggregation); ``futures_per_second`` tracks payload
augmentation, re-validation of every (prefix, origin) pair, and the
seeded hijack replays per future.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.rov import (
    ExperimentSpec,
    RovExperimentRunner,
    WhatIfEngine,
    named_futures,
    sample_futures,
    seeded_enforcers,
)
from repro.web import EcosystemConfig, WebEcosystem

DEFAULT_OUT = Path(__file__).parent / "BENCH_rov.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=400)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--rounds", type=int, default=32)
    parser.add_argument("--vantages", type=int, default=10)
    parser.add_argument("--futures", type=int, default=20)
    parser.add_argument("--samples", type=int, default=10)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args()

    print(f"building ecosystem: {args.domains} domains, seed {args.seed} ...")
    build_started = time.perf_counter()
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    topology = world.topology
    as_count = len(list(topology.asns()))
    enforcing = seeded_enforcers(topology, seed=args.seed)
    build_seconds = time.perf_counter() - build_started
    print(f"  built in {build_seconds:.2f}s: {as_count} ASes, "
          f"{len(enforcing)} enforcing")

    spec = ExperimentSpec(
        rounds=args.rounds, vantage_count=args.vantages, seed=args.seed
    )
    runner = RovExperimentRunner(topology, enforcing, spec)
    print(f"classifying: {args.rounds} rounds x {args.vantages} vantages ...")
    experiment_started = time.perf_counter()
    report = runner.run()
    experiment_seconds = time.perf_counter() - experiment_started
    classifications = len(report.verdicts)
    classifications_per_second = (
        classifications / experiment_seconds if experiment_seconds else 0.0
    )
    print(f"  {experiment_seconds:.2f}s "
          f"({classifications_per_second:.1f} classifications/s), "
          f"snippet {report.snippet_line(enforcing)}")

    futures = named_futures(world) + sample_futures(
        world, args.futures, seed=args.seed
    )
    engine = WhatIfEngine(world, hijack_samples=args.samples, seed=args.seed)
    print(f"scoring {len(futures)} adoption futures ...")
    whatif_started = time.perf_counter()
    deltas = engine.run_futures(futures)
    whatif_seconds = time.perf_counter() - whatif_started
    futures_per_second = (
        len(deltas) / whatif_seconds if whatif_seconds else 0.0
    )
    print(f"  {whatif_seconds:.2f}s ({futures_per_second:.1f} futures/s)")

    print("replaying both from scratch ...")
    replay_report = RovExperimentRunner(topology, enforcing, spec).run()
    replay_engine = WhatIfEngine(
        world, hijack_samples=args.samples, seed=args.seed
    )
    replay_deltas = replay_engine.run_futures(futures)
    identical = (
        replay_report.digest == report.digest
        and [d.to_dict() for d in replay_deltas]
        == [d.to_dict() for d in deltas]
    )

    record = {
        "domains": args.domains,
        "seed": args.seed,
        "ases": as_count,
        "rounds": args.rounds,
        "vantages": args.vantages,
        "futures": len(futures),
        "hijack_samples": args.samples,
        "build_seconds": round(build_seconds, 3),
        "experiment_seconds": round(experiment_seconds, 3),
        "whatif_seconds": round(whatif_seconds, 3),
        "classifications_per_second": round(classifications_per_second, 3),
        "futures_per_second": round(futures_per_second, 3),
        "enforcing_found": report.histogram()["enforcing"],
        "false_positives": len(report.false_positives(enforcing)),
        "verdict_digest": report.digest,
        "replay_identical": identical,
    }
    Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"wrote {args.out}: {classifications_per_second:.1f} "
        f"classifications/s, {futures_per_second:.1f} futures/s "
        f"({'identical' if identical else 'MISMATCH'} replay)"
    )
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
