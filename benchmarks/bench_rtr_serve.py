"""Session-scaling benchmark for the long-lived RTR daemon.

Builds one synthetic VRP world, connects a large router population
(1000 sessions by default), then drives a sequence of world publishes
and records what the push path costs: connect-phase wall time, the
delta-push latency quantiles from :func:`summarize_publishes`, and
the delta-vs-snapshot byte ledger proving incremental serials are
measurably cheaper than re-snapshotting every router each publish::

    PYTHONPATH=src python benchmarks/bench_rtr_serve.py --sessions 1000

The record lands in ``BENCH_rtr_serve.json`` and is gated by
``check_regression.py`` (connect/publish wall times plus the
delta-saving ratio).  Exit status asserts the invariants the daemon
exists to provide: every session ends synchronized at the final
serial, and the diff stream beat the full-snapshot counterfactual.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.rtrd import (
    RTRDaemon,
    RtrdConfig,
    SyntheticVRPWorld,
    summarize_publishes,
)

DEFAULT_OUT = Path(__file__).parent / "BENCH_rtr_serve.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vrps", type=int, default=1_000,
                        help="initial VRP world size")
    parser.add_argument("--sessions", type=int, default=1_000,
                        help="concurrent router sessions to sustain")
    parser.add_argument("--publishes", type=int, default=8,
                        help="world publishes after the initial sync")
    parser.add_argument("--changes", type=int, default=50,
                        help="VRPs churned per publish")
    parser.add_argument("--seed", default="bench-rtr")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--history", type=int, default=16)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--profile", action="store_true",
                        help="profile the publish loop under cProfile and "
                             "write collapsed stacks next to --out "
                             "(BENCH_rtr_serve.folded)")
    args = parser.parse_args()

    print(f"building world: {args.vrps} VRPs, seed {args.seed!r} ...")
    world = SyntheticVRPWorld(args.vrps, seed=args.seed)
    daemon = RTRDaemon(
        RtrdConfig(workers=args.workers, history_limit=args.history)
    )
    daemon.publish(world.vrps())

    print(f"connecting {args.sessions} sessions ...")
    connect_started = time.perf_counter()
    daemon.connect_many(args.sessions)
    connect_seconds = time.perf_counter() - connect_started
    synchronized = len(daemon.manager.synchronized())
    print(f"  {connect_seconds:.2f}s: {synchronized} synchronized "
          f"({synchronized / connect_seconds:.0f} sessions/s)")

    def publish_loop() -> float:
        started = time.perf_counter()
        for _ in range(args.publishes):
            world.advance(args.changes)
            stats = daemon.publish(world.vrps())
            print(f"  serial {stats.serial}: notified {stats.notified}, "
                  f"{stats.pushed_bytes} B pushed in "
                  f"{stats.elapsed_s * 1000:.1f} ms "
                  f"(snapshot would be "
                  f"{stats.snapshot_frame_bytes * stats.notified} B)")
        return time.perf_counter() - started

    print(f"publishing {args.publishes} worlds "
          f"({args.changes} changes each, {args.workers} workers) ...")
    if args.profile:
        from repro.obs import profile_report, profile_scope

        with profile_scope() as capture:
            publish_seconds = publish_loop()
        folded_path = Path(args.out).with_suffix(".folded")
        lines = capture.report.write_folded(folded_path)
        print(f"  profile: {folded_path} ({lines} folded stacks)")
        print(profile_report(capture.report, top=10))
    else:
        publish_seconds = publish_loop()

    push = summarize_publishes(daemon, elapsed_s=publish_seconds)
    all_synchronized = push["synchronized"] == args.sessions
    saved = push["delta_saving_ratio"]
    record = {
        "vrps": args.vrps,
        "sessions": args.sessions,
        "publishes": args.publishes,
        "changes_per_publish": args.changes,
        "workers": args.workers,
        "history_limit": args.history,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "connect_seconds": round(connect_seconds, 3),
        "sessions_per_second": round(args.sessions / connect_seconds, 1),
        "publish_seconds": round(publish_seconds, 3),
        "push": push,
        "converged": daemon.converged,
        "all_synchronized": all_synchronized,
        "deltas_beat_snapshots": saved > 1.0,
    }
    Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"wrote {args.out}: {push['synchronized']}/{args.sessions} "
        f"synchronized at serial {push['serial']}, push p50/p99 "
        f"{push['push_p50_ms']}/{push['push_p99_ms']} ms, "
        f"deltas {saved:.1f}x cheaper than snapshots"
    )
    ok = daemon.converged and all_synchronized and saved > 1.0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
