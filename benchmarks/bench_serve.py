"""Serial-vs-threaded throughput benchmark for the query service.

Builds one world, runs the study once, freezes it into a
:class:`~repro.serve.index.ServingIndex`, generates one Zipf-skewed
query load, and dispatches it twice — serially and on a thread pool —
recording throughput and p50/p99 latency per backend in
``BENCH_serve.json``::

    PYTHONPATH=src python benchmarks/bench_serve.py --domains 5000 --workers 4

Each query pays a simulated IO wait (``--io-wait``, default 0.2 ms)
modelling the network hop of a live deployment; the sleep releases
the GIL, so the thread pool overlaps waits the way it would overlap
real socket reads.  With ``--io-wait 0`` the workload is pure
GIL-bound evaluation and the threaded backend has nothing to overlap
(same caveat the study executor documents for its thread backend).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core import MeasurementStudy
from repro.serve import (
    LoadProfile,
    QueryService,
    ServeConfig,
    ServingIndex,
    generate_load,
    summarize_responses,
)
from repro.web import EcosystemConfig, WebEcosystem

DEFAULT_OUT = Path(__file__).parent / "BENCH_serve.json"


def dispatch(index: ServingIndex, queries, config: ServeConfig):
    service = QueryService(index, config)
    started = time.perf_counter()
    responses = service.run(queries)
    elapsed = time.perf_counter() - started
    return responses, summarize_responses(responses, elapsed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=5_000)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--queries", type=int, default=10_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--io-wait", type=float, default=0.0002,
                        help="simulated per-query IO wait in seconds")
    parser.add_argument("--zipf", type=float, default=1.1)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--profile", action="store_true",
                        help="profile the serial dispatch under cProfile "
                             "and write collapsed stacks next to --out "
                             "(BENCH_serve.folded)")
    args = parser.parse_args()

    print(f"building world: {args.domains} domains, seed {args.seed} ...")
    build_started = time.perf_counter()
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    study = MeasurementStudy.from_ecosystem(world)
    result = study.run()
    index = ServingIndex.build(study, result)
    build_seconds = time.perf_counter() - build_started
    print(f"  {build_seconds:.2f}s: {index!r}")

    queries = generate_load(
        index,
        LoadProfile(
            queries=args.queries, seed=args.seed, zipf_exponent=args.zipf
        ),
    )
    print(f"load: {len(queries)} queries (zipf {args.zipf})")

    print("serial dispatch ...")
    serial_config = ServeConfig(mode="serial", simulated_io_s=args.io_wait)
    if args.profile:
        from repro.obs import profile_report, profile_scope

        with profile_scope() as capture:
            serial_responses, serial = dispatch(index, queries, serial_config)
        folded_path = Path(args.out).with_suffix(".folded")
        lines = capture.report.write_folded(folded_path)
        print(f"  profile: {folded_path} ({lines} folded stacks)")
        print(profile_report(capture.report, top=10))
    else:
        serial_responses, serial = dispatch(index, queries, serial_config)
    print(f"  {serial['elapsed_s']}s, {serial['qps']} qps")

    print(f"threaded dispatch: {args.workers} workers ...")
    threaded_responses, threaded = dispatch(
        index,
        queries,
        ServeConfig(
            workers=args.workers,
            mode="thread",
            simulated_io_s=args.io_wait,
        ),
    )
    print(f"  {threaded['elapsed_s']}s, {threaded['qps']} qps")

    identical = threaded_responses == serial_responses
    speedup = (
        serial["elapsed_s"] / threaded["elapsed_s"]
        if threaded["elapsed_s"]
        else 0.0
    )
    record = {
        "domains": args.domains,
        "seed": args.seed,
        "queries": len(queries),
        "workers": args.workers,
        "io_wait_s": args.io_wait,
        "cpu_count": os.cpu_count(),
        "build_seconds": round(build_seconds, 3),
        "serial": serial,
        "threaded": threaded,
        "speedup": round(speedup, 3),
        "threaded_exceeds_serial": threaded["qps"] > serial["qps"],
        "responses_identical": identical,
    }
    Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"wrote {args.out}: {serial['qps']} -> {threaded['qps']} qps "
        f"({speedup:.2f}x, {'identical' if identical else 'MISMATCH'} "
        f"responses, {os.cpu_count()} cores)"
    )
    return 0 if identical and record["threaded_exceeds_serial"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
