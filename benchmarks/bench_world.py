"""World-engine stepping benchmark.

Builds one ecosystem-backed world engine, steps it ``--steps`` times
under ``--profile``, verifies the run replays bit-identically from a
second engine, and records stepping throughput plus per-step VRP
delta sizes in ``BENCH_world.json`` so future perf PRs have a
baseline::

    PYTHONPATH=src python benchmarks/bench_world.py --domains 2000 --steps 50

The engine-only loop is what's gated: each step re-signs manifests
and CRLs, applies the scenario's churn, and takes a full strict
relying-party observation, so ``steps_per_second`` tracks the cost of
the whole CA-side + validation cycle.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.web import EcosystemConfig, WebEcosystem
from repro.world import WorldConfig, WorldEngine

DEFAULT_OUT = Path(__file__).parent / "BENCH_world.json"


def build_engine(args) -> WorldEngine:
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    return WorldEngine.from_ecosystem(
        world, WorldConfig(profile=args.profile, seed=args.seed)
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--profile", default="sloppy-ca")
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args()

    print(f"building world: {args.domains} domains, seed {args.seed} ...")
    build_started = time.perf_counter()
    engine = build_engine(args)
    build_seconds = time.perf_counter() - build_started
    print(
        f"  built in {build_seconds:.2f}s: "
        f"{len(engine.authorities())} CAs, {len(engine.payloads)} VRPs"
    )

    print(f"stepping {args.steps}x under {args.profile!r} ...")
    step_started = time.perf_counter()
    engine.run(args.steps)
    step_seconds = time.perf_counter() - step_started
    steps_per_second = args.steps / step_seconds if step_seconds else 0.0
    summary = engine.summary()
    print(
        f"  {step_seconds:.2f}s ({steps_per_second:.1f} steps/s), "
        f"{sum(summary.events_by_kind.values())} events, "
        f"{summary.final_vrps} final VRPs"
    )

    print("replaying from a fresh engine ...")
    replay = build_engine(args)
    replay.run(args.steps)
    identical = replay.ledger.digest() == summary.ledger_digest

    deltas = summary.delta_sizes
    record = {
        "domains": args.domains,
        "seed": args.seed,
        "profile": args.profile,
        "steps": args.steps,
        "authorities": summary.authorities,
        "build_seconds": round(build_seconds, 3),
        "step_seconds": round(step_seconds, 3),
        "steps_per_second": round(steps_per_second, 3),
        "final_vrps": summary.final_vrps,
        "events_total": sum(summary.events_by_kind.values()),
        "delta_mean": round(sum(deltas) / len(deltas), 3) if deltas else 0.0,
        "delta_max": max(deltas) if deltas else 0,
        "stale_point_observations": summary.stale_point_observations,
        "ledger_digest": summary.ledger_digest,
        "replay_identical": identical,
    }
    Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"wrote {args.out}: {steps_per_second:.1f} steps/s "
        f"({'identical' if identical else 'MISMATCH'} replay)"
    )
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
