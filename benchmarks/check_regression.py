"""Bench-regression gate: diff current ``BENCH_*.json`` vs a baseline.

Each benchmark record carries a handful of trajectory metrics — wall
times (lower is better) and speedup/throughput ratios (higher is
better).  This gate loads the baseline copy of each record (the one
committed in ``benchmarks/``, or ``--baseline-dir``), loads the
freshly produced copy (``--current-dir``), and fails when any metric
moved against its direction by more than its tolerance::

    PYTHONPATH=src python benchmarks/check_regression.py \\
        --baseline-dir benchmarks --current-dir /tmp/bench-out

A time metric with tolerance 0.5 fails when the current value exceeds
``baseline * 1.5``; a ratio metric with tolerance 0.3 fails when the
current value drops below ``baseline * 0.7``.  The default tolerances
are deliberately loose — this is a trajectory gate for catching a
sustained 2x slide on the same machine, not a microbenchmark
assertion; CI runs it against a same-run baseline so cross-machine
noise never enters the comparison.

``--inject-factor 2.0`` multiplies every current time metric (and
divides every ratio metric) before comparing — the self-test CI uses
to prove the gate actually fails on a 2x slowdown.

Missing files are skipped with a note (a benchmark that never ran in
this environment is not a regression); a metric present in the
baseline but missing from the current record *is* a failure, because
silently dropping a tracked metric is exactly the kind of drift the
gate exists to catch.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

DEFAULT_DIR = Path(__file__).parent

# Loose default tolerances: times may grow 50%, ratios may shrink 30%
# before the gate trips.  An injected 2x slowdown violates both.
TIME_TOLERANCE = 0.5
RATIO_TOLERANCE = 0.3


def _needs_real_cores(record: dict) -> Optional[str]:
    """Skip reason for parallel-speedup metrics on starved runners.

    A 1-core CI box cannot speed anything up; asserting ``speedup > 1``
    there would either always fail or force a sub-1.0 baseline that
    hides real regressions on capable machines.
    """
    cores = record.get("cpu_count")
    workers = record.get("workers")
    if not isinstance(cores, int) or not isinstance(workers, int):
        return "cpu_count/workers not recorded"
    if cores < workers:
        return f"only {cores} cores for {workers} workers"
    return None


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric inside one ``BENCH_*.json`` record."""

    path: str                      # dotted path into the record
    kind: str                      # "time" (lower better) | "ratio" (higher)
    tolerance: float
    # Absolute minimum for ratio metrics, enforced on top of the
    # relative limit (a 1-core baseline must not grandfather a
    # below-1.0 speedup onto multicore runners).
    floor: Optional[float] = None
    # Callable returning a skip reason when this metric is not
    # meaningful in the current environment, else None.
    guard: Optional[Callable[[dict], Optional[str]]] = None

    def extract(self, record: dict) -> Optional[float]:
        node = record
        for part in self.path.split("."):
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return float(node) if isinstance(node, (int, float)) else None


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark artifact and its gated metrics."""

    filename: str
    metrics: tuple
    # Optional reducer turning the raw record into a metric-bearing
    # dict (used for BENCH_obs.json, a per-test timing map).
    reduce: Optional[Callable[[dict], dict]] = None

    def load(self, directory: Path) -> Optional[dict]:
        path = directory / self.filename
        if not path.exists():
            return None
        record = json.loads(path.read_text())
        return self.reduce(record) if self.reduce else record


def _obs_totals(record: dict) -> dict:
    """Collapse the per-test timing map into one aggregate wall time."""
    total = sum(
        entry.get("total_s", 0.0)
        for entry in record.values()
        if isinstance(entry, dict)
    )
    return {"suite_total_s": total}


BENCHES = (
    BenchSpec(
        "BENCH_parallel.json",
        (
            MetricSpec("serial_seconds", "time", TIME_TOLERANCE),
            MetricSpec("parallel_seconds", "time", TIME_TOLERANCE),
            MetricSpec("build_seconds", "time", TIME_TOLERANCE),
            MetricSpec("speedup", "ratio", RATIO_TOLERANCE, floor=1.0,
                       guard=_needs_real_cores),
        ),
    ),
    BenchSpec(
        "BENCH_jobs.json",
        (
            MetricSpec("serial_seconds", "time", TIME_TOLERANCE),
            MetricSpec("workers_seconds", "time", TIME_TOLERANCE),
            MetricSpec("faulted_seconds", "time", TIME_TOLERANCE),
            MetricSpec("jobs_per_second", "ratio", RATIO_TOLERANCE),
            MetricSpec("speedup", "ratio", RATIO_TOLERANCE, floor=1.0,
                       guard=_needs_real_cores),
        ),
    ),
    BenchSpec(
        "BENCH_incremental.json",
        (
            MetricSpec("uncached_seconds", "time", TIME_TOLERANCE),
            MetricSpec("cold_seconds", "time", TIME_TOLERANCE),
            MetricSpec("warm_seconds", "time", TIME_TOLERANCE),
            MetricSpec("warm_speedup", "ratio", RATIO_TOLERANCE),
        ),
    ),
    BenchSpec(
        "BENCH_serve.json",
        (
            MetricSpec("build_seconds", "time", TIME_TOLERANCE),
            MetricSpec("serial.qps", "ratio", RATIO_TOLERANCE),
            MetricSpec("threaded.qps", "ratio", RATIO_TOLERANCE),
        ),
    ),
    BenchSpec(
        "BENCH_rtr_serve.json",
        (
            MetricSpec("connect_seconds", "time", TIME_TOLERANCE),
            MetricSpec("publish_seconds", "time", TIME_TOLERANCE),
            MetricSpec("push.delta_saving_ratio", "ratio", RATIO_TOLERANCE),
        ),
    ),
    BenchSpec(
        "BENCH_world.json",
        (
            MetricSpec("build_seconds", "time", TIME_TOLERANCE),
            MetricSpec("step_seconds", "time", TIME_TOLERANCE),
            MetricSpec("steps_per_second", "ratio", RATIO_TOLERANCE),
        ),
    ),
    BenchSpec(
        "BENCH_rov.json",
        (
            MetricSpec("build_seconds", "time", TIME_TOLERANCE),
            MetricSpec("experiment_seconds", "time", TIME_TOLERANCE),
            MetricSpec("whatif_seconds", "time", TIME_TOLERANCE),
            MetricSpec("classifications_per_second", "ratio",
                       RATIO_TOLERANCE),
            MetricSpec("futures_per_second", "ratio", RATIO_TOLERANCE),
        ),
    ),
    BenchSpec(
        "BENCH_obs.json",
        (
            # The whole golden suite's wall time, gated generously:
            # individual tests jitter, the aggregate trend matters.
            MetricSpec("suite_total_s", "time", 1.0),
        ),
        reduce=_obs_totals,
    ),
)


@dataclass
class Verdict:
    bench: str
    metric: str
    kind: str
    baseline: float
    current: float
    limit: float
    ok: bool

    @property
    def change(self) -> float:
        if self.baseline == 0:
            return 0.0
        return self.current / self.baseline


def compare(
    baseline: dict, current: dict, spec: BenchSpec, inject: float,
    skipped: Optional[List[str]] = None,
) -> List[Verdict]:
    verdicts: List[Verdict] = []
    for metric in spec.metrics:
        if metric.guard is not None:
            reason = metric.guard(current)
            if reason is not None:
                if skipped is not None:
                    skipped.append(
                        f"{spec.filename}:{metric.path} ({reason})"
                    )
                continue
        base_value = metric.extract(baseline)
        if base_value is None:
            continue  # metric not tracked in this baseline snapshot
        cur_value = metric.extract(current)
        if cur_value is None:
            verdicts.append(
                Verdict(spec.filename, metric.path, metric.kind,
                        base_value, float("nan"), float("nan"), False)
            )
            continue
        if metric.kind == "time":
            cur_value *= inject
            limit = base_value * (1.0 + metric.tolerance)
            ok = cur_value <= limit or base_value == 0.0
        else:
            cur_value /= inject
            limit = base_value * (1.0 - metric.tolerance)
            if metric.floor is not None:
                limit = max(limit, metric.floor)
            ok = cur_value >= limit or base_value == 0.0
        verdicts.append(
            Verdict(spec.filename, metric.path, metric.kind,
                    base_value, cur_value, limit, ok)
        )
    return verdicts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=str(DEFAULT_DIR),
                        help="directory holding the baseline BENCH_*.json")
    parser.add_argument("--current-dir", default=str(DEFAULT_DIR),
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--inject-factor", type=float, default=1.0,
                        help="multiply current times (and divide ratios) "
                             "by this factor before comparing; the gate's "
                             "self-test passes 2.0 to prove it fails")
    args = parser.parse_args()

    baseline_dir = Path(args.baseline_dir)
    current_dir = Path(args.current_dir)
    verdicts: List[Verdict] = []
    skipped: List[str] = []

    for spec in BENCHES:
        baseline = spec.load(baseline_dir)
        current = spec.load(current_dir)
        if baseline is None or current is None:
            side = "baseline" if baseline is None else "current"
            skipped.append(f"{spec.filename} (no {side} record)")
            continue
        verdicts.extend(
            compare(baseline, current, spec, args.inject_factor, skipped)
        )

    width = max((len(f"{v.bench}:{v.metric}") for v in verdicts), default=20)
    for v in verdicts:
        name = f"{v.bench}:{v.metric}".ljust(width)
        direction = "<=" if v.kind == "time" else ">="
        print(f"  {'ok  ' if v.ok else 'FAIL'} {name} "
              f"{v.current:9.3f} {direction} {v.limit:9.3f} "
              f"(baseline {v.baseline:.3f}, {v.change:.2f}x)")
    for note in skipped:
        print(f"  skip {note}")

    failures = [v for v in verdicts if not v.ok]
    checked = len(verdicts)
    if failures:
        print(f"regression gate: {len(failures)}/{checked} metrics "
              f"regressed beyond tolerance")
        return 1
    print(f"regression gate: {checked} metrics within tolerance "
          f"({len(skipped)} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
