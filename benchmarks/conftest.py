"""Shared world for the benchmark harness.

Every table/figure benchmark runs against one session-scoped world.
Scale with ``RIPKI_BENCH_DOMAINS`` (default 20,000; the paper used the
full 1M Alexa list — any size reproduces the shapes, larger sizes
tighten the statistics).
"""

import os
from pathlib import Path

import pytest

from repro.core import MeasurementStudy
from repro.obs.report import write_timing_summary
from repro.obs.tracing import TraceCollector
from repro.web import EcosystemConfig, HTTPArchiveClassifier, WebEcosystem

BENCH_DOMAINS = int(os.environ.get("RIPKI_BENCH_DOMAINS", "20000"))
BENCH_SEED = int(os.environ.get("RIPKI_BENCH_SEED", "2015"))
BENCH_OBS_PATH = os.environ.get(
    "RIPKI_BENCH_OBS", str(Path(__file__).parent / "BENCH_obs.json")
)

# Wall-clock per benchmark, recorded as one span per test so future
# perf PRs have a timing baseline (written to BENCH_obs.json).
_BENCH_TRACER = TraceCollector()


@pytest.fixture(autouse=True)
def _bench_span(request):
    with _BENCH_TRACER.span(request.node.nodeid.split("/")[-1]):
        yield


def pytest_sessionfinish(session, exitstatus):
    stats = _BENCH_TRACER.aggregate()
    if stats:
        write_timing_summary(stats, BENCH_OBS_PATH)


@pytest.fixture(scope="session")
def bench_world():
    config = EcosystemConfig(domain_count=BENCH_DOMAINS, seed=BENCH_SEED)
    return WebEcosystem.build(config)


@pytest.fixture(scope="session")
def bench_result(bench_world):
    return MeasurementStudy.from_ecosystem(bench_world).run()


@pytest.fixture(scope="session")
def bench_httparchive(bench_world):
    """HTTPArchive classification over the first 30% of ranks
    (mirroring 300k of 1M)."""
    coverage = max(1, BENCH_DOMAINS * 3 // 10)
    classifier = HTTPArchiveClassifier(bench_world.namespace, coverage=coverage)
    return classifier.classify_all(bench_world.ranking), coverage
