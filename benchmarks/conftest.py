"""Shared world for the benchmark harness.

Every table/figure benchmark runs against one session-scoped world.
Scale with ``RIPKI_BENCH_DOMAINS`` (default 20,000; the paper used the
full 1M Alexa list — any size reproduces the shapes, larger sizes
tighten the statistics).
"""

import os

import pytest

from repro.core import MeasurementStudy
from repro.web import EcosystemConfig, HTTPArchiveClassifier, WebEcosystem

BENCH_DOMAINS = int(os.environ.get("RIPKI_BENCH_DOMAINS", "20000"))
BENCH_SEED = int(os.environ.get("RIPKI_BENCH_SEED", "2015"))


@pytest.fixture(scope="session")
def bench_world():
    config = EcosystemConfig(domain_count=BENCH_DOMAINS, seed=BENCH_SEED)
    return WebEcosystem.build(config)


@pytest.fixture(scope="session")
def bench_result(bench_world):
    return MeasurementStudy.from_ecosystem(bench_world).run()


@pytest.fixture(scope="session")
def bench_httparchive(bench_world):
    """HTTPArchive classification over the first 30% of ranks
    (mirroring 300k of 1M)."""
    coverage = max(1, BENCH_DOMAINS * 3 // 10)
    classifier = HTTPArchiveClassifier(bench_world.namespace, coverage=coverage)
    return classifier.classify_all(bench_world.ranking), coverage
