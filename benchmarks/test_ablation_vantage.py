"""Ablation — DNS vantage-point independence (Section 3, step 2).

Paper: "our main results remain independent of the DNS server
selection because CDNs are reluctant to create ROAs at all."  The
three verification resolvers (Google DNS, Open DNS, the Looking
Glass node) may be steered to different CDN caches, but the headline
RPKI statistics barely move.
"""

import pytest

from repro.core import MeasurementStudy, figure2_rpki_outcome, figure4_rpki_cdn


def test_ablation_resolver_vantage(benchmark, bench_world):
    def run_all_vantages():
        outputs = {}
        for index, resolver in enumerate(bench_world.resolvers()):
            study = MeasurementStudy(
                ranking=bench_world.ranking,
                resolver=resolver,
                table_dump=bench_world.table_dump,
                payloads=bench_world.payloads(),
            )
            result = study.run()
            fig2 = figure2_rpki_outcome(result)
            fig4 = figure4_rpki_cdn(result)
            outputs[resolver.name] = {
                "valid_mean": fig2["valid"].mean(),
                "enabled_mean": fig4["rpki_enabled"].mean(),
                "cdn_enabled_mean": fig4["rpki_enabled_cdn"].mean(),
            }
        return outputs

    outputs = benchmark.pedantic(run_all_vantages, rounds=1, iterations=1)
    print("\nVantage ablation:")
    for name, stats in outputs.items():
        print(
            f"  {name:<22} valid={stats['valid_mean']:.4f} "
            f"enabled={stats['enabled_mean']:.4f} "
            f"cdn={stats['cdn_enabled_mean']:.4f}"
        )

    names = list(outputs)
    assert len(names) == 3
    for metric in ("valid_mean", "enabled_mean", "cdn_enabled_mean"):
        values = [outputs[name][metric] for name in names]
        spread = max(values) - min(values)
        # The paper's independence claim: vantage changes which CDN
        # cache answers, but since CDNs sign (almost) nothing, the
        # RPKI statistics are stable across resolvers.
        assert spread < 0.01, f"{metric} varies {spread:.4f} across vantages"


def test_ablation_berlin_resolvers_identical(benchmark, bench_world):
    """Google DNS and Open DNS share the Berlin vantage: answers (and
    therefore all derived statistics) must agree exactly."""

    def compare():
        google, opendns, _lg = bench_world.resolvers()
        mismatches = 0
        for domain in bench_world.ranking.top(2000):
            a = [str(x) for x in google.resolve(domain.www_name).addresses]
            b = [str(x) for x in opendns.resolve(domain.www_name).addresses]
            if a != b:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nBerlin resolver mismatches over 2000 domains: {mismatches}")
    assert mismatches == 0
