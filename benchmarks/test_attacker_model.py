"""Section 2.3 attacker model — prefix hijacks against web servers.

The paper motivates the study with an attacker who "is able to
redirect network traffic destined to the web server by manipulating
Internet routing".  This bench quantifies, on the built world, how
much of the topology an origin hijack and a sub-prefix hijack capture
— and how origin validation at enforcing ASes contains the attack
(including the paper's point that locally-scoped attacks can harm a
"specific subset of clients").
"""

import pytest

from repro.bgp import Announcement, ASRole, HijackScenario
from repro.net import ASN


@pytest.fixture(scope="module")
def hijack_setup(bench_world):
    """A hosted victim prefix with a signed ROA, plus a stub attacker."""
    signed = bench_world.adoption.signed_prefixes
    victim_prefix, victim_origin = None, None
    for org in bench_world.organisations:
        if org.kind.value != "hoster":
            continue
        for prefix, origin in sorted(org.prefixes.items()):
            if prefix in signed and prefix.family == 4 and prefix.length <= 22:
                victim_prefix, victim_origin = prefix, origin
                break
        if victim_prefix:
            break
    assert victim_prefix is not None, "world should contain a signed hoster prefix"
    eyeballs = bench_world.topology.by_role(ASRole.EYEBALL)
    attacker = eyeballs[-1].asn
    return victim_prefix, victim_origin, attacker


def test_subprefix_hijack_without_rpki(benchmark, bench_world, hijack_setup):
    victim_prefix, victim_origin, attacker = hijack_setup
    scenario = HijackScenario(bench_world.topology)
    sub = victim_prefix.supernet(victim_prefix.length)  # same prefix
    from repro.net import Prefix

    hijack_prefix = Prefix(4, victim_prefix.value, victim_prefix.length + 2)

    outcome = benchmark.pedantic(
        scenario.run,
        args=(Announcement(prefix=victim_prefix, origin=victim_origin), attacker),
        kwargs={"hijack_prefix": hijack_prefix},
        rounds=1,
        iterations=1,
    )
    print(
        f"\nSub-prefix hijack, no RPKI: attacker captures "
        f"{len(outcome.attacker_captured)}/{outcome.total_ases} ASes "
        f"({outcome.capture_fraction:.1%})"
    )
    # Longest-prefix match makes a sub-prefix hijack devastating.
    assert outcome.capture_fraction > 0.8


def test_subprefix_hijack_with_rpki_enforcement(
    benchmark, bench_world, hijack_setup
):
    victim_prefix, victim_origin, attacker = hijack_setup
    from repro.net import Prefix

    hijack_prefix = Prefix(4, victim_prefix.value, victim_prefix.length + 2)
    scenario = HijackScenario(bench_world.topology)
    payloads = bench_world.payloads()
    everyone = frozenset(
        node.asn for node in bench_world.topology.ases()
        if node.asn != attacker
    )

    outcome = benchmark.pedantic(
        scenario.run,
        args=(Announcement(prefix=victim_prefix, origin=victim_origin), attacker),
        kwargs={
            "hijack_prefix": hijack_prefix,
            "payloads": payloads,
            "enforcing": everyone,
        },
        rounds=1,
        iterations=1,
    )
    print(
        f"\nSub-prefix hijack, full RPKI enforcement: attacker captures "
        f"{len(outcome.attacker_captured)}/{outcome.total_ases} ASes"
    )
    # The signed ROA (generous maxLength covers the sub-prefix origin
    # check) lets enforcing ASes drop the hijack everywhere.
    assert outcome.attacker_captured == {attacker}


def test_partial_enforcement_sweep(benchmark, bench_world, hijack_setup):
    """Deployment sweep: capture fraction vs share of enforcing ASes."""
    victim_prefix, victim_origin, attacker = hijack_setup
    scenario = HijackScenario(bench_world.topology)
    payloads = bench_world.payloads()
    all_asns = sorted(
        node.asn for node in bench_world.topology.ases()
        if node.asn != attacker
    )

    def sweep():
        curve = []
        for share in (0.0, 0.25, 0.5, 0.75, 1.0):
            count = int(len(all_asns) * share)
            enforcing = frozenset(all_asns[:count])
            outcome = scenario.run(
                Announcement(prefix=victim_prefix, origin=victim_origin),
                attacker,
                payloads=payloads,
                enforcing=enforcing,
            )
            curve.append((share, outcome.capture_fraction))
        return curve

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nEnforcement sweep (origin hijack):")
    for share, captured in curve:
        print(f"  {share:.0%} enforcing -> attacker captures {captured:.1%}")
    # More enforcement never helps the attacker; full deployment wins.
    fractions = [captured for _share, captured in curve]
    assert fractions[-1] <= fractions[0]
    assert fractions[-1] < 0.05
