"""Extension — Figure 1's side observation: accelerating continuous
measurements.

"in future work it should be explored how this fact [www/apex prefix
equality] can help accelerate continuous DNS measurements."  The
incremental engine re-resolves only the apex form by default and
carries the www measurement over where the forms agreed — this bench
quantifies the query saving and the staleness cost under churn.
"""

import pytest

from repro.core import MeasurementStudy
from repro.core.continuous import ContinuousStudy, compare_results
from repro.web import EcosystemConfig, WebEcosystem

from conftest import BENCH_SEED


@pytest.fixture(scope="module")
def churn_world():
    """A private world (the shared one must stay immutable)."""
    return WebEcosystem.build(
        EcosystemConfig(domain_count=4000, seed=BENCH_SEED)
    )


def test_ext_continuous_measurement(benchmark, churn_world):
    study = MeasurementStudy.from_ecosystem(churn_world)
    continuous = ContinuousStudy(study)
    continuous.baseline()
    churn_world.rehost(0.05)  # ~monthly infrastructure drift

    def refresh():
        return continuous.refresh()

    result, stats = benchmark.pedantic(refresh, rounds=1, iterations=1)
    full = study.run()
    report = compare_results(result, full)
    print(
        f"\nContinuous refresh over {stats.apex_measured} domains: "
        f"{stats.total_queries} queries "
        f"(full campaign: {2 * stats.apex_measured}), "
        f"saving {stats.saving_fraction:.1%}; "
        f"www carried over for {stats.www_carried_over}; "
        f"stale domains: {len(report.stale_domains)} "
        f"({report.stale_fraction:.3%})"
    )
    # The equality insight cuts a steady-state campaign by ~40%+ ...
    assert stats.saving_fraction > 0.3
    # ... at a staleness cost well under a percent.
    assert report.stale_fraction < 0.01
