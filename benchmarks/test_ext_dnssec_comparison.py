"""Extension — RPKI vs DNSSEC adoption (paper Section 7, future work).

"In future work, we will ... compare RPKI deployment with the
adoption of other core protocols such as DNSSEC."  This bench runs
that comparison on the built world: per rank bin, the share of
domains protected by each mechanism.
"""

import pytest

from repro.analysis import bin_shares
from repro.core import figure4_rpki_cdn
from repro.crypto import DeterministicRNG
from repro.dns.dnssec import SecurityStatus
from repro.web.dnssec_adoption import (
    DnssecAdoptionModel,
    DnssecConfig,
    rrset_for_validation,
)

from conftest import BENCH_SEED


@pytest.fixture(scope="module")
def dnssec_deployment(bench_world):
    model = DnssecAdoptionModel(
        DnssecConfig(), DeterministicRNG(BENCH_SEED)
    )
    return model.build(bench_world.ranking, bench_world.namespace)


def test_ext_dnssec_vs_rpki(benchmark, bench_world, bench_result, dnssec_deployment):
    def build_series():
        flags = []
        for domain in bench_world.ranking:
            records = rrset_for_validation(bench_world.namespace, domain.name)
            status = dnssec_deployment.status_for(domain.name, records)
            flags.append(status is SecurityStatus.SECURE)
        bin_size = max(1, len(flags) // 100)
        return bin_shares(flags, bin_size, label="DNSSEC-secure")

    dnssec_series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    rpki_series = figure4_rpki_cdn(bench_result)["rpki_enabled"]

    print("\nRPKI vs DNSSEC protection per rank bin (sampled):")
    step = max(1, len(rpki_series) // 10)
    for index in range(0, len(rpki_series), step):
        start, end = rpki_series.bin_range(index)
        print(
            f"  ranks {start:>7}-{end:<7}  RPKI={rpki_series.values[index]:.4f}  "
            f"DNSSEC={dnssec_series.values[index]:.4f}"
        )
    print(
        f"  means: RPKI={rpki_series.mean():.4f} "
        f"DNSSEC={dnssec_series.mean():.4f}"
    )

    # Both core protocols sit at low single-digit adoption in 2015.
    assert 0.005 < dnssec_series.mean() < 0.10
    assert 0.02 < rpki_series.mean() < 0.12
    # Every domain got a verdict; SECURE plus INSECURE should cover
    # nearly the whole population (BOGUS only under attack).
    assert sum(dnssec_series.counts) == len(bench_world.ranking)


def test_ext_dnssec_validation_integrity(benchmark, bench_world, dnssec_deployment):
    """No signed domain validates bogus; no unsigned domain secure."""

    def check():
        bogus, mismatched = 0, 0
        for domain in bench_world.ranking.top(2000):
            records = rrset_for_validation(bench_world.namespace, domain.name)
            status = dnssec_deployment.status_for(domain.name, records)
            if status is SecurityStatus.BOGUS:
                bogus += 1
            signed = dnssec_deployment.signed_domains[domain.name]
            if signed != (status is SecurityStatus.SECURE):
                mismatched += 1
        return bogus, mismatched

    bogus, mismatched = benchmark.pedantic(check, rounds=1, iterations=1)
    print(f"\nDNSSEC integrity over 2000 domains: bogus={bogus} "
          f"mismatched={mismatched}")
    assert bogus == 0
    assert mismatched == 0
