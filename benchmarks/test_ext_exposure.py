"""Extension — Section 5.2: RPKI exposes business relations.

"Imagine that two large CDNs serve secretly as backups for each
other ... RPKI would publicly reveal these setups."  The synthetic
world contains pre-authorized backup partners that never announce;
this bench checks that exactly such relations become visible through
the validated ROA set while remaining invisible in BGP data.
"""

from repro.core.exposure import analyse_exposure


def test_ext_rpki_exposes_backup_relations(benchmark, bench_world):
    report = benchmark(analyse_exposure, bench_world)
    print(f"\nExposure analysis: {report.summary()}")

    backups = bench_world.adoption.backup_authorizations
    print(f"  backup authorizations configured: {len(backups)}")
    for prefix, partner in sorted(backups.items())[:5]:
        owner = next(
            org.name
            for org in bench_world.organisations
            if prefix in org.prefixes
        )
        partner_org = bench_world.org_of_asn(partner)
        print(f"    {owner} pre-authorizes {partner_org.name} on {prefix}")

    assert backups, "world should contain backup authorizations"
    # Every configured backup relation is readable from the RPKI...
    for prefix, partner in backups.items():
        owner = next(
            org.name
            for org in bench_world.organisations
            if prefix in org.prefixes
        )
        partner_org = bench_world.org_of_asn(partner).name
        assert (owner, partner_org) in report.roa_relations
        # ... and (the partner never announces) not in BGP.
        assert (owner, partner_org) not in report.bgp_relations
        assert (owner, partner_org) in report.rpki_only

    # The headline: the RPKI catalog reveals relations public routing
    # data does not.
    assert report.exposure_count >= len(backups)


def test_ext_exposure_excludes_self_relations(benchmark, bench_world):
    """An org authorizing its own AS reveals nothing."""
    report = benchmark.pedantic(
        analyse_exposure, args=(bench_world,), rounds=1, iterations=1
    )
    for owner, authorized in report.roa_relations:
        assert owner != authorized
    for owner, origin in report.bgp_relations:
        assert owner != origin
