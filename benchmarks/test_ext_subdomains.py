"""Extension — Section 5.3: targeting subdomains.

"a commercially motivated attacker may explicitly target subdomains,
e.g. those hosting adverts."  Because adverts ride a handful of
shared third-party networks, hijacking one ad-network prefix disrupts
advert delivery for *many* websites at once, while each site's main
content stays up — invisible to full-page monitoring.
"""

import pytest

from repro.bgp import Announcement, ASRole, HijackScenario
from repro.crypto import DeterministicRNG
from repro.net import ASN, Prefix
from repro.web.subdomains import SubdomainConfig, SubdomainModel

from conftest import BENCH_SEED


@pytest.fixture(scope="module")
def sharded(bench_world):
    model = SubdomainModel(SubdomainConfig(), DeterministicRNG(BENCH_SEED))
    return model.build(bench_world)


def test_ext_ads_hijack_blast_radius(benchmark, bench_world, sharded):
    """One ad-network prefix hijack vs one website hijack."""
    network = max(
        sharded.ad_networks,
        key=lambda n: len(sharded.domains_using_network(n)),
    )
    victim_org = network.organisation
    victim_origin = victim_org.prefixes[network.prefix]
    attacker = bench_world.topology.by_role(ASRole.EYEBALL)[-1].asn
    scenario = HijackScenario(bench_world.topology)
    sub = Prefix(4, network.prefix.value, min(network.prefix.length + 2, 24))

    def run():
        return scenario.run(
            Announcement(prefix=network.prefix, origin=victim_origin),
            attacker,
            hijack_prefix=sub,
            target=network.prefix.nth_address(7),  # the ad server
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    affected_sites = sharded.domains_using_network(network)
    print(
        f"\nAds hijack of {network.name} ({sub}): attacker captures "
        f"{outcome.capture_fraction:.1%} of ASes; advert delivery of "
        f"{len(affected_sites)} websites rides that prefix"
    )
    # The shared network makes the attack wholesale: far more websites
    # are affected than the single domain a site-hijack would hit.
    assert len(affected_sites) > 20
    assert outcome.capture_fraction > 0.5


def test_ext_subdomain_infra_spreads_networks(benchmark, bench_world, sharded):
    """Sharding increases the number of networks a popular site
    depends on — each an additional prefix to protect (Section 5.3:
    securing 'whole ASes' is not enough when adverts live elsewhere)."""

    def count():
        from repro.dns import RecursiveResolver

        resolver = RecursiveResolver(bench_world.namespace)
        extra = 0
        sampled = 0
        for domain in bench_world.ranking.top(500):
            subs = sharded.subdomains.get(domain.name, [])
            ads = sharded.ads_subdomain_of.get(domain.name)
            if not ads:
                continue
            main = resolver.resolve(domain.www_name).addresses
            ads_addresses = resolver.resolve(ads).addresses
            sampled += 1
            if main and ads_addresses and main[0] != ads_addresses[0]:
                extra += 1
        return sampled, extra

    sampled, extra = benchmark.pedantic(count, rounds=1, iterations=1)
    print(f"\n{extra}/{sampled} sampled popular sites serve adverts from "
          f"a different network than their main content")
    assert sampled > 50
    assert extra / sampled > 0.9
