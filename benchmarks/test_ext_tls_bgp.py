"""Extension — Section 2.3: "TLS does not necessarily protect against
such an attack when prefix hijacking is in place [9]".

Stages the Gavrichenkov attack against a real domain of the built
world: a short-lived hijack wins the CA's domain-control validation
and yields a browser-trusted certificate that outlives the hijack.
RPKI origin validation at the CA's network blocks issuance.
"""

import pytest

from repro.bgp import Announcement, ASRole
from repro.crypto import DeterministicRNG
from repro.dns import PublicResolver
from repro.dns.vantage import ResolverSpec
from repro.net import ASN
from repro.webpki import BGPCertificateAttack, DomainControlValidator, WebCA


@pytest.fixture(scope="module")
def attack_setup(bench_world):
    """Pick a signed, non-CDN victim domain and its prefix."""
    signed = bench_world.adoption.signed_prefixes
    resolver = bench_world.resolvers()[0]
    victim = None
    for domain in bench_world.ranking:
        truth = bench_world.hosting.ground_truth[domain.name]
        if truth.uses_cdn or truth.invalid_dns:
            continue
        answer = resolver.resolve(domain.name)
        if len(answer.addresses) != 1:
            continue
        address = answer.addresses[0]
        covering = [p for p in signed if p.contains(address)]
        if covering:
            prefix = max(covering, key=lambda p: p.length)
            if prefix.length <= 22 and prefix.family == 4:
                origin = signed[prefix]
                org = bench_world.org_of_asn(origin)
                if org is not None and origin in org.asns:
                    victim = (domain, prefix, origin, address)
                    break
    assert victim is not None, "need a signed single-address victim"
    domain, prefix, origin, address = victim

    ca_asn = bench_world.topology.by_role(ASRole.EYEBALL)[0].asn
    attacker = bench_world.topology.by_role(ASRole.STUB)[-1].asn \
        if bench_world.topology.by_role(ASRole.STUB) \
        else bench_world.topology.by_role(ASRole.EYEBALL)[-1].asn

    def legitimate_host(addr):
        return origin if prefix.contains(addr) else None

    ca_resolver = PublicResolver(
        bench_world.namespace, ResolverSpec("CA-resolver", "berlin")
    )
    attack = BGPCertificateAttack(bench_world.topology, legitimate_host)
    return bench_world, domain, prefix, origin, attacker, ca_asn, ca_resolver, attack


def _make_ca(ca_resolver, ca_asn):
    validator = DomainControlValidator(resolver=ca_resolver, ca_asn=ca_asn)
    return WebCA("SimCA", DeterministicRNG("bench-ca"), validator)


def test_ext_tls_attack_without_rpki(benchmark, attack_setup):
    (world, domain, prefix, origin, attacker, ca_asn,
     ca_resolver, attack) = attack_setup

    from repro.net import Prefix

    resolver = world.resolvers()[0]
    address = resolver.resolve(domain.name).addresses[0]
    # The more-specific must cover the web server's actual address.
    hijack_prefix = Prefix.from_address(address, min(prefix.length + 2, 24))

    def run():
        return attack.execute(
            victim_domain=domain.name,
            victim_announcement=Announcement(prefix, origin),
            attacker_asn=attacker,
            ca=_make_ca(ca_resolver, ca_asn),
            hijack_prefix=hijack_prefix,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nHTTPS-via-BGP attack on {domain.name} ({prefix}, hijacking "
        f"{hijack_prefix}): {result!r}; hijack churned "
        f"{result.hijack_messages} UPDATEs, healed={result.healed}"
    )
    assert result.succeeded
    assert result.mitm_possible
    assert result.healed  # no lasting trace in the routing system


def test_ext_tls_attack_with_rpki_at_ca(benchmark, attack_setup):
    (world, domain, prefix, origin, attacker, ca_asn,
     ca_resolver, attack) = attack_setup
    payloads = world.payloads()
    from repro.net import Prefix

    resolver = world.resolvers()[0]
    address = resolver.resolve(domain.name).addresses[0]
    hijack_prefix = Prefix.from_address(address, min(prefix.length + 2, 24))

    def run():
        # Enforce at the CA's AS plus everything except the attacker
        # (the victim's prefix already has a genuine ROA in this world).
        enforcing = [
            node.asn for node in world.topology.ases()
            if node.asn != attacker
        ]
        return attack.execute(
            victim_domain=domain.name,
            victim_announcement=Announcement(prefix, origin),
            attacker_asn=attacker,
            ca=_make_ca(ca_resolver, ca_asn),
            hijack_prefix=hijack_prefix,
            payloads=payloads,
            enforcing=enforcing,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSame attack under RPKI enforcement: {result!r}")
    assert not result.succeeded
    assert not result.mitm_possible
