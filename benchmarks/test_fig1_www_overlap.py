"""Figure 1 — IP deployment overlap between www and w/o-www names.

Paper: "for the first 100k domains more than 76% of the IP prefixes
are equal for both names.  For the remaining domains, more than 94%
of the names refer to the same prefix."
"""

from repro.core import figure1_www_overlap


def _print(series):
    print("\nFigure 1: equal prefixes between www and w/o www")
    step = max(1, len(series) // 10)
    for index in range(0, len(series), step):
        start, end = series.bin_range(index)
        print(f"  ranks {start:>7}-{end:<7}  {series.values[index]:.3f}")
    print(
        f"  head(10 bins)={series.head_mean(10):.3f}  "
        f"tail(90 bins)={sum(series.values[10:]) / len(series.values[10:]):.3f}"
    )


def test_figure1_overlap(benchmark, bench_result):
    series = benchmark(figure1_www_overlap, bench_result)
    _print(series)
    head = series.head_mean(10)        # the first 100k-equivalent
    rest = series.values[10:]
    rest_mean = sum(rest) / len(rest)
    # Paper shape: popular head less equal than the long tail.
    assert head < rest_mean
    # Paper magnitudes: head > 0.76, rest > 0.94 (with slack for scale).
    assert head > 0.70
    assert rest_mean > 0.90
