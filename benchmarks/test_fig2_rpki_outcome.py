"""Figure 2 — RPKI validation outcome across the Alexa ranking.

Paper: "On average, only 6% of the web server prefixes are covered by
RPKI ... Roughly 0.09% of the prefixes are invalid ... Among the
first 100k domains only ~4.0% of web server prefixes are secured via
RPKI.  In contrast, for the last 100k domains, ~5.5% are secured."

Includes the two ablations DESIGN.md calls out: bin size, and strict
(maxLength = prefix length) ROAs.
"""

import pytest

from repro.analysis import trend_slope
from repro.core import MeasurementStudy, figure2_rpki_outcome
from repro.web import EcosystemConfig, WebEcosystem


def _print(series_map):
    print("\nFigure 2: RPKI validation outcome (per rank bin)")
    valid = series_map["valid"]
    step = max(1, len(valid) // 10)
    for index in range(0, len(valid), step):
        start, end = valid.bin_range(index)
        print(
            f"  ranks {start:>7}-{end:<7}  "
            f"valid={series_map['valid'].values[index]:.4f}  "
            f"invalid={series_map['invalid'].values[index]:.5f}  "
            f"not_found={series_map['not_found'].values[index]:.4f}"
        )
    print(
        f"  valid: head={valid.head_mean(10):.4f} tail={valid.tail_mean(10):.4f} "
        f"mean={valid.mean():.4f}"
    )
    print(f"  invalid mean={series_map['invalid'].mean():.5f}")
    print(f"  not_found mean={series_map['not_found'].mean():.4f}")


def test_figure2_outcome(benchmark, bench_result):
    series_map = benchmark(figure2_rpki_outcome, bench_result)
    _print(series_map)
    valid, invalid = series_map["valid"], series_map["invalid"]
    covered_mean = valid.mean() + invalid.mean()
    # Coverage is a few percent (paper: ~6% average), never zero.
    assert 0.02 < covered_mean < 0.12
    # Less popular content is more secured: head (top 10% of ranks)
    # below tail, and the overall rank trend is upward.
    assert valid.head_mean(20) < valid.tail_mean(20)
    assert trend_slope(valid.values) > 0
    # Invalids are rare (paper: ~0.09%) and spread over the ranking.
    assert 0.0001 < invalid.mean() < 0.01
    spread = sum(1 for v in invalid.values if v > 0)
    assert spread >= len(invalid.values) // 10
    # The vast majority of the web is simply not in the RPKI.
    assert series_map["not_found"].mean() > 0.85


def test_figure2_bin_size_ablation(benchmark, bench_result):
    """The headline numbers must be robust to the bin size choice."""

    def run():
        outputs = {}
        population = len(bench_result)
        for divisor in (20, 50, 100, 200):
            bin_size = max(1, population // divisor)
            outputs[divisor] = figure2_rpki_outcome(bench_result, bin_size)
        return outputs

    outputs = benchmark(run)
    means = [series["valid"].mean() for series in outputs.values()]
    print("\nBin-size ablation (valid mean per bin count):")
    for divisor, series in outputs.items():
        print(f"  {divisor} bins -> {series['valid'].mean():.4f}")
    assert max(means) - min(means) < 0.005  # invariant to binning


def test_figure2_strict_maxlength_ablation(benchmark):
    """Ablation: strict maxLength ROAs flip announced more-specifics
    to *invalid* — quantifies how much operators' generous maxLength
    practice matters for the valid/invalid split."""
    from repro.web.adoption import AdoptionConfig

    from repro.rpki.vrp import OriginValidation

    def run():
        outputs = {}
        for generous in (True, False):
            config = EcosystemConfig(
                domain_count=3000,
                seed=77,
                hoster_count=150,
                adoption=AdoptionConfig(generous_max_length=generous),
            )
            world = WebEcosystem.build(config)
            payloads = world.payloads()
            counts = {state: 0 for state in OriginValidation}
            # Validate every table-dump row, as [32] does for entire
            # BGP tables.
            for entry in world.table_dump:
                origin = entry.origin
                if origin is None:
                    continue
                counts[payloads.validate_origin(entry.prefix, origin)] += 1
            outputs[generous] = counts
        return outputs

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nmaxLength ablation (table-dump row validation):")
    for generous, counts in outputs.items():
        label = "generous" if generous else "strict"
        print(f"  {label}: {{state: count}} = "
              f"{ {str(k): v for k, v in counts.items()} }")
    strict_invalid = outputs[False][OriginValidation.INVALID]
    generous_invalid = outputs[True][OriginValidation.INVALID]
    strict_valid = outputs[False][OriginValidation.VALID]
    generous_valid = outputs[True][OriginValidation.VALID]
    # Strict maxLength flips announced more-specifics valid -> invalid.
    assert strict_invalid > generous_invalid
    assert strict_valid < generous_valid
