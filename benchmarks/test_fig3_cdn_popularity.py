"""Figure 3 — popularity of CDNs under two detection heuristics.

Paper: "The two almost identically shaped curves clearly indicate
that popular websites are more likely to be served by CDNs.
Quantitatively, our approach indicates fewer CDNs than HTTPArchive."

Includes the chain-threshold ablation DESIGN.md calls out.
"""

import pytest

from repro.analysis import trend_slope
from repro.core import ChainHeuristic, figure3_cdn_popularity


def _print(series_map):
    print("\nFigure 3: CDN share per rank bin")
    google = series_map["GoogleDNS"]
    archive = series_map["HTTPArchive"]
    step = max(1, len(google) // 10)
    for index in range(0, len(google), step):
        start, end = google.bin_range(index)
        archive_cell = (
            f"{archive.values[index]:.3f}"
            if archive.counts[index]
            else "  -  "
        )
        print(
            f"  ranks {start:>7}-{end:<7}  GoogleDNS={google.values[index]:.3f}  "
            f"HTTPArchive={archive_cell}"
        )


def test_figure3_cdn_popularity(benchmark, bench_result, bench_httparchive):
    classification, coverage = bench_httparchive
    series_map = benchmark(
        figure3_cdn_popularity, bench_result, classification, coverage
    )
    _print(series_map)
    google, archive = series_map["GoogleDNS"], series_map["HTTPArchive"]

    # Popular websites are more likely CDN-served (declining curves).
    assert google.head_mean(10) > google.tail_mean(10)
    assert trend_slope(google.values) < 0
    # Top-bin magnitude in the paper's ballpark (~25-30%).
    assert 0.15 < google.head_mean(5) < 0.40

    # HTTPArchive sees *more* CDNs (the chain heuristic is the
    # conservative under-estimate) over its coverage window.
    covered_bins = sum(1 for c in archive.counts if c > 0)
    google_head = sum(google.values[:covered_bins]) / covered_bins
    archive_head = sum(archive.values[:covered_bins]) / covered_bins
    print(
        f"  over HTTPArchive window: GoogleDNS={google_head:.3f} "
        f"HTTPArchive={archive_head:.3f}"
    )
    assert archive_head > google_head
    # ... and the curves have the same shape (both decline).
    assert trend_slope(archive.values[:covered_bins]) < 0
    # HTTPArchive stops at its coverage boundary (first 300k of 1M).
    assert all(c == 0 for c in archive.counts[covered_bins:])


def test_figure3_chain_threshold_ablation(benchmark, bench_result, bench_httparchive):
    """Ablation: the >=2-CNAME threshold against 1 and 3."""
    classification, coverage = bench_httparchive

    def run():
        outputs = {}
        for threshold in (1, 2, 3):
            heuristic = ChainHeuristic(min_cnames=threshold)
            outputs[threshold] = figure3_cdn_popularity(
                bench_result, classification, coverage, heuristic=heuristic
            )["GoogleDNS"]
        return outputs

    outputs = benchmark(run)
    print("\nChain-threshold ablation (mean CDN share):")
    for threshold, series in outputs.items():
        print(f"  >= {threshold} CNAMEs -> {series.mean():.4f}")
    # Threshold 1 over-counts (www CNAME apex is ubiquitous),
    # threshold 3 finds almost nothing; 2 sits in between.
    assert outputs[1].mean() > outputs[2].mean() > outputs[3].mean()
    assert outputs[3].mean() < 0.01
