"""Figure 4 — RPKI deployment on CDNs vs the unconditioned web.

Paper: "RPKI deployment is fairly independent of the rank for CDNs.
Results fluctuate around an average of ~0.9%.  This is almost an
order of magnitude lower than the overall RPKI deployment rate."
"""

from repro.analysis import trend_slope
from repro.core import figure4_rpki_cdn


def _print(series_map):
    print("\nFigure 4: RPKI-enabled share per rank bin")
    overall = series_map["rpki_enabled"]
    cdn = series_map["rpki_enabled_cdn"]
    step = max(1, len(overall) // 10)
    for index in range(0, len(overall), step):
        start, end = overall.bin_range(index)
        print(
            f"  ranks {start:>7}-{end:<7}  overall={overall.values[index]:.4f}  "
            f"cdn={cdn.values[index]:.4f} (n={cdn.counts[index]})"
        )
    print(
        f"  overall mean={overall.mean():.4f}  cdn mean={cdn.mean():.4f}  "
        f"ratio={overall.mean() / max(cdn.mean(), 1e-9):.1f}x"
    )


def test_figure4_rpki_cdn(benchmark, bench_result):
    series_map = benchmark(figure4_rpki_cdn, bench_result)
    _print(series_map)
    overall = series_map["rpki_enabled"]
    cdn = series_map["rpki_enabled_cdn"]

    # CDN-hosted sites are much worse off than the web at large
    # (paper: ~0.9% vs ~5%, almost an order of magnitude).
    assert cdn.mean() < overall.mean() / 2
    assert cdn.mean() < 0.03
    assert 0.02 < overall.mean() < 0.12

    # For CDNs, deployment is fairly independent of the rank: the
    # rank trend is much weaker than the overall series' trend.
    assert abs(trend_slope(cdn.values)) < max(
        3 * abs(trend_slope(overall.values)), 1e-4
    )


def test_figure4_third_party_inheritance(benchmark, bench_world, bench_result):
    """Section 4.2: "CDN servers that are placed in third party
    networks benefit from RPKI deployment that these networks
    perform" — every RPKI-enabled *cache address* sits in third-party
    space because the CDNs sign (almost) nothing themselves."""

    def classify_cache_coverage():
        signed = list(bench_world.adoption.signed_prefixes)
        rows = {"third_party_covered": 0, "own_covered": 0, "uncovered": 0}
        internap_prefixes = {
            prefix
            for org in bench_world.organisations
            if org.name == "Internap"
            for prefix in org.prefixes
        }
        for pool in bench_world.hosting.caches.values():
            for cache in pool:
                covered = any(
                    prefix.contains(cache.addresses[0]) for prefix in signed
                )
                if not covered:
                    rows["uncovered"] += 1
                elif cache.third_party:
                    rows["third_party_covered"] += 1
                else:
                    rows["own_covered"] += 1
        return rows

    rows = benchmark(classify_cache_coverage)
    print(f"\nCache RPKI coverage: {rows}")
    # Coverage of CDN content comes from third-party networks (the
    # only possible exception being Internap's four own prefixes).
    assert rows["third_party_covered"] >= rows["own_covered"]
    assert rows["uncovered"] > rows["third_party_covered"]
