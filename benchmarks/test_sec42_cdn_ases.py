"""Section 4.2 in-text numbers — CDN ASes and their RPKI objects.

Paper: "We discover 199 ASes operated by these CDNs.  From these, we
find only four entries in the RPKI.  These four prefixes are owned by
Internap and are tied to three origin ASes ... Internap operates at
least 41 ASes ... No other CDN has made any deployment."
"""

from repro.core import cdn_as_report
from repro.core.cdn_asns import spot_cdn_ases
from repro.web.cdn import CDN_CATALOGUE


def test_sec42_cdn_as_report(benchmark, bench_world):
    report = benchmark(cdn_as_report, bench_world)
    print(f"\nSection 4.2: {report.summary()}")
    per_operator = {
        name: len(ases) for name, ases in report.ases_per_operator.items()
    }
    print(f"  per operator: {per_operator}")

    assert report.total_cdn_ases == 199
    assert report.rpki_entry_count == 4
    assert len(report.rpki_origin_ases) == 3
    assert report.operators_with_rpki == {"Internap"}
    assert per_operator["Internap"] == 41
    assert len(per_operator) == 16


def test_sec42_keyword_spotting_is_lower_bound(benchmark, bench_world):
    """Keyword spotting never attributes a non-CDN AS to a CDN."""
    assignment = bench_world.as_assignment_list()
    spotted = benchmark(spot_cdn_ases, assignment)
    cdn_org_names = {op.name for op in CDN_CATALOGUE}
    for operator_name, ases in spotted.items():
        for asn in ases:
            org = bench_world.org_of_asn(asn)
            assert org is not None
            assert org.name in cdn_org_names
            assert org.name == operator_name
