"""Section 4 opening statistics and pipeline throughput.

Paper: "After excluding 0.07% incorrect DNS answers, we gathered
1,167,086 IP addresses for the www domains and 1,154,170 IP addresses
for the w/o www domains.  These addresses map to 1,369,030 and
1,334,957 different prefix-AS pairs respectively.  0.01% of the IP
addresses are not reachable from our BGP vantage points."
"""

from repro.core import MeasurementStudy, pipeline_statistics


def test_sec4_statistics(benchmark, bench_world, bench_result):
    stats = benchmark(pipeline_statistics, bench_result)
    print("\nSection 4 statistics (paper @1M | measured):")
    domains = stats["domains"]
    print(f"  domains: 1,000,000 | {domains}")
    print(f"  invalid DNS fraction: 0.0007 | {stats['invalid_dns_fraction']:.5f}")
    print(
        f"  addresses/domain (www): 1.167 | "
        f"{stats['www_addresses'] / domains:.3f}"
    )
    print(
        f"  addresses/domain (plain): 1.154 | "
        f"{stats['plain_addresses'] / domains:.3f}"
    )
    print(
        f"  pairs/address (www): 1.173 | "
        f"{stats['www_pairs'] / max(stats['www_addresses'], 1):.3f}"
    )
    print(f"  unreachable fraction: 0.0001 | {stats['unreachable_fraction']:.5f}")
    print(f"  AS_SET exclusions: {stats['as_set_exclusions']}")

    # More addresses than domains (multiple A records per name).
    assert stats["www_addresses"] > domains
    assert stats["plain_addresses"] > domains
    # A tiny share of invalid DNS answers (paper: 0.07%).
    assert 0 <= stats["invalid_dns_fraction"] < 0.005
    # A tiny share of unreachable addresses (paper: 0.01%).
    assert 0 <= stats["unreachable_fraction"] < 0.005


def test_sec4_study_throughput(benchmark, bench_world):
    """Benchmark the full four-step pipeline over a rank slice."""
    study = MeasurementStudy.from_ecosystem(bench_world)
    sample = bench_world.ranking.top(500)

    def run_slice():
        return [study.measure_domain(domain) for domain in sample]

    measurements = benchmark(run_slice)
    assert len(measurements) == 500
    usable = sum(1 for m in measurements if m.usable)
    print(f"\nThroughput sample: {usable}/500 usable")
    assert usable > 480
