"""Table 1 — top Alexa domains with (partial) RPKI coverage.

Paper findings to reproduce in shape: (i) almost all very popular
sites are unsecured (the qualifying domains are sparse among the top
ranks); (ii) www and w/o-www coverage sometimes differs; (iii) most
covered content is only *partially* covered.
"""

from repro.core import table1_top_covered
from repro.core.reports import render_table1


def test_table1_top_covered(benchmark, bench_result):
    rows = benchmark(table1_top_covered, bench_result, 10)
    print("\nTable 1: top domains with RPKI coverage")
    print(render_table1(rows))

    assert 0 < len(rows) <= 10
    # (i) RPKI-enabled sites are sparse at the top: the tenth covered
    # domain sits far beyond rank 10.
    assert rows[-1].rank > 10
    # (iii) partial coverage exists ("most of the content is only
    # partially secured") unless this world's covered head happens to
    # be single-prefix — flag either way for the experiment log.
    partial = [
        row for row in rows
        if not row.www_full and row.www_label not in ("n/a",)
        and not row.www_label.startswith("(0/")
    ]
    full = [row for row in rows if row.www_full]
    print(f"  partial={len(partial)} full={len(full)}")
    assert partial or full


def test_table1_www_vs_plain_differences(bench_result, benchmark):
    """(ii) differing RPKI support between the www and w/o-www forms."""

    def count_differing():
        rows = table1_top_covered(bench_result, count=50)
        return [
            row for row in rows
            if row.www_label != row.plain_label
        ]

    differing = benchmark(count_differing)
    print(f"\nDomains with differing www/plain coverage: {len(differing)}")
    for row in differing[:5]:
        print(f"  #{row.rank} {row.name}: www {row.www_label} vs {row.plain_label}")
    assert differing, "expected at least one www/plain coverage difference"
