#!/usr/bin/env python3
"""CDN deep-dive (paper Sections 4.2 and 4.3).

Walks the paper's CDN analysis: keyword spotting of CDN ASes, the
search for their RPKI objects, the two CDN-detection heuristics, and
the "are the CDNs to blame?" join of CDN-ness with RPKI coverage.

Run:  python examples/cdn_study.py
"""

import sys

from repro import EcosystemConfig, MeasurementStudy, WebEcosystem
from repro.analysis import TextTable
from repro.core import ChainHeuristic, cdn_as_report, figure3_cdn_popularity, figure4_rpki_cdn
from repro.web import HTTPArchiveClassifier


def main() -> int:
    print("Building the world...")
    world = WebEcosystem.build(EcosystemConfig(domain_count=8000, seed=2015))
    result = MeasurementStudy.from_ecosystem(world).run()

    # -- Section 4.2: which CDN ASes are in the RPKI? --------------------
    print("\n== Keyword spotting over AS assignment lists (Section 4.2) ==")
    report = cdn_as_report(world)
    table = TextTable(["CDN", "ASes spotted", "RPKI entries"])
    for name in sorted(report.ases_per_operator):
        entries = (
            report.rpki_entry_count if name in report.operators_with_rpki else 0
        )
        table.add_row(name, len(report.ases_per_operator[name]), entries)
    print(table.render())
    print(f"-> {report.summary()}")

    # -- Section 4.3: two detection heuristics ---------------------------
    print("\n== CDN detection: chain heuristic vs HTTPArchive ==")
    coverage = len(world.ranking) * 3 // 10
    classifier = HTTPArchiveClassifier(world.namespace, coverage=coverage)
    archive = classifier.classify_all(world.ranking)
    heuristic = ChainHeuristic()
    counts = heuristic.agreement(result, archive)
    print(f"  agreement over first {coverage} ranks + tail: {counts}")
    print("  (the chain heuristic is the conservative under-estimate: "
          "single-CNAME deployments are pattern-matched only)")

    fig3 = figure3_cdn_popularity(result, archive, coverage)
    print(f"  CDN share, top 10% of ranks:    "
          f"{fig3['GoogleDNS'].head_mean(10):.1%} (chains) vs "
          f"{fig3['HTTPArchive'].head_mean(10):.1%} (patterns)")
    print(f"  CDN share, bottom 10% of ranks: "
          f"{fig3['GoogleDNS'].tail_mean(10):.1%} (chains)")

    # -- Are the CDNs to blame? ------------------------------------------
    print("\n== Are the CDNs to blame? (Figure 4 join) ==")
    fig4 = figure4_rpki_cdn(result)
    overall = fig4["rpki_enabled"].mean()
    cdn = fig4["rpki_enabled_cdn"].mean()
    print(f"  RPKI-enabled overall:        {overall:.2%}")
    print(f"  RPKI-enabled on CDN-hosted:  {cdn:.2%}")
    if cdn > 0:
        print(f"  -> CDN-hosted sites are {overall / cdn:.1f}x worse off")

    # Where does the residual CDN coverage come from? Third parties.
    signed = list(world.adoption.signed_prefixes)
    third_party, own = 0, 0
    for pool in world.hosting.caches.values():
        for cache in pool:
            if any(p.contains(cache.addresses[0]) for p in signed):
                if cache.third_party:
                    third_party += 1
                else:
                    own += 1
    print(f"\n  RPKI-covered caches: {third_party} in third-party networks, "
          f"{own} in CDN-owned space (the latter can only be Internap)")
    print("  -> 'CDN servers that are placed in third party networks "
          "benefit from RPKI deployment that these networks perform'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
