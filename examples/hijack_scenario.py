#!/usr/bin/env python3
"""Attacker-model walkthrough (paper Section 2.3).

Stages the Pakistan-Telecom-style scenario the paper opens with: a
malicious AS announces a popular website's prefix (then a more
specific of it) and we watch where the traffic goes — first without
any protection, then with RPKI origin validation at progressively
more networks.

Run:  python examples/hijack_scenario.py
"""

import sys

from repro.bgp import Announcement, ASRole, HijackScenario
from repro.net import Prefix
from repro.rpki import VRP, ValidatedPayloads
from repro.web import EcosystemConfig, WebEcosystem
from repro.web.organisations import OrgKind


def main() -> int:
    print("Building a small Internet...")
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=2000, seed=7, hoster_count=100)
    )
    topology = world.topology
    print(f"  {topology!r}")

    # The victim: a webhoster prefix; the attacker: a distant eyeball AS.
    victim_org = next(
        org for org in world.organisations if org.kind is OrgKind.HOSTER
    )
    victim_prefix, victim_asn = sorted(victim_org.prefixes.items())[0]
    attacker = topology.by_role(ASRole.EYEBALL)[-1].asn
    print(f"\nVictim:   {victim_org.name} announces {victim_prefix} "
          f"from {victim_asn}")
    print(f"Attacker: {attacker} "
          f"({topology.node(attacker).name})")

    scenario = HijackScenario(topology)
    victim_announcement = Announcement(prefix=victim_prefix, origin=victim_asn)

    print("\n[1] Origin hijack (same prefix), no RPKI anywhere:")
    outcome = scenario.run(victim_announcement, attacker)
    print(f"    attacker captures {len(outcome.attacker_captured)}"
          f"/{outcome.total_ases} ASes ({outcome.capture_fraction:.1%}); "
          f"victim retains {outcome.retained_fraction:.1%}")

    sub_prefix = Prefix(4, victim_prefix.value, victim_prefix.length + 2)
    print(f"\n[2] Sub-prefix hijack ({sub_prefix}), no RPKI anywhere:")
    outcome = scenario.run(
        victim_announcement, attacker, hijack_prefix=sub_prefix
    )
    print(f"    longest-prefix match is merciless: attacker captures "
          f"{outcome.capture_fraction:.1%}")

    # The victim signs a ROA with a maxLength covering its space.
    payloads = ValidatedPayloads(
        [VRP(victim_prefix, 24, victim_asn, "RIPE")]
    )
    all_asns = sorted(n.asn for n in topology.ases() if n.asn != attacker)
    print(f"\n[3] Victim signs a ROA ({victim_prefix}-24 => {victim_asn}); "
          f"sweep enforcement:")
    for share in (0.1, 0.25, 0.5, 0.75, 1.0):
        enforcing = frozenset(all_asns[: int(len(all_asns) * share)])
        outcome = scenario.run(
            victim_announcement,
            attacker,
            hijack_prefix=sub_prefix,
            payloads=payloads,
            enforcing=enforcing,
        )
        print(f"    {share:>4.0%} of ASes validating -> attacker captures "
              f"{outcome.capture_fraction:6.1%}")

    print("\n[4] Local scope: even partial enforcement protects the "
          "customers of validating networks first — the attacker 'can "
          "harm specific subsets of clients' only where validation is "
          "missing (Section 2.3).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
