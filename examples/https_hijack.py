#!/usr/bin/env python3
"""Breaking HTTPS with BGP hijacking — and fixing it with RPKI.

The paper (Section 2.3) cites Gavrichenkov's Black Hat 2015 talk:
"TLS does not necessarily protect against such an attack when prefix
hijacking is in place."  This walkthrough stages the full attack:

  hijack (briefly) -> pass the CA's domain validation -> obtain a
  browser-trusted certificate -> withdraw -> MITM at leisure.

Then it repeats the attack with RPKI origin validation enabled and
watches it die at the CA's border router.

Run:  python examples/https_hijack.py
"""

import sys

from repro.bgp import Announcement, ASTopology
from repro.crypto import DeterministicRNG
from repro.dns import Namespace, PublicResolver
from repro.dns.vantage import ResolverSpec
from repro.net import ASN, Prefix
from repro.rpki import VRP, ValidatedPayloads
from repro.webpki import BGPCertificateAttack, DomainControlValidator, WebCA

VICTIM_PREFIX = Prefix.parse("5.0.0.0/16")
VICTIM_ASN = ASN(10)
ATTACKER_ASN = ASN(20)
CA_ASN = ASN(30)


def main() -> int:
    # A small internetwork: transit AS2 on top, three customer cones.
    topo = ASTopology()
    for asn in (1, 2, 3, 4, 10, 20, 30):
        topo.add_as(asn)
    for customer in (1, 3, 4):
        topo.add_provider(customer, 2)
    topo.add_provider(10, 1)   # victim's hoster
    topo.add_provider(20, 3)   # attacker
    topo.add_provider(30, 4)   # the CA's data centre

    namespace = Namespace()
    namespace.add_address("shop.example", "5.0.0.10")
    namespace.add_cname("www.shop.example", "shop.example")
    ca_resolver = PublicResolver(namespace, ResolverSpec("CA-DNS", "ca-dc"))

    def legitimate_host(address):
        return VICTIM_ASN if VICTIM_PREFIX.contains(address) else None

    def make_ca():
        return WebCA(
            "SimTrust DV",
            DeterministicRNG("demo-ca"),
            DomainControlValidator(resolver=ca_resolver, ca_asn=CA_ASN),
        )

    attack = BGPCertificateAttack(topo, legitimate_host)
    victim_announcement = Announcement(VICTIM_PREFIX, VICTIM_ASN)

    print("[1] shop.example is served from 5.0.0.10 "
          f"({VICTIM_PREFIX} by {VICTIM_ASN}); TLS via 'SimTrust DV'.")

    print("\n[2] Attack, no RPKI anywhere:")
    result = attack.execute(
        victim_domain="shop.example",
        victim_announcement=victim_announcement,
        attacker_asn=ATTACKER_ASN,
        ca=make_ca(),
        hijack_prefix="5.0.0.0/18",
    )
    print(f"    hijack churned {result.hijack_messages} UPDATEs")
    print(f"    certificate issued to the attacker: {result.succeeded}")
    print(f"    routing healed after withdrawal:    {result.healed}")
    print(f"    browsers would accept the cert:     {result.mitm_possible}")
    if result.certificate:
        cert = result.certificate
        print(f"    -> {cert!r}, valid until t={cert.not_after}")
        print("    The hijack lasted one validation round-trip; the "
              "certificate lasts 90 days.")

    print("\n[3] Same attack; the victim has a ROA and the networks "
          "validate:")
    payloads = ValidatedPayloads([VRP(VICTIM_PREFIX, 24, VICTIM_ASN)])
    result = attack.execute(
        victim_domain="shop.example",
        victim_announcement=victim_announcement,
        attacker_asn=ATTACKER_ASN,
        ca=make_ca(),
        hijack_prefix="5.0.0.0/18",
        payloads=payloads,
        enforcing=[ASN(1), ASN(2), ASN(3), ASN(4), CA_ASN],
    )
    print(f"    certificate issued to the attacker: {result.succeeded}")
    print(f"    browsers would accept a cert:       {result.mitm_possible}")
    print("\n    The invalid more-specific never reaches the CA; its "
          "validation connection lands at the genuine server, issuance "
          "fails.  End-to-end security needed the routing layer after all.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
