#!/usr/bin/env python3
"""Quickstart: build a world, run the study, print the headline result.

Reproduces the paper's core finding in ~30 seconds: popular websites
are *less* likely to be protected by RPKI than unpopular ones, and
CDN-hosted websites are the least protected of all.

Run:  python examples/quickstart.py [domain_count] [seed]
"""

import sys
import time

from repro import EcosystemConfig, MeasurementStudy, WebEcosystem
from repro.core import (
    figure2_rpki_outcome,
    figure4_rpki_cdn,
    pipeline_statistics,
    table1_top_covered,
)
from repro.core.reports import render_table1


def main() -> int:
    domain_count = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2015

    print(f"Building a synthetic web ecosystem ({domain_count} domains)...")
    started = time.time()
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=domain_count, seed=seed)
    )
    print(f"  {world!r}  [{time.time() - started:.1f}s]")
    print(f"  RPKI: {world.adoption.report.summary()}")

    print("Running the four-step measurement study...")
    started = time.time()
    result = MeasurementStudy.from_ecosystem(world).run()
    print(f"  measured {len(result)} domains  [{time.time() - started:.1f}s]")

    stats = pipeline_statistics(result)
    print(f"\n{stats['www_addresses']} www addresses, "
          f"{stats['plain_addresses']} w/o-www addresses resolved")

    fig2 = figure2_rpki_outcome(result)
    head = fig2["valid"].head_mean(10)
    tail = fig2["valid"].tail_mean(10)
    print("\n-- The tragic story --")
    print(f"RPKI-valid share, most popular 10% of sites:  {head:.2%}")
    print(f"RPKI-valid share, least popular 10% of sites: {tail:.2%}")
    print("=> less popular content is MORE secured" if head < tail
          else "=> (this seed bucks the trend; try a larger population)")

    fig4 = figure4_rpki_cdn(result)
    print(f"\nRPKI-enabled websites overall:    "
          f"{fig4['rpki_enabled'].mean():.2%}")
    print(f"RPKI-enabled among CDN-hosted:    "
          f"{fig4['rpki_enabled_cdn'].mean():.2%}")
    print("=> CDNs are the principal cause of the degraded head of the "
          "ranking")

    print("\nTop domains with any RPKI coverage (Table 1 analogue):")
    print(render_table1(table1_top_covered(result, count=8)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
