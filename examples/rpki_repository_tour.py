#!/usr/bin/env python3
"""RPKI substrate tour: build a tiny PKI by hand and watch the
relying party accept, reject, and revoke objects.

This example uses no synthetic-world machinery — only the public
RPKI API — and shows why "only cryptographically correct ROAs are
further used" (paper, Section 3, step 4).

Run:  python examples/rpki_repository_tour.py
"""

import dataclasses
import sys

from repro.crypto import DeterministicRNG
from repro.net import Prefix
from repro.rpki import (
    CertificateAuthority,
    OriginValidation,
    RelyingParty,
    Repository,
    ResourceSet,
    TrustAnchorLocator,
)
from repro.rpki.repository import publish_ca_products
from repro.rpki.roa import issue_roa


def main() -> int:
    rng = DeterministicRNG("rpki-tour")

    # 1. A trust anchor (think RIPE NCC) and a member LIR below it.
    ripe = CertificateAuthority.create_trust_anchor("RIPE", rng)
    lir = ripe.issue_child_ca(
        "ExampleNet",
        ResourceSet.from_strings(prefixes=["5.0.0.0/16"], asns=[64500]),
    )
    print(f"Trust anchor: {ripe.certificate!r}")
    print(f"Member CA:    {lir.certificate!r}")

    # 2. The LIR authorizes its AS to originate a prefix.
    roa = issue_roa(lir, 64500, [("5.0.0.0/16", 20)])
    print(f"ROA issued:   {roa!r}")

    # 3. Publish and validate.
    repo = Repository()
    repo.add_trust_anchor(ripe.certificate)
    publish_ca_products(repo, ripe, [])
    publish_ca_products(repo, lir, [roa])
    tal = TrustAnchorLocator.for_authority(ripe)

    payloads, report = RelyingParty(repo).validate([tal], now=1.0)
    print(f"\nValidation:   {report.summary()}")
    for vrp in payloads:
        print(f"  VRP: {vrp}")

    # 4. Origin validation from a router's point of view.
    cases = [
        ("5.0.0.0/16", 64500),   # exactly authorized
        ("5.0.128.0/20", 64500), # within maxLength
        ("5.0.128.0/24", 64500), # too specific
        ("5.0.0.0/16", 666),     # wrong origin (a hijack)
        ("8.8.8.0/24", 15169),   # unknown space
    ]
    print("\nRouter origin validation (RFC 6811):")
    for prefix_text, origin in cases:
        state = payloads.validate_origin(Prefix.parse(prefix_text), origin)
        print(f"  {prefix_text:>15} from AS{origin:<6} -> {state}")

    # 5. Tampering is caught cryptographically, not by convention.
    point = repo.lookup(lir.keypair.public.fingerprint())
    name = next(iter(point.roas))
    genuine = point.roas[name]
    point.roas[name] = dataclasses.replace(genuine, signature=genuine.signature ^ 1)
    payloads, report = RelyingParty(repo).validate([tal], now=1.0)
    print(f"\nAfter tampering with the ROA signature: {report.summary()}")
    print(f"  VRPs now: {len(payloads)} (the forged object is discarded)")

    # 6. Revocation: the LIR key is compromised, RIPE revokes its cert.
    point.roas[name] = genuine
    ripe.revoke(lir.certificate.serial)
    publish_ca_products(repo, ripe, [])
    payloads, report = RelyingParty(repo).validate([tal], now=1.0)
    print(f"\nAfter revoking the LIR certificate: {report.summary()}")
    assert payloads.validate_origin(
        Prefix.parse("5.0.0.0/16"), 64500
    ) is OriginValidation.NOT_FOUND
    print("  The LIR's ROAs vanish with it: back to NOT_FOUND.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
