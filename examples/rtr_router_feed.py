#!/usr/bin/env python3
"""The full RPKI-to-router loop (RFC 8210 + RFC 6811).

Relying party validates the repository -> RTR cache serves VRPs ->
a router's RTR client synchronises -> the router enforces origin
validation in live BGP -> a new ROA arrives, the cache notifies, and
the router *re-validates* already-installed routes.

This is the deployment pipeline whose absence the paper laments: the
machinery exists (the authors built RTRlib); operators just have to
turn it on.

Run:  python examples/rtr_router_feed.py
"""

import sys

from repro.bgp import Announcement, ASTopology
from repro.bgp.session import SessionSimulator
from repro.crypto import DeterministicRNG
from repro.net import ASN, Prefix
from repro.rpki import (
    CertificateAuthority,
    RelyingParty,
    Repository,
    ResourceSet,
    TrustAnchorLocator,
)
from repro.rpki.repository import publish_ca_products
from repro.rpki.roa import issue_roa
from repro.rpki.rtr import RTRCache, RTRClient, TransportPair


def sync(pair, cache, client):
    for _ in range(4):
        cache.serve(pair.cache_side)
        client.poll()


def main() -> int:
    # -- 1. The RPKI side: a trust anchor and one signed prefix. --------
    ripe = CertificateAuthority.create_trust_anchor(
        "RIPE", DeterministicRNG("rtr-demo")
    )
    lir = ripe.issue_child_ca(
        "VictimNet", ResourceSet.from_strings(prefixes=["5.0.0.0/16"], asns=[10])
    )
    repo = Repository()
    repo.add_trust_anchor(ripe.certificate)
    publish_ca_products(repo, ripe, [])
    publish_ca_products(repo, lir, [])  # no ROA yet!
    tal = TrustAnchorLocator.for_authority(ripe)

    payloads, report = RelyingParty(repo).validate([tal], now=1.0)
    print(f"Relying party: {report.summary()} -> {len(payloads)} VRPs")

    # -- 2. RTR plumbing: cache on the RP, client on the router. ---------
    pair = TransportPair()
    cache = RTRCache(session_id=42)
    cache.load(payloads)
    client = RTRClient(pair.router_side, trust_anchor="RIPE")
    client.start()
    sync(pair, cache, client)
    print(f"RTR: {client!r}")

    # -- 3. A small internetwork with a hijack in flight. ----------------
    #      2 (transit) on top; 1 and 3 customers; victim 10, attacker 20.
    topo = ASTopology()
    for asn in (1, 2, 3, 10, 20):
        topo.add_as(asn)
    topo.add_provider(1, 2)
    topo.add_provider(3, 2)
    topo.add_provider(10, 1)
    topo.add_provider(20, 3)

    sim = SessionSimulator(topo)
    victim_prefix = Prefix.parse("5.0.0.0/16")
    sim.announce(Announcement.make("5.0.0.0/16", 10))   # victim
    sim.announce(Announcement.make("5.0.0.0/16", 20))   # hijacker (MOAS)
    sim.run()
    route_at_2 = sim.route_at(ASN(2), victim_prefix)
    print(f"\nWithout enforcement, AS2 routes to origin "
          f"{route_at_2.origin} (path [{route_at_2.path}])")
    route_at_3 = sim.route_at(ASN(3), victim_prefix)
    print(f"AS3 (attacker side) routes to origin {route_at_3.origin}")

    # Feed the router's RTR table to the transit core: nothing changes
    # yet, the table is empty (NOT_FOUND passes the filter).
    sim.configure_validation(client.payloads(), enforcing=[ASN(1), ASN(2), ASN(3)])
    sim.run()
    print(f"Empty VRP table installed: AS3 still routes to "
          f"{sim.route_at(ASN(3), victim_prefix).origin} (not found != invalid)")

    # -- 4. The victim signs a ROA; the cache notifies; routers heal. ----
    roa = issue_roa(lir, 10, [("5.0.0.0/16", 16)])
    publish_ca_products(repo, lir, [roa])
    payloads, report = RelyingParty(repo).validate([tal], now=1.0)
    announced, withdrawn = cache.load(payloads)
    print(f"\nVictim signs a ROA -> relying party revalidates "
          f"({len(payloads)} VRPs), cache diff +{announced}/-{withdrawn}")
    cache.notify(pair.cache_side)  # Serial Notify towards the router
    sync(pair, cache, client)
    print(f"RTR after refresh: {client!r}")

    sim.configure_validation(client.payloads(), enforcing=[ASN(1), ASN(2), ASN(3)])
    sim.run()
    healed = sim.route_at(ASN(3), victim_prefix)
    print(f"\nAfter revalidation, AS3 routes to origin {healed.origin} "
          f"(path [{healed.path}]) — the hijack is expelled everywhere "
          f"except the attacker itself.")
    assert healed.origin == 10
    return 0


if __name__ == "__main__":
    sys.exit(main())
