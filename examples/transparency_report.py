#!/usr/bin/env python3
"""Per-domain delivery-security audits (paper Section 5.1).

The paper asks: "How can a content owner easily verify that his
content is reliably and securely delivered in the current Web
ecosystem?"  This example answers it for a handful of domains of the
synthetic world: one call, one graded report with actionable
findings.

Run:  python examples/transparency_report.py
"""

import sys

from repro import EcosystemConfig, WebEcosystem
from repro.core.transparency import audit_domain, render_report


def main() -> int:
    print("Building the world...")
    world = WebEcosystem.build(EcosystemConfig(domain_count=4000, seed=2015))

    # Audit a sample until we have seen every grade.
    seen = {}
    for domain in world.ranking:
        report = audit_domain(world, domain.name)
        seen.setdefault(report.grade, report)
        if set(seen) >= {"A", "B", "C", "F"}:
            break

    for grade in ("A", "B", "C", "F"):
        report = seen.get(grade)
        if report is None:
            continue
        print("\n" + "=" * 64)
        print(render_report(report))

    print("\n" + "=" * 64)
    total = {"A": 0, "B": 0, "C": 0, "F": 0}
    for domain in world.ranking.top(1000):
        total[audit_domain(world, domain.name).grade] += 1
    print("Grade distribution over the top 1000 domains:")
    for grade, count in total.items():
        print(f"  {grade}: {count:4d}  {'#' * (count // 20)}")
    print("\nThe tragic story, per-domain: almost everything is a C.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
