"""Thin setuptools shim.

The offline evaluation environment ships setuptools but not ``wheel``,
so the PEP 660 editable-install path is unavailable; this file enables
pip's legacy ``setup.py develop`` fallback.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
