"""RiPKI reproduction.

A full reproduction of "RiPKI: The Tragic Story of RPKI Deployment in
the Web Ecosystem" (Wählisch et al., ACM HotNets 2015) over a
synthetic but behaviour-faithful Internet: a from-scratch RPKI with
real signature validation, Gao–Rexford BGP propagation with route
collectors, a DNS substrate with CDN CNAME chains, and the paper's
four-step measurement methodology on top.

Quickstart::

    from repro import EcosystemConfig, MeasurementStudy, WebEcosystem

    world = WebEcosystem.build(EcosystemConfig(domain_count=10_000))
    result = MeasurementStudy.from_ecosystem(world).run()

    from repro.core import figure2_rpki_outcome
    fig2 = figure2_rpki_outcome(result)
    print(fig2["valid"].head_mean(10), fig2["valid"].tail_mean(10))
"""

from repro.core import MeasurementStudy, RunConfig, StudyResult
from repro.errors import ReproError, RetryExhausted, TransientFault
from repro.web import EcosystemConfig, WebEcosystem

__version__ = "1.0.0"

__all__ = [
    "EcosystemConfig",
    "MeasurementStudy",
    "ReproError",
    "RetryExhausted",
    "RunConfig",
    "StudyResult",
    "TransientFault",
    "WebEcosystem",
    "__version__",
]
