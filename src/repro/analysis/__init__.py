"""Analysis utilities: rank binning, summary statistics, text tables."""

from repro.analysis.series import BinnedSeries, bin_means, bin_shares
from repro.analysis.stats import mean, quantile, trend_slope
from repro.analysis.tables import TextTable

__all__ = [
    "BinnedSeries",
    "TextTable",
    "bin_means",
    "bin_shares",
    "mean",
    "quantile",
    "trend_slope",
]
