"""Terminal chart rendering for binned series.

The benchmark harness and CLI print the figures' *rows*; this module
adds a visual: unicode sparklines and multi-series block charts so
the shapes of Figures 1-4 are visible directly in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.series import BinnedSeries

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> str:
    """One-line unicode sparkline of a value sequence."""
    values = list(values)
    if not values:
        return ""
    low = min(values) if minimum is None else minimum
    high = max(values) if maximum is None else maximum
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        index = max(0, min(len(_SPARK_LEVELS) - 1, index))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def series_chart(
    series_map: Dict[str, BinnedSeries],
    width: int = 80,
    shared_scale: bool = True,
) -> str:
    """Multi-series sparkline chart with a shared or per-series scale.

    Each series is resampled (by averaging) to at most ``width`` bins
    so the chart fits one terminal line per series.
    """
    if not series_map:
        return ""
    lines: List[str] = []
    all_values = [
        value
        for series in series_map.values()
        for value, count in zip(series.values, series.counts or [1] * len(series))
        if count
    ]
    low = min(all_values) if all_values else 0.0
    high = max(all_values) if all_values else 1.0
    label_width = max(len(label) for label in series_map)
    for label, series in series_map.items():
        values = _resample(series, width)
        if shared_scale:
            spark = sparkline(values, low, high)
        else:
            spark = sparkline(values)
        lines.append(
            f"{label.ljust(label_width)}  {spark}  "
            f"[{min(values):.4f} .. {max(values):.4f}]"
            if values
            else f"{label.ljust(label_width)}  (empty)"
        )
    return "\n".join(lines)


def _resample(series: BinnedSeries, width: int) -> List[float]:
    """Average consecutive bins down to at most ``width`` points.

    Empty bins (count 0, e.g. HTTPArchive beyond its coverage) are
    dropped from the tail rather than averaged in as zeros.
    """
    counts = series.counts or [1] * len(series.values)
    pairs = [
        (value, count)
        for value, count in zip(series.values, counts)
        if count
    ]
    if not pairs:
        return []
    if len(pairs) <= width:
        return [value for value, _count in pairs]
    resampled: List[float] = []
    chunk = len(pairs) / width
    for index in range(width):
        start = int(index * chunk)
        end = max(start + 1, int((index + 1) * chunk))
        window = pairs[start:end]
        total_count = sum(count for _v, count in window)
        resampled.append(
            sum(value * count for value, count in window) / total_count
        )
    return resampled
