"""Dataset export.

The paper commits to making all data available; this module writes
the study outputs in plain CSV so downstream users can re-analyse
without running the pipeline:

* :func:`export_measurements` — one row per (domain, name form,
  prefix, origin) with the validation state,
* :func:`export_domain_summary` — one row per domain with the derived
  per-domain metrics,
* :func:`export_series` — any binned series as (bin_start, bin_end,
  value, count) rows.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.series import BinnedSeries
from repro.core.pipeline import StudyResult


def export_measurements(
    result: StudyResult, path: Union[str, Path]
) -> int:
    """Write the full pair-level dataset; returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["rank", "domain", "form", "prefix", "origin_asn", "state"]
        )
        for measurement in result.by_rank():
            for form, name_measurement in (
                ("www", measurement.www),
                ("plain", measurement.plain),
            ):
                for pair in name_measurement.pairs:
                    writer.writerow(
                        [
                            measurement.rank,
                            measurement.domain.name,
                            form,
                            str(pair.prefix),
                            int(pair.origin),
                            str(pair.state),
                        ]
                    )
                    rows += 1
    return rows


def export_domain_summary(
    result: StudyResult, path: Union[str, Path]
) -> int:
    """Write one derived-metrics row per domain; returns the count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "rank", "domain", "usable", "is_cdn", "rpki_enabled",
                "valid_fraction", "invalid_fraction", "notfound_fraction",
                "prefix_overlap", "www_cnames", "plain_cnames",
            ]
        )
        for measurement in result.by_rank():
            valid, invalid, notfound = measurement.state_fractions()
            overlap = measurement.prefix_overlap()
            writer.writerow(
                [
                    measurement.rank,
                    measurement.domain.name,
                    int(measurement.usable),
                    int(measurement.is_cdn()),
                    int(measurement.rpki_enabled),
                    f"{valid:.6f}",
                    f"{invalid:.6f}",
                    f"{notfound:.6f}",
                    "" if overlap is None else f"{overlap:.6f}",
                    measurement.www.cname_count,
                    measurement.plain.cname_count,
                ]
            )
            rows += 1
    return rows


def export_series(
    series_list: Iterable[BinnedSeries], path: Union[str, Path]
) -> int:
    """Write one or more binned series in long format."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "bin_start", "bin_end", "value", "count"])
        for series in series_list:
            for index, value in enumerate(series.values):
                start, end = series.bin_range(index)
                count = series.counts[index] if series.counts else ""
                writer.writerow([series.label, start, end, f"{value:.6f}", count])
                rows += 1
    return rows
