"""Rank-binned series.

All the paper's figures plot a per-domain quantity aggregated in bins
of 10,000 Alexa ranks ("after experimenting with different bin
sizes").  :func:`bin_means` reproduces that aggregation for arbitrary
bin sizes so the bin-size ablation is a one-liner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


@dataclass
class BinnedSeries:
    """One plotted line: a label plus one value per rank bin."""

    label: str
    bin_size: int
    values: List[float]
    counts: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def bin_range(self, index: int) -> Tuple[int, int]:
        """Inclusive 1-based rank range of one bin."""
        start = index * self.bin_size + 1
        return start, start + self.bin_size - 1

    def mean(self) -> float:
        if not self.values:
            return 0.0
        total_count = sum(self.counts) if self.counts else len(self.values)
        if self.counts and total_count:
            weighted = sum(v * c for v, c in zip(self.values, self.counts))
            return weighted / total_count
        return sum(self.values) / len(self.values)

    def head_mean(self, bins: int = 10) -> float:
        """Mean over the first ``bins`` bins (the popular head)."""
        head = self.values[:bins]
        return sum(head) / len(head) if head else 0.0

    def tail_mean(self, bins: int = 10) -> float:
        tail = self.values[-bins:] if self.values else []
        return sum(tail) / len(tail) if tail else 0.0

    def rows(self) -> List[Tuple[int, int, float]]:
        """(bin start rank, bin end rank, value) rows for printing."""
        return [(*self.bin_range(i), v) for i, v in enumerate(self.values)]

    def __repr__(self) -> str:
        return (
            f"<BinnedSeries {self.label!r} {len(self.values)} bins "
            f"of {self.bin_size}>"
        )


def bin_means(
    per_rank_values: Sequence[Optional[float]],
    bin_size: int,
    label: str = "",
) -> BinnedSeries:
    """Average a per-rank sequence into rank bins.

    ``None`` entries (domains excluded from a metric) are skipped and
    do not dilute the bin average.  Index 0 of the input corresponds
    to rank 1.
    """
    if bin_size <= 0:
        raise ValueError("bin_size must be positive")
    values: List[float] = []
    counts: List[int] = []
    for start in range(0, len(per_rank_values), bin_size):
        chunk = [
            value
            for value in per_rank_values[start:start + bin_size]
            if value is not None
        ]
        counts.append(len(chunk))
        values.append(sum(chunk) / len(chunk) if chunk else 0.0)
    return BinnedSeries(label=label, bin_size=bin_size, values=values, counts=counts)


def bin_shares(
    per_rank_flags: Sequence[Optional[bool]],
    bin_size: int,
    label: str = "",
) -> BinnedSeries:
    """Fraction of True per bin (None entries excluded)."""
    numeric = [
        None if flag is None else (1.0 if flag else 0.0)
        for flag in per_rank_flags
    ]
    return bin_means(numeric, bin_size, label)
