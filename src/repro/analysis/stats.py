"""Small statistics helpers used by experiments and benches."""

from __future__ import annotations

from typing import List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (q in [0, 1])."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def trend_slope(values: Sequence[float]) -> float:
    """Least-squares slope over index — sign gives the rank trend.

    Used to check directional claims like "less popular content is
    more secured" (positive slope of coverage over rank bins).
    """
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = mean(values)
    numerator = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    denominator = sum((i - mean_x) ** 2 for i in range(n))
    return numerator / denominator if denominator else 0.0
