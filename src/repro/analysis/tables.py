"""Plain-text table rendering for benchmark and CLI output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


class TextTable:
    """A minimal fixed-width table renderer."""

    def __init__(self, headers: Sequence[str]):
        self._headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self._headers):
            raise ValueError(
                f"expected {len(self._headers)} cells, got {len(cells)}"
            )
        self._rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(self._headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self._rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:
        return self.render()
