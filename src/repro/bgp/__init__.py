"""BGP substrate.

Implements everything the paper's step (3) consumes: an AS-level
topology with business relationships, Gao–Rexford policy-compliant
route propagation, RIPE-RIS-style route collectors producing table
dumps, and the prefix-hijack attacker model of Section 2.3.
"""

from repro.bgp.aspath import ASPath, Segment, SegmentType
from repro.errors import ReproError
from repro.bgp.collector import RouteCollector, TableDump, TableDumpEntry
from repro.bgp.errors import BGPError, TopologyError
from repro.bgp.hijack import HijackOutcome, HijackScenario
from repro.bgp.messages import Announcement
from repro.bgp.policy import Relationship, RouteClass
from repro.bgp.propagation import PropagationEngine, RibEntry
from repro.bgp.topology import ASNode, ASRole, ASTopology

__all__ = [
    "ASNode",
    "ASPath",
    "ASRole",
    "ASTopology",
    "Announcement",
    "BGPError",
    "HijackOutcome",
    "HijackScenario",
    "PropagationEngine",
    "Relationship",
    "ReproError",
    "RibEntry",
    "RouteClass",
    "RouteCollector",
    "Segment",
    "SegmentType",
    "TableDump",
    "TableDumpEntry",
    "TopologyError",
]
