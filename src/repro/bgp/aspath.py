"""AS paths with AS_SEQUENCE and AS_SET segments.

The paper (Section 3, step 3) derives origin ASes from "the right most
ASN in the AS path" and *excludes* entries whose origin position is an
``AS_SET`` "as this leads to an ambiguity of the attribute".  The
:meth:`ASPath.origin` method returns ``None`` in exactly that case so
the measurement pipeline can reproduce the exclusion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.net import ASN
from repro.bgp.errors import PathError


class SegmentType(enum.Enum):
    AS_SEQUENCE = "sequence"
    AS_SET = "set"


@dataclass(frozen=True)
class Segment:
    """One path segment: an ordered sequence or an unordered set."""

    kind: SegmentType
    asns: Tuple[ASN, ...]

    def __post_init__(self):
        if not self.asns:
            raise PathError("empty AS path segment")
        if self.kind is SegmentType.AS_SET:
            # Canonicalise set segments so equality is order-insensitive.
            object.__setattr__(self, "asns", tuple(sorted(set(self.asns))))

    def __str__(self) -> str:
        numbers = " ".join(str(int(asn)) for asn in self.asns)
        if self.kind is SegmentType.AS_SET:
            return "{" + numbers.replace(" ", ",") + "}"
        return numbers


class ASPath:
    """An immutable AS path (left = nearest speaker, right = origin)."""

    __slots__ = ("_segments",)

    def __init__(self, segments: Iterable[Segment]):
        self._segments = tuple(segments)

    @classmethod
    def of(cls, *asns: Union[int, ASN]) -> "ASPath":
        """Build a pure AS_SEQUENCE path from AS numbers."""
        if not asns:
            return cls(())
        return cls(
            (Segment(SegmentType.AS_SEQUENCE, tuple(ASN(a) for a in asns)),)
        )

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a dump-style path, e.g. ``"3320 1299 {64500,64501}"``."""
        segments = []
        sequence: list = []
        for token in text.split():
            if token.startswith("{"):
                if sequence:
                    segments.append(
                        Segment(SegmentType.AS_SEQUENCE, tuple(sequence))
                    )
                    sequence = []
                inner = token.strip("{}")
                members = tuple(ASN(int(part)) for part in inner.split(",") if part)
                segments.append(Segment(SegmentType.AS_SET, members))
            else:
                sequence.append(ASN(int(token)))
        if sequence:
            segments.append(Segment(SegmentType.AS_SEQUENCE, tuple(sequence)))
        return cls(segments)

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._segments

    def prepend(self, asn: Union[int, ASN]) -> "ASPath":
        """Return a new path with ``asn`` prepended (normal BGP export)."""
        asn = ASN(asn)
        if (
            self._segments
            and self._segments[0].kind is SegmentType.AS_SEQUENCE
        ):
            head = self._segments[0]
            new_head = Segment(SegmentType.AS_SEQUENCE, (asn,) + head.asns)
            return ASPath((new_head,) + self._segments[1:])
        return ASPath(
            (Segment(SegmentType.AS_SEQUENCE, (asn,)),) + self._segments
        )

    def origin(self) -> Optional[ASN]:
        """The right-most ASN, or None when the origin is an AS_SET."""
        if not self._segments:
            return None
        last = self._segments[-1]
        if last.kind is SegmentType.AS_SET:
            return None
        return last.asns[-1]

    def has_as_set(self) -> bool:
        return any(s.kind is SegmentType.AS_SET for s in self._segments)

    def contains(self, asn: Union[int, ASN]) -> bool:
        """Loop detection: does the path already include ``asn``?"""
        target = int(asn)
        return any(
            int(member) == target
            for segment in self._segments
            for member in segment.asns
        )

    def __len__(self) -> int:
        """Path length for route selection: AS_SET counts as one hop
        (RFC 4271 aggregate semantics)."""
        return sum(
            len(s.asns) if s.kind is SegmentType.AS_SEQUENCE else 1
            for s in self._segments
        )

    def __iter__(self) -> Iterator[ASN]:
        for segment in self._segments:
            yield from segment.asns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __str__(self) -> str:
        return " ".join(str(segment) for segment in self._segments)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"
