"""Route collectors and table dumps (RIPE RIS analogue).

A collector multi-hop-peers with a set of ASes and records each peer's
best route per prefix.  :class:`TableDump` is the "dump of the active
table" the paper's step (3) consumes: it supports extracting all
covering prefixes of an IP address together with the origin AS derived
from the right-most position of the AS path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.bgp.aspath import ASPath
from repro.bgp.propagation import RoutingState
from repro.net import ASN, Address, Prefix, PrefixTrie


@dataclass(frozen=True)
class TableDumpEntry:
    """One row of a collector table dump."""

    prefix: Prefix
    path: ASPath
    peer: ASN  # the collector peer that contributed the row

    @property
    def origin(self) -> Optional[ASN]:
        """Right-most ASN; None when the origin position is an AS_SET."""
        return self.path.origin()

    @property
    def has_as_set(self) -> bool:
        return self.path.has_as_set()

    def __str__(self) -> str:
        return f"{self.prefix} | {self.path} | peer {self.peer}"


class TableDump:
    """An indexed set of table-dump rows."""

    def __init__(self, entries: Iterable[TableDumpEntry] = ()):
        self._entries: List[TableDumpEntry] = []
        self._trie: PrefixTrie = PrefixTrie()
        for entry in entries:
            self.add(entry)

    def add(self, entry: TableDumpEntry) -> None:
        self._entries.append(entry)
        self._trie.insert(entry.prefix, entry)

    def covering_entries(
        self, target: Union[Address, Prefix]
    ) -> List[TableDumpEntry]:
        """All rows whose prefix covers the address, shortest first."""
        return [entry for _prefix, entry in self._trie.covering(target)]

    def covering_prefixes(self, target: Union[Address, Prefix]) -> List[Prefix]:
        """Distinct covering prefixes of the address, shortest first."""
        seen: Set[Prefix] = set()
        ordered: List[Prefix] = []
        for prefix, _entry in self._trie.covering(target):
            if prefix not in seen:
                seen.add(prefix)
                ordered.append(prefix)
        return ordered

    def origins_for_prefix(
        self, prefix: Prefix, exclude_as_sets: bool = True
    ) -> Set[ASN]:
        """Origin ASes seen for one exact prefix across all peers."""
        origins: Set[ASN] = set()
        for entry in self._trie.lookup_exact(prefix):
            if exclude_as_sets and entry.has_as_set:
                continue
            origin = entry.origin
            if origin is not None:
                origins.add(origin)
        return origins

    def is_reachable(self, target: Union[Address, Prefix]) -> bool:
        """True when any table row covers the target."""
        return bool(self._trie.covering(target))

    def prefixes(self) -> Set[Prefix]:
        return {entry.prefix for entry in self._entries}

    def entries(self) -> List[TableDumpEntry]:
        return list(self._entries)

    def merge(self, other: "TableDump") -> "TableDump":
        """Union of two dumps (e.g. several RIS collectors)."""
        return TableDump(self._entries + other._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TableDumpEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return (
            f"<TableDump {len(self._entries)} rows over "
            f"{len(self.prefixes())} prefixes>"
        )


class RouteCollector:
    """A passive route collector peering with a set of ASes."""

    def __init__(self, name: str, peer_asns: Sequence[Union[int, ASN]]):
        self.name = name
        self.peer_asns: Tuple[ASN, ...] = tuple(ASN(a) for a in peer_asns)

    def collect(self, state: RoutingState) -> TableDump:
        """Dump each peer's best route for every prefix."""
        dump = TableDump()
        for prefix in state.prefixes():
            routes = state.routes_for(prefix)
            for peer in self.peer_asns:
                entry = routes.get(peer)
                if entry is not None:
                    dump.add(
                        TableDumpEntry(prefix=prefix, path=entry.path, peer=peer)
                    )
        return dump

    def __repr__(self) -> str:
        return f"<RouteCollector {self.name!r} {len(self.peer_asns)} peers>"
