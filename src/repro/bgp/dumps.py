"""Table-dump serialisation (RIS/MRT-style text format).

RIPE RIS publishes its collector tables as dump files; step (3) of
the paper consumes such dumps.  This module writes and parses a
pipe-separated text format modelled on ``bgpdump -m`` output::

    TABLE_DUMP2|<collector>|B|<peer asn>|<prefix>|<as path>|IGP

so synthetic table dumps can be exported, shared, and re-imported
without re-running the simulation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.bgp.aspath import ASPath
from repro.bgp.collector import TableDump, TableDumpEntry
from repro.bgp.errors import BGPError
from repro.net import ASN, Prefix
from repro.obs.runtime import metrics, tracer

_MARKER = "TABLE_DUMP2"


def format_entry(entry: TableDumpEntry, collector: str = "rrc-sim") -> str:
    """One dump line for a table row."""
    return "|".join(
        [
            _MARKER,
            collector,
            "B",
            str(int(entry.peer)),
            str(entry.prefix),
            str(entry.path),
            "IGP",
        ]
    )


def parse_entry(line: str) -> TableDumpEntry:
    """Parse one dump line back into a table row."""
    parts = line.rstrip("\n").split("|")
    if len(parts) != 7 or parts[0] != _MARKER or parts[2] != "B":
        raise BGPError(f"malformed dump line: {line!r}")
    _marker, _collector, _b, peer_text, prefix_text, path_text, _origin = parts
    try:
        peer = ASN(int(peer_text))
        prefix = Prefix.parse(prefix_text)
        path = ASPath.parse(path_text)
    except ValueError as exc:
        raise BGPError(f"malformed dump line: {line!r} ({exc})") from exc
    return TableDumpEntry(prefix=prefix, path=path, peer=peer)


def write_dump(
    dump: TableDump,
    path: Union[str, Path],
    collector: str = "rrc-sim",
) -> int:
    """Write every row of a dump; returns the line count."""
    path = Path(path)
    count = 0
    with tracer().span("dump.write", path=str(path)):
        with path.open("w") as handle:
            for entry in dump:
                handle.write(format_entry(entry, collector) + "\n")
                count += 1
    metrics().counter(
        "ripki_dump_rows_written_total", "Table-dump rows serialised"
    ).inc(count)
    return count


def read_dump(path: Union[str, Path]) -> TableDump:
    """Read a dump file back into an indexed :class:`TableDump`."""
    path = Path(path)
    dump = TableDump()
    rows = 0
    with tracer().span("dump.read", path=str(path)):
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                dump.add(parse_entry(line))
                rows += 1
    metrics().counter(
        "ripki_dump_rows_read_total", "Table-dump rows parsed"
    ).inc(rows)
    return dump


def merge_dump_files(paths: Iterable[Union[str, Path]]) -> TableDump:
    """Union several collector dump files (multi-collector view)."""
    merged = TableDump()
    for path in paths:
        for entry in read_dump(path):
            merged.add(entry)
    return merged
