"""Exception hierarchy for the BGP substrate."""

from repro.errors import ReproError


class BGPError(ReproError):
    """Base class for BGP failures."""


class TopologyError(BGPError):
    """The AS topology is malformed or an AS is unknown."""


class PathError(BGPError):
    """An AS path is structurally invalid."""
