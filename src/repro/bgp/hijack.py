"""Prefix-hijack attacker model (paper Section 2.3).

The attacker "is able to redirect network traffic destined to the web
server by manipulating Internet routing".  A :class:`HijackScenario`
replays a victim origination together with a malicious origination of
the same (or a more specific) prefix and reports which ASes end up
routing towards the attacker — optionally with a set of ASes that
enforce RPKI origin validation, quantifying how much deployment would
have helped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Union

from repro.bgp.messages import Announcement
from repro.bgp.propagation import PropagationEngine, RoutingState
from repro.bgp.topology import ASTopology
from repro.net import ASN, Address, Prefix
from repro.rpki.vrp import ValidatedPayloads


@dataclass
class HijackOutcome:
    """Result of one hijack experiment."""

    victim: ASN
    attacker: ASN
    hijacked_prefix: Prefix
    total_ases: int
    attacker_captured: Set[ASN] = field(default_factory=set)
    victim_retained: Set[ASN] = field(default_factory=set)
    disconnected: Set[ASN] = field(default_factory=set)

    @property
    def capture_fraction(self) -> float:
        """Fraction of all ASes whose traffic the attacker receives."""
        if self.total_ases == 0:
            return 0.0
        return len(self.attacker_captured) / self.total_ases

    @property
    def retained_fraction(self) -> float:
        if self.total_ases == 0:
            return 0.0
        return len(self.victim_retained) / self.total_ases

    # Filled in by interception analysis (None = not analysed).
    interception: Optional[bool] = None
    forwarding_path: Optional[List[ASN]] = None

    def __repr__(self) -> str:
        return (
            f"<HijackOutcome {self.attacker} vs {self.victim}: "
            f"captured {len(self.attacker_captured)}/{self.total_ases}>"
        )


class HijackScenario:
    """Replays victim + attacker originations over a topology."""

    def __init__(self, topology: ASTopology):
        self._topology = topology
        self._engine = PropagationEngine(topology)

    def run(
        self,
        victim_announcement: Announcement,
        attacker: Union[int, ASN],
        hijack_prefix: Optional[Union[str, Prefix]] = None,
        payloads: Optional[ValidatedPayloads] = None,
        enforcing: FrozenSet[ASN] = frozenset(),
        target: Optional[Address] = None,
    ) -> HijackOutcome:
        """Run the hijack and classify every AS's fate.

        ``hijack_prefix`` defaults to the victim's exact prefix (an
        origin hijack); pass a more specific prefix for a sub-prefix
        hijack.  ``target`` is the address whose traffic we trace —
        defaults to the first address of the victim prefix.
        """
        attacker = ASN(attacker)
        victim_prefix = victim_announcement.prefix
        if hijack_prefix is None:
            hijack_prefix = victim_prefix
        elif isinstance(hijack_prefix, str):
            hijack_prefix = Prefix.parse(hijack_prefix)
        if target is None:
            target = hijack_prefix.nth_address(0)

        announcements = [
            victim_announcement,
            Announcement(prefix=hijack_prefix, origin=attacker),
        ]
        state = self._engine.propagate(
            announcements, payloads=payloads, enforcing=enforcing
        )

        outcome = HijackOutcome(
            victim=victim_announcement.origin,
            attacker=attacker,
            hijacked_prefix=hijack_prefix,
            total_ases=len(self._topology),
        )
        victim = victim_announcement.origin
        for node in self._topology.ases():
            fate = self._trace(
                state, node.asn, target, victim_prefix, hijack_prefix,
                victim, attacker,
            )
            if fate == "attacker":
                outcome.attacker_captured.add(node.asn)
            elif fate == "victim":
                outcome.victim_retained.add(node.asn)
            else:
                outcome.disconnected.add(node.asn)
        self._analyse_interception(
            state, outcome, victim_prefix, hijack_prefix, target
        )
        return outcome

    def _analyse_interception(
        self,
        state: RoutingState,
        outcome: HijackOutcome,
        victim_prefix: Prefix,
        hijack_prefix: Prefix,
        target: Address,
    ) -> None:
        """Can the attacker still *deliver* captured traffic?

        Interception (monitor/modify rather than blackhole) requires a
        working forwarding path from the attacker to the victim whose
        intermediate hops are not themselves polluted — otherwise the
        packet boomerangs back to the attacker (Section 2.3's
        "intercept ... drop, monitor, or modify").
        """
        attacker, victim = outcome.attacker, outcome.victim
        entry = state.route_at(attacker, victim_prefix)
        if entry is None or entry.origin != victim:
            # No covering route towards the victim: pure blackhole
            # (typical for a same-prefix origin hijack).
            outcome.interception = False
            return
        hops = list(entry.path)  # [attacker, ..., victim]
        for hop in hops[1:-1]:
            fate = self._trace(
                state, hop, target, victim_prefix, hijack_prefix,
                victim, attacker,
            )
            if fate != "victim":
                # The relay AS would bounce the packet back to the
                # attacker (or drop it): forwarding loops, no delivery.
                outcome.interception = False
                return
        outcome.interception = True
        outcome.forwarding_path = [ASN(a) for a in hops]

    @staticmethod
    def _trace(
        state: RoutingState,
        asn: ASN,
        target: Address,
        victim_prefix: Prefix,
        hijack_prefix: Prefix,
        victim: ASN,
        attacker: ASN,
    ) -> str:
        """Longest-prefix-match forwarding decision for one AS."""
        candidates = []
        for prefix in {victim_prefix, hijack_prefix}:
            if prefix.contains(target):
                entry = state.route_at(asn, prefix)
                if entry is not None:
                    candidates.append((prefix.length, entry))
        if not candidates:
            return "disconnected"
        _length, entry = max(candidates, key=lambda item: item[0])
        origin = entry.origin
        if origin == attacker:
            return "attacker"
        if origin == victim:
            return "victim"
        return "disconnected"
