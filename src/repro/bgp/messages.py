"""BGP announcements.

An :class:`Announcement` is an origination intent: an AS (or, for
aggregates, an AS_SET of contributors) starts advertising a prefix.
The propagation engine turns originations into per-AS routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.bgp.aspath import ASPath, Segment, SegmentType
from repro.net import ASN, Prefix


@dataclass(frozen=True)
class Announcement:
    """One prefix origination.

    ``aggregate_members`` turns the origin into an AS_SET (a deprecated
    aggregate, RFC 6472) — the paper's pipeline must exclude the
    resulting table entries from origin derivation.
    """

    prefix: Prefix
    origin: ASN
    aggregate_members: Tuple[ASN, ...] = ()

    @classmethod
    def make(
        cls,
        prefix: Union[str, Prefix],
        origin: Union[int, ASN],
        aggregate_members: Sequence[Union[int, ASN]] = (),
    ) -> "Announcement":
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return cls(
            prefix=prefix,
            origin=ASN(origin),
            aggregate_members=tuple(ASN(a) for a in aggregate_members),
        )

    def initial_path(self) -> ASPath:
        """The path as it leaves the origin AS."""
        if self.aggregate_members:
            return ASPath(
                (
                    Segment(SegmentType.AS_SEQUENCE, (self.origin,)),
                    Segment(SegmentType.AS_SET, self.aggregate_members),
                )
            )
        return ASPath.of(self.origin)

    def __repr__(self) -> str:
        suffix = f" agg={list(map(int, self.aggregate_members))}" if self.aggregate_members else ""
        return f"<Announcement {self.prefix} from {self.origin}{suffix}>"
