"""On-path interference census (paper Section 2.3, the Great Cannon).

"an ISP injected on-path malicious JavaScript code into live network
traffic to disturb connectivity to GitHub."  Unlike a hijack, an
on-path attacker needs no routing manipulation at all — it only needs
to sit on the forwarding path.  This module measures that exposure:
for a given website prefix, which client ASes' traffic traverses a
given network, and which networks are the most powerful potential
injectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.bgp.propagation import RoutingState
from repro.bgp.topology import ASTopology
from repro.net import ASN, Prefix


def forwarding_path(
    state: RoutingState, from_asn: Union[int, ASN], prefix: Prefix
) -> Optional[List[ASN]]:
    """The AS-level forwarding path from ``from_asn`` to the prefix
    origin (inclusive of both ends), or None when unreachable."""
    entry = state.route_at(ASN(from_asn), prefix)
    if entry is None:
        return None
    return [ASN(a) for a in entry.path]


def onpath_clients(
    state: RoutingState, prefix: Prefix, via: Union[int, ASN]
) -> Set[ASN]:
    """Client ASes whose traffic to ``prefix`` traverses ``via``.

    The via AS itself and the origin are excluded — the interesting
    set is third parties whose traffic a middle AS could touch.
    """
    via = ASN(via)
    exposed: Set[ASN] = set()
    for asn, entry in state.routes_for(prefix).items():
        if asn == via:
            continue
        hops = list(entry.path)
        # Interior hops only: the first hop is the client itself, the
        # last is the origin.
        if via in hops[1:-1]:
            exposed.add(asn)
    return exposed


def injection_influence(
    state: RoutingState, prefix: Prefix
) -> List[Tuple[ASN, int]]:
    """Rank every AS by how many clients' paths to ``prefix`` cross
    it — the potential blast radius of a Great-Cannon-style injector.
    Sorted most powerful first."""
    counts: Dict[ASN, int] = {}
    for _asn, entry in state.routes_for(prefix).items():
        hops = list(entry.path)
        for via in hops[1:-1]:
            counts[via] = counts.get(ASN(via), 0) + 1
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def exposure_fraction(
    state: RoutingState,
    topology: ASTopology,
    prefix: Prefix,
    via: Union[int, ASN],
) -> float:
    """Share of all ASes exposed to an injector at ``via``."""
    if len(topology) == 0:
        return 0.0
    return len(onpath_clients(state, prefix, via)) / len(topology)
