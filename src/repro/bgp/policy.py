"""Routing policy: business relationships and Gao–Rexford rules.

Route preference follows the classic model:

1. prefer routes learned from customers over peers over providers
   (local preference),
2. then shorter AS paths,
3. then the lowest next-hop AS number (deterministic tie-break).

Export follows the valley-free rule: routes learned from customers are
exported to everyone; routes learned from peers or providers are
exported to customers only.
"""

from __future__ import annotations

import enum


class Relationship(enum.Enum):
    """The relationship of a neighbor from the perspective of an AS."""

    CUSTOMER = "customer"  # neighbor pays us
    PEER = "peer"          # settlement-free
    PROVIDER = "provider"  # we pay the neighbor

    def inverse(self) -> "Relationship":
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


class RouteClass(enum.IntEnum):
    """Preference classes, higher is better (local-pref analogue)."""

    PROVIDER_ROUTE = 0
    PEER_ROUTE = 1
    CUSTOMER_ROUTE = 2
    ORIGIN = 3

    @classmethod
    def from_relationship(cls, relationship: Relationship) -> "RouteClass":
        """Class of a route learned from a neighbor of this kind."""
        if relationship is Relationship.CUSTOMER:
            return cls.CUSTOMER_ROUTE
        if relationship is Relationship.PEER:
            return cls.PEER_ROUTE
        return cls.PROVIDER_ROUTE


def may_export(route_class: RouteClass, to: Relationship) -> bool:
    """Valley-free export rule.

    Own originations and customer routes go to everyone; peer and
    provider routes only go to customers (no transit for free).
    """
    if route_class in (RouteClass.ORIGIN, RouteClass.CUSTOMER_ROUTE):
        return True
    return to is Relationship.CUSTOMER
