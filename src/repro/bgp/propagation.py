"""Policy-compliant route propagation.

For each announced prefix the engine computes every AS's best route
under the Gao–Rexford model using the standard three-stage breadth
first search (customer routes climb provider links, peer routes cross
one peering edge, provider routes descend customer links), with
shortest-path and lowest-neighbor tie-breaking inside each stage.
Multiple originations of the same prefix (anycast, MOAS conflicts,
hijacks) compete naturally.

ASes listed in ``enforcing`` perform RFC 6811 origin validation
against a :class:`~repro.rpki.vrp.ValidatedPayloads` set and refuse to
adopt *invalid* routes — the countermeasure whose deployment the paper
measures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.bgp.aspath import ASPath
from repro.bgp.messages import Announcement
from repro.bgp.policy import Relationship, RouteClass, may_export
from repro.bgp.topology import ASTopology
from repro.net import ASN, Prefix
from repro.rpki.vrp import OriginValidation, ValidatedPayloads


@dataclass(frozen=True)
class RibEntry:
    """An AS's best route for one prefix.

    ``path`` is the path as this AS would advertise it (starts with
    the AS itself, ends at the origin).  ``learned_from`` is None for
    self-originated routes.
    """

    prefix: Prefix
    path: ASPath
    route_class: RouteClass
    learned_from: Optional[ASN]

    @property
    def origin(self) -> Optional[ASN]:
        return self.path.origin()

    def __repr__(self) -> str:
        return f"<RibEntry {self.prefix} path=[{self.path}] {self.route_class.name}>"


class RoutingState:
    """Best routes of every AS for every propagated prefix."""

    def __init__(self, tables: Dict[Prefix, Dict[ASN, RibEntry]]):
        self._tables = tables

    def route_at(
        self, asn: Union[int, ASN], prefix: Prefix
    ) -> Optional[RibEntry]:
        return self._tables.get(prefix, {}).get(ASN(asn))

    def routes_for(self, prefix: Prefix) -> Dict[ASN, RibEntry]:
        return dict(self._tables.get(prefix, {}))

    def prefixes(self) -> List[Prefix]:
        return list(self._tables)

    def reachable_ases(self, prefix: Prefix) -> Set[ASN]:
        return set(self._tables.get(prefix, {}))

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        routes = sum(len(t) for t in self._tables.values())
        return f"<RoutingState {len(self._tables)} prefixes, {routes} routes>"


class PropagationEngine:
    """Computes :class:`RoutingState` from originations."""

    def __init__(self, topology: ASTopology):
        self._topology = topology

    def propagate(
        self,
        announcements: Iterable[Announcement],
        payloads: Optional[ValidatedPayloads] = None,
        enforcing: FrozenSet[ASN] = frozenset(),
        record_ases: Optional[Set[ASN]] = None,
    ) -> RoutingState:
        """Propagate all announcements and return the converged state.

        ``record_ases`` restricts the *stored* routes to the given ASes
        (e.g. collector peers) to bound memory on large runs; the
        computation itself always covers the full topology.
        """
        by_prefix: Dict[Prefix, List[Announcement]] = {}
        for announcement in announcements:
            by_prefix.setdefault(announcement.prefix, []).append(announcement)

        tables: Dict[Prefix, Dict[ASN, RibEntry]] = {}
        for prefix, group in by_prefix.items():
            table = self._route_prefix(prefix, group, payloads, enforcing)
            if record_ases is not None:
                table = {
                    asn: entry
                    for asn, entry in table.items()
                    if asn in record_ases
                }
            tables[prefix] = table
        return RoutingState(tables)

    # -- per-prefix computation -------------------------------------------

    def _accepts(
        self,
        asn: ASN,
        prefix: Prefix,
        path: ASPath,
        payloads: Optional[ValidatedPayloads],
        enforcing: FrozenSet[ASN],
    ) -> bool:
        """Import filter: loop prevention plus optional RFC 6811 drop."""
        if path.contains(asn):
            return False
        if payloads is None or asn not in enforcing:
            return True
        origin = path.origin()
        if origin is None:
            # AS_SET origin: RFC 6811 treats it as invalid when any VRP
            # covers the prefix (the origin cannot be verified).
            return not payloads.covered(prefix)
        state = payloads.validate_origin(prefix, origin)
        return state is not OriginValidation.INVALID

    def _route_prefix(
        self,
        prefix: Prefix,
        announcements: List[Announcement],
        payloads: Optional[ValidatedPayloads],
        enforcing: FrozenSet[ASN],
    ) -> Dict[ASN, RibEntry]:
        topology = self._topology
        best: Dict[ASN, RibEntry] = {}

        # Stage 0 — origination. An origin always keeps its own route.
        for announcement in announcements:
            origin = announcement.origin
            if origin not in topology:
                continue
            best[origin] = RibEntry(
                prefix=prefix,
                path=announcement.initial_path(),
                route_class=RouteClass.ORIGIN,
                learned_from=None,
            )

        # Stage A — customer routes climb provider links.
        # Heap entries: (path length, sender ASN, receiver ASN, path@sender).
        heap: List[Tuple[int, int, int, ASPath]] = []
        for asn, entry in best.items():
            for provider in topology.providers(asn):
                heapq.heappush(
                    heap, (len(entry.path), int(asn), int(provider), entry.path)
                )
        while heap:
            _length, sender, receiver, sender_path = heapq.heappop(heap)
            receiver_asn = ASN(receiver)
            current = best.get(receiver_asn)
            if current is not None:
                # Heap pops in (length, sender) order, so the first
                # adoption is already the best customer route.
                continue
            if not self._accepts(receiver_asn, prefix, sender_path, payloads, enforcing):
                continue
            entry = RibEntry(
                prefix=prefix,
                path=sender_path.prepend(receiver_asn),
                route_class=RouteClass.CUSTOMER_ROUTE,
                learned_from=ASN(sender),
            )
            best[receiver_asn] = entry
            for provider in topology.providers(receiver_asn):
                heapq.heappush(
                    heap, (len(entry.path), receiver, int(provider), entry.path)
                )

        # Stage B — one peering hop. Only customer/origin routes are
        # exported to peers; a peer route never propagates further up
        # or sideways (valley-free).
        peer_candidates: List[Tuple[int, int, int, ASPath]] = []
        for asn, entry in best.items():
            if may_export(entry.route_class, Relationship.PEER):
                for peer in topology.peers(asn):
                    peer_candidates.append(
                        (len(entry.path), int(asn), int(peer), entry.path)
                    )
        for _length, sender, receiver, sender_path in sorted(peer_candidates):
            receiver_asn = ASN(receiver)
            if receiver_asn in best:
                continue
            if not self._accepts(receiver_asn, prefix, sender_path, payloads, enforcing):
                continue
            best[receiver_asn] = RibEntry(
                prefix=prefix,
                path=sender_path.prepend(receiver_asn),
                route_class=RouteClass.PEER_ROUTE,
                learned_from=ASN(sender),
            )

        # Stage C — routes descend customer links.
        heap = []
        for asn, entry in best.items():
            if may_export(entry.route_class, Relationship.CUSTOMER):
                for customer in topology.customers(asn):
                    heapq.heappush(
                        heap, (len(entry.path), int(asn), int(customer), entry.path)
                    )
        while heap:
            _length, sender, receiver, sender_path = heapq.heappop(heap)
            receiver_asn = ASN(receiver)
            if receiver_asn in best:
                continue
            if not self._accepts(receiver_asn, prefix, sender_path, payloads, enforcing):
                continue
            entry = RibEntry(
                prefix=prefix,
                path=sender_path.prepend(receiver_asn),
                route_class=RouteClass.PROVIDER_ROUTE,
                learned_from=ASN(sender),
            )
            best[receiver_asn] = entry
            for customer in topology.customers(receiver_asn):
                heapq.heappush(
                    heap, (len(entry.path), receiver, int(customer), entry.path)
                )

        return best
