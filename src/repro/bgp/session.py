"""Event-driven BGP session simulation.

While :mod:`repro.bgp.propagation` computes the converged routing
state algebraically, this module simulates the protocol dynamics:
speakers exchange UPDATE messages (announce/withdraw) over sessions,
maintain Adj-RIB-In / Loc-RIB / Adj-RIB-Out, and run the decision
process on every change.  The same Gao–Rexford preferences and
valley-free export rules apply, so for a static set of originations
the simulator converges to exactly the state the algebraic engine
computes — a property the test suite checks on random topologies.

The dynamic machinery enables what the static engine cannot express:

* withdrawing a hijack and watching the victim's routes heal,
* feeding routers *new* VRPs mid-flight (RTR refresh) and having them
  re-validate previously accepted routes (RFC 6811 revalidation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.bgp.aspath import ASPath
from repro.bgp.errors import BGPError
from repro.bgp.messages import Announcement
from repro.bgp.policy import Relationship, RouteClass, may_export
from repro.bgp.propagation import RibEntry, RoutingState
from repro.bgp.topology import ASTopology
from repro.net import ASN, Prefix
from repro.rpki.vrp import OriginValidation, ValidatedPayloads


@dataclass(frozen=True)
class UpdateMessage:
    """One UPDATE: an announcement (path set) or a withdrawal (None)."""

    sender: ASN
    receiver: ASN
    prefix: Prefix
    path: Optional[ASPath]  # None == withdraw

    @property
    def is_withdrawal(self) -> bool:
        return self.path is None


class BGPSpeaker:
    """One AS's BGP process."""

    def __init__(self, asn: ASN, topology: ASTopology):
        self.asn = asn
        self._topology = topology
        # Canonical (ASN-sorted) adjacency: the topology's dict is in
        # edge-insertion order, and _export iterates it, so without the
        # sort the emitted message sequence — and every downstream
        # trace — would depend on how the graph was constructed.
        self._neighbors = dict(
            sorted(topology.neighbors(asn).items(), key=lambda kv: int(kv[0]))
        )
        # adj_rib_in[prefix][neighbor] = path as received.
        self.adj_rib_in: Dict[Prefix, Dict[ASN, ASPath]] = {}
        self.loc_rib: Dict[Prefix, RibEntry] = {}
        self.adj_rib_out: Dict[Tuple[ASN, Prefix], ASPath] = {}
        self.originated: Dict[Prefix, Announcement] = {}
        self.payloads: Optional[ValidatedPayloads] = None
        self.enforcing = False

    # -- configuration -----------------------------------------------------

    def set_validation(
        self, payloads: Optional[ValidatedPayloads], enforcing: bool
    ) -> List[UpdateMessage]:
        """Install (new) VRPs; re-run the decision process everywhere.

        Returns the updates triggered by routes changing validity.
        """
        self.payloads = payloads
        self.enforcing = enforcing
        outgoing: List[UpdateMessage] = []
        # Sorted, not set order: Prefix hashes include the class object
        # (id-based), so set iteration order varies across interpreter
        # runs — sorting keeps revalidation message order reproducible.
        prefixes = set(self.adj_rib_in) | set(self.loc_rib) | set(self.originated)
        for prefix in sorted(prefixes):
            outgoing.extend(self._decide(prefix))
        return outgoing

    # -- local origination -----------------------------------------------------

    def originate(self, announcement: Announcement) -> List[UpdateMessage]:
        self.originated[announcement.prefix] = announcement
        return self._decide(announcement.prefix)

    def withdraw_origination(self, prefix: Prefix) -> List[UpdateMessage]:
        if prefix in self.originated:
            del self.originated[prefix]
        return self._decide(prefix)

    # -- message handling ----------------------------------------------------------

    def receive(self, message: UpdateMessage) -> List[UpdateMessage]:
        """Apply one UPDATE from a neighbor and run the decision process."""
        if message.receiver != self.asn:
            raise BGPError(f"{self.asn} received a message for {message.receiver}")
        neighbor = message.sender
        if neighbor not in self._neighbors:
            raise BGPError(f"{self.asn} has no session with {neighbor}")
        rib_in = self.adj_rib_in.setdefault(message.prefix, {})
        if message.is_withdrawal:
            rib_in.pop(neighbor, None)
        else:
            rib_in[neighbor] = message.path
        return self._decide(message.prefix)

    # -- decision process ---------------------------------------------------------------

    def _acceptable(self, prefix: Prefix, path: ASPath) -> bool:
        if path.contains(self.asn):
            return False  # loop
        if not self.enforcing or self.payloads is None:
            return True
        origin = path.origin()
        if origin is None:
            return not self.payloads.covered(prefix)
        return (
            self.payloads.validate_origin(prefix, origin)
            is not OriginValidation.INVALID
        )

    def _best_route(self, prefix: Prefix) -> Optional[RibEntry]:
        origination = self.originated.get(prefix)
        if origination is not None:
            return RibEntry(
                prefix=prefix,
                path=origination.initial_path(),
                route_class=RouteClass.ORIGIN,
                learned_from=None,
            )
        best: Optional[Tuple[int, int, int, ASN, ASPath]] = None
        for neighbor, path in self.adj_rib_in.get(prefix, {}).items():
            if not self._acceptable(prefix, path):
                continue
            relationship = self._neighbors[neighbor]
            route_class = RouteClass.from_relationship(relationship)
            # Rank: higher class, shorter path, lower neighbor ASN.
            key = (-int(route_class), len(path) + 1, int(neighbor))
            if best is None or key < best[:3]:
                best = (*key, neighbor, path)
        if best is None:
            return None
        _c, _l, _n, neighbor, path = best
        return RibEntry(
            prefix=prefix,
            path=path.prepend(self.asn),
            route_class=RouteClass.from_relationship(self._neighbors[neighbor]),
            learned_from=neighbor,
        )

    def _decide(self, prefix: Prefix) -> List[UpdateMessage]:
        new_best = self._best_route(prefix)
        old_best = self.loc_rib.get(prefix)
        if new_best == old_best:
            return []
        if new_best is None:
            del self.loc_rib[prefix]
        else:
            self.loc_rib[prefix] = new_best
        return self._export(prefix, new_best)

    def _export(
        self, prefix: Prefix, best: Optional[RibEntry]
    ) -> List[UpdateMessage]:
        outgoing: List[UpdateMessage] = []
        for neighbor, relationship in self._neighbors.items():
            key = (neighbor, prefix)
            should_send = best is not None and may_export(
                best.route_class, relationship
            )
            previously_sent = key in self.adj_rib_out
            if should_send:
                if self.adj_rib_out.get(key) != best.path:
                    self.adj_rib_out[key] = best.path
                    outgoing.append(
                        UpdateMessage(self.asn, neighbor, prefix, best.path)
                    )
            elif previously_sent:
                del self.adj_rib_out[key]
                outgoing.append(UpdateMessage(self.asn, neighbor, prefix, None))
        return outgoing

    def __repr__(self) -> str:
        return f"<BGPSpeaker {self.asn} {len(self.loc_rib)} routes>"


class SessionSimulator:
    """Deterministic FIFO message-passing over a topology."""

    def __init__(self, topology: ASTopology):
        self._topology = topology
        self.speakers: Dict[ASN, BGPSpeaker] = {
            node.asn: BGPSpeaker(node.asn, topology) for node in topology.ases()
        }
        self._queue: Deque[UpdateMessage] = deque()
        self.messages_processed = 0

    # -- event injection -----------------------------------------------------

    def announce(self, announcement: Announcement) -> None:
        speaker = self._speaker(announcement.origin)
        self._queue.extend(speaker.originate(announcement))

    def withdraw(self, prefix: Prefix, origin: ASN) -> None:
        speaker = self._speaker(ASN(origin))
        self._queue.extend(speaker.withdraw_origination(prefix))

    def configure_validation(
        self,
        payloads: Optional[ValidatedPayloads],
        enforcing: Iterable[ASN],
    ) -> None:
        """Give every AS the VRPs; enable enforcement on a subset."""
        enforcing_set = {ASN(a) for a in enforcing}
        for asn, speaker in self.speakers.items():
            self._queue.extend(
                speaker.set_validation(payloads, asn in enforcing_set)
            )

    def _speaker(self, asn: ASN) -> BGPSpeaker:
        try:
            return self.speakers[asn]
        except KeyError:
            raise BGPError(f"unknown AS: {asn}") from None

    # -- the event loop ------------------------------------------------------------

    def run(self, max_messages: int = 1_000_000) -> int:
        """Drain the queue to convergence; returns messages processed."""
        processed = 0
        while self._queue:
            if processed >= max_messages:
                raise BGPError(
                    f"no convergence after {max_messages} messages"
                )
            message = self._queue.popleft()
            receiver = self._speaker(message.receiver)
            self._queue.extend(receiver.receive(message))
            processed += 1
        self.messages_processed += processed
        return processed

    @property
    def converged(self) -> bool:
        return not self._queue

    # -- state access ------------------------------------------------------------------

    def routing_state(self) -> RoutingState:
        """The Loc-RIBs as a :class:`RoutingState` (engine-compatible)."""
        tables: Dict[Prefix, Dict[ASN, RibEntry]] = {}
        for asn, speaker in self.speakers.items():
            for prefix, entry in speaker.loc_rib.items():
                tables.setdefault(prefix, {})[asn] = entry
        return RoutingState(tables)

    def route_at(self, asn: ASN, prefix: Prefix) -> Optional[RibEntry]:
        return self._speaker(ASN(asn)).loc_rib.get(prefix)

    def __repr__(self) -> str:
        return (
            f"<SessionSimulator {len(self.speakers)} speakers, "
            f"{self.messages_processed} messages processed>"
        )
