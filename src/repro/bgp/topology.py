"""AS-level topology with business relationships.

The topology is a labelled graph: every AS has a role (tier-1,
transit, eyeball ISP, webhoster, CDN, stub) and a registry-style name
(used later for the paper's keyword spotting over "common AS
assignment lists"), and every link carries a Gao–Rexford relationship.

:meth:`ASTopology.generate` builds a realistic hierarchy: a tier-1
clique at the top, transit providers beneath, and eyeballs, hosters,
CDNs, and stubs multi-homed to the layers above, plus peering edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.bgp.errors import TopologyError
from repro.bgp.policy import Relationship
from repro.crypto import DeterministicRNG
from repro.net import ASN


class ASRole(enum.Enum):
    TIER1 = "tier1"
    TRANSIT = "transit"
    EYEBALL = "eyeball"      # access / eyeball ISP
    HOSTER = "hoster"        # webhosting provider
    CDN = "cdn"
    STUB = "stub"            # enterprise / small content AS

    def __str__(self) -> str:
        return self.value


@dataclass
class ASNode:
    """One autonomous system."""

    asn: ASN
    name: str
    role: ASRole
    organisation: str = ""

    def __repr__(self) -> str:
        return f"<{self.asn} {self.name!r} ({self.role})>"


class ASTopology:
    """A mutable AS graph with relationship-labelled edges."""

    def __init__(self):
        self._nodes: Dict[ASN, ASNode] = {}
        # adjacency[a][b] = relationship of b *from a's perspective*.
        self._adjacency: Dict[ASN, Dict[ASN, Relationship]] = {}

    # -- construction ----------------------------------------------------

    def add_as(
        self,
        asn: Union[int, ASN],
        name: str = "",
        role: ASRole = ASRole.STUB,
        organisation: str = "",
    ) -> ASNode:
        asn = ASN(asn)
        if asn in self._nodes:
            raise TopologyError(f"{asn} already exists")
        node = ASNode(asn=asn, name=name or f"AS{int(asn)}", role=role,
                      organisation=organisation)
        self._nodes[asn] = node
        self._adjacency[asn] = {}
        return node

    def add_provider(
        self, customer: Union[int, ASN], provider: Union[int, ASN]
    ) -> None:
        """Create a customer→provider (transit) link."""
        customer, provider = ASN(customer), ASN(provider)
        self._require(customer)
        self._require(provider)
        if customer == provider:
            raise TopologyError(f"{customer} cannot be its own provider")
        self._adjacency[customer][provider] = Relationship.PROVIDER
        self._adjacency[provider][customer] = Relationship.CUSTOMER

    def add_peering(self, a: Union[int, ASN], b: Union[int, ASN]) -> None:
        """Create a settlement-free peering link."""
        a, b = ASN(a), ASN(b)
        self._require(a)
        self._require(b)
        if a == b:
            raise TopologyError(f"{a} cannot peer with itself")
        self._adjacency[a][b] = Relationship.PEER
        self._adjacency[b][a] = Relationship.PEER

    def _require(self, asn: ASN) -> None:
        if asn not in self._nodes:
            raise TopologyError(f"unknown AS: {asn}")

    # -- queries ---------------------------------------------------------

    def node(self, asn: Union[int, ASN]) -> ASNode:
        asn = ASN(asn)
        self._require(asn)
        return self._nodes[asn]

    def __contains__(self, asn: Union[int, ASN]) -> bool:
        return ASN(asn) in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def ases(self) -> Iterator[ASNode]:
        return iter(self._nodes.values())

    def asns(self) -> List[ASN]:
        return list(self._nodes)

    def by_role(self, role: ASRole) -> List[ASNode]:
        return [node for node in self._nodes.values() if node.role is role]

    def neighbors(self, asn: Union[int, ASN]) -> Dict[ASN, Relationship]:
        asn = ASN(asn)
        self._require(asn)
        return dict(self._adjacency[asn])

    def relationship(
        self, a: Union[int, ASN], b: Union[int, ASN]
    ) -> Optional[Relationship]:
        """Relationship of ``b`` from ``a``'s perspective, or None."""
        return self._adjacency.get(ASN(a), {}).get(ASN(b))

    def providers(self, asn: Union[int, ASN]) -> List[ASN]:
        return self._with_relationship(asn, Relationship.PROVIDER)

    def customers(self, asn: Union[int, ASN]) -> List[ASN]:
        return self._with_relationship(asn, Relationship.CUSTOMER)

    def peers(self, asn: Union[int, ASN]) -> List[ASN]:
        return self._with_relationship(asn, Relationship.PEER)

    def _with_relationship(
        self, asn: Union[int, ASN], wanted: Relationship
    ) -> List[ASN]:
        asn = ASN(asn)
        self._require(asn)
        return sorted(
            neighbor
            for neighbor, relationship in self._adjacency[asn].items()
            if relationship is wanted
        )

    def edge_count(self) -> int:
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def to_networkx(self) -> nx.Graph:
        """Undirected view with relationship edge attributes."""
        graph = nx.Graph()
        for asn, node in self._nodes.items():
            graph.add_node(int(asn), name=node.name, role=str(node.role))
        for a, adj in self._adjacency.items():
            for b, relationship in adj.items():
                if int(a) < int(b):
                    graph.add_edge(int(a), int(b), relationship=relationship.value)
        return graph

    def is_connected(self) -> bool:
        graph = self.to_networkx()
        return len(graph) > 0 and nx.is_connected(graph)

    # -- generation ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        rng: DeterministicRNG,
        tier1: int = 5,
        transit: int = 20,
        eyeballs: int = 40,
        hosters: int = 30,
        cdns: int = 0,
        stubs: int = 40,
        first_asn: int = 100,
    ) -> "ASTopology":
        """Generate a hierarchical topology.

        * tier-1 ASes form a full peering clique,
        * transit ASes buy from 1–3 tier-1/transit providers and peer
          laterally with probability ~0.2,
        * eyeballs, hosters, CDNs, and stubs buy from 1–3 transit or
          tier-1 providers,
        * CDN ASes additionally peer with many eyeballs (mirroring how
          real CDNs connect close to users).
        """
        topology = cls()
        rng = rng.fork("topology")
        next_asn = first_asn

        def allocate(count: int, role: ASRole, label: str) -> List[ASN]:
            nonlocal next_asn
            allocated = []
            for index in range(count):
                asn = ASN(next_asn)
                next_asn += 1
                topology.add_as(
                    asn,
                    name=f"{label.upper()}-{index + 1}",
                    role=role,
                    organisation=f"{label.title()} {index + 1}",
                )
                allocated.append(asn)
            return allocated

        tier1_asns = allocate(tier1, ASRole.TIER1, "tier1")
        transit_asns = allocate(transit, ASRole.TRANSIT, "transit")
        eyeball_asns = allocate(eyeballs, ASRole.EYEBALL, "eyeball")
        hoster_asns = allocate(hosters, ASRole.HOSTER, "hoster")
        cdn_asns = allocate(cdns, ASRole.CDN, "cdn")
        stub_asns = allocate(stubs, ASRole.STUB, "stub")

        for i, a in enumerate(tier1_asns):
            for b in tier1_asns[i + 1:]:
                topology.add_peering(a, b)

        upstream_pool = list(tier1_asns)
        for asn in transit_asns:
            provider_count = rng.randint(1, min(3, len(upstream_pool)))
            for provider in rng.sample(upstream_pool, provider_count):
                topology.add_provider(asn, provider)
            upstream_pool.append(asn)  # later transits may buy from earlier

        for i, a in enumerate(transit_asns):
            for b in transit_asns[i + 1:]:
                if (
                    rng.random() < 0.2
                    and topology.relationship(a, b) is None
                ):
                    topology.add_peering(a, b)

        edge_pool = tier1_asns + transit_asns
        for asn in eyeball_asns + hoster_asns + cdn_asns + stub_asns:
            provider_count = rng.randint(1, 3)
            for provider in rng.sample(edge_pool, min(provider_count, len(edge_pool))):
                if topology.relationship(asn, provider) is None:
                    topology.add_provider(asn, provider)

        for cdn in cdn_asns:
            # CDNs peer densely with eyeball networks.
            peer_count = max(1, len(eyeball_asns) // 3)
            for eyeball in rng.sample(eyeball_asns, min(peer_count, len(eyeball_asns))):
                if topology.relationship(cdn, eyeball) is None:
                    topology.add_peering(cdn, eyeball)

        return topology

    def __repr__(self) -> str:
        return f"<ASTopology {len(self._nodes)} ASes, {self.edge_count()} links>"
