"""Persistent content-addressed snapshot cache (``repro.cache``).

The steady-state workload of a production-scale RPKI measurement is
delta-shaped: between two campaigns most zone records, table-dump rows
and ROAs are unchanged, so most per-stage work — DNS answers per name
form, prefix/origin matches per IP address, validation outcomes per
(prefix, origin) pair — recomputes byte-identical artifacts.  This
package stores those artifacts keyed by digests of their inputs
(:mod:`repro.cache.fingerprint`), re-validates them at session open
(:mod:`repro.cache.session`: whole-input digests fast-path, per-name
zone fingerprints and a VRP-delta index for precision), and replays
them through a caching funnel (:mod:`repro.cache.funnel`) whose warm
measurements — and metric ticks, via captured metric deltas — are
bit-identical to a cold run's.

Wired in through :class:`repro.core.pipeline.CacheConfig` on a
:class:`~repro.core.pipeline.RunConfig`; the sharded executor opens
one :class:`CacheSession` per run, hands it to every shard, and folds
the shards' fresh artifacts back into the store.
"""

from repro.cache.fingerprint import (
    config_fingerprint,
    dump_digest,
    name_fingerprint,
    vrp_digest,
    vrp_items,
    zone_digest,
)
from repro.cache.funnel import CachedFunnel
from repro.cache.session import CacheSession
from repro.cache.store import (
    STAGES,
    STORE_VERSION,
    load_digests,
    load_store,
    save_store,
    store_path,
)

__all__ = [
    "STAGES",
    "STORE_VERSION",
    "CacheSession",
    "CachedFunnel",
    "config_fingerprint",
    "dump_digest",
    "load_digests",
    "load_store",
    "name_fingerprint",
    "save_store",
    "store_path",
    "vrp_digest",
    "vrp_items",
    "zone_digest",
]
