"""Input digests for the snapshot cache.

Every cached artifact is valid exactly as long as its inputs are
unchanged; this module defines what "its inputs" means, per stage:

* **zone digest** — all records of the namespace, order-insensitive.
  Unchanged zone ⇒ every DNS artifact is valid (the fast path).
* **name fingerprint** — the CNAME-closure of one name from one
  vantage: every record the resolver could touch while resolving it.
  When the whole-zone digest changed, artifacts whose closure did not
  survive individually.
* **dump digest** — every table-dump row; step 3 reads nothing else.
* **VRP digest / items** — the canonical VRP set; step 4 reads
  nothing else.  The item form feeds the session's delta index.
* **config fingerprint** — the parts of a :class:`RunConfig` that
  shape measurement *outcomes*: the fault plan and (when resilient)
  the retry policy.  Worker counts, backends and shard sizes are
  deliberately excluded — results are bit-identical across them, so
  all backends share one cache.

All digests go through :mod:`repro.crypto.digest` so the canonical
byte form is shared with the RPKI object encodings.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.crypto.digest import canonical_bytes, sha256_hex
from repro.dns.namespace import Namespace
from repro.dns.records import RecordType, normalise_name
from repro.dns.resolver import MAX_CHAIN_LENGTH


def zone_digest(namespace: Namespace) -> str:
    """Digest of every record in the namespace, order-insensitive."""
    return sha256_hex(canonical_bytes(namespace.content_items()))


def name_fingerprint(namespace: Namespace, vantage: str, name: str) -> str:
    """Digest of the CNAME-closure of ``name`` seen from ``vantage``.

    Walks every name the recursive resolver could visit (all CNAME
    targets, breadth-first, bounded like the resolver's chain walk)
    and hashes the effective record sets plus each name's existence
    bit — the latter distinguishes NOERROR from NXDOMAIN for empty
    answers.  Any zone change that could alter the resolution of
    ``name`` changes this fingerprint.
    """
    start = normalise_name(name)
    seen = {start}
    frontier = [start]
    items: List[list] = []
    # The resolver visits at most MAX_CHAIN_LENGTH + 1 chain names
    # before erroring out; walking one extra keeps the fingerprint a
    # superset of what any resolution can observe.
    for _hop in range(MAX_CHAIN_LENGTH + 2):
        if not frontier:
            break
        current = frontier.pop(0)
        rows: List[str] = []
        for rtype in (RecordType.CNAME, RecordType.A, RecordType.AAAA):
            for record in namespace.lookup(current, rtype, vantage):
                if rtype is RecordType.CNAME:
                    rows.append(f"CNAME {record.target}")
                    if record.target not in seen:
                        seen.add(record.target)
                        frontier.append(record.target)
                else:
                    rows.append(f"{rtype.value} {record.address}")
        items.append([current, namespace.exists(current), rows])
    return sha256_hex(canonical_bytes(items))


def dump_digest(dump) -> str:
    """Digest of every table-dump row, order-insensitive."""
    return sha256_hex(
        canonical_bytes(sorted(str(entry) for entry in dump.entries()))
    )


def vrp_items(payloads) -> List[list]:
    """The VRP set as sorted primitive rows (the delta-index currency)."""
    return sorted(
        [
            vrp.prefix.family,
            vrp.prefix.value,
            vrp.prefix.length,
            vrp.max_length,
            int(vrp.asn),
            vrp.trust_anchor,
        ]
        for vrp in payloads
    )


def vrp_digest(items: List[list]) -> str:
    """Digest of :func:`vrp_items` output."""
    return sha256_hex(canonical_bytes(items))


def config_fingerprint(config: Optional[Any]) -> str:
    """Digest of the outcome-shaping parts of a run config.

    A plain run (no fault plan) fingerprints the same regardless of
    retry settings — the retry loop never executes without faults, so
    its policy cannot affect artifacts.
    """
    if config is None or getattr(config, "faults", None) is None:
        payload: Any = {"resilient": False}
    else:
        faults = config.faults
        retry = config.retry
        payload = {
            "resilient": True,
            "faults": [
                faults.seed,
                [list(pair) for pair in faults.rates],
                faults.max_consecutive,
            ],
            "retry": [
                retry.max_attempts,
                retry.backoff_base,
                retry.backoff_multiplier,
                retry.backoff_max,
                retry.jitter,
                retry.stage_budget,
            ],
        }
    return sha256_hex(canonical_bytes(payload))
