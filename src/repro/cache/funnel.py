"""The cache-backed measurement funnel.

Drop-in replacement for the serial/resilient funnels inside a shard
loop: ``measure_domain`` produces the same :class:`DomainMeasurement`
a cold run would, but serves each stage from the session's validated
artifacts when possible and computes (and records) only the rest.

Two granularities, chosen by whether the run injects faults:

* **staged** (plain runs) — the three per-item stages cache
  independently: DNS answers per name form, prefix/origin matches per
  IP address, validation outcomes per (prefix, origin) pair.  A warm
  run whose inputs are unchanged recomputes nothing.
* **form-level** (fault runs) — one artifact per name form holding the
  whole funnel output.  Fault and retry decisions are deterministic in
  the *sequence* of faultable calls, so serving one stage from cache
  would shift every later decision; caching the whole form keeps the
  sequence intact.  Degraded forms are never cached — a degraded
  artifact is a partial answer, not a reusable one.

Every miss runs the real stage under a scratch registry (even when
observability is off) and stores the resulting metric delta with the
artifact; every hit replays the stored delta into the live registry.
Warm metrics are therefore bit-identical to cold ones — excluding the
``ripki_cache_*`` families themselves, which are the point.

Hit/miss/fresh state is funnel-local (one funnel per shard), so for a
fixed worker count the serial, thread and process backends see
identical cache behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.fingerprint import name_fingerprint
from repro.cache.session import CacheSession
from repro.cache.store import STAGES
from repro.core.dns_mapping import measure_name
from repro.core.pipeline import (
    CACHE_HITS_METRIC,
    CACHE_MISSES_METRIC,
    _STAT_HELP,
)
from repro.core.prefix_mapping import map_single_address
from repro.core.records import (
    DomainMeasurement,
    NameMeasurement,
    PrefixOriginPair,
)
from repro.core.rpki_validation import validate_single_pair
from repro.exec.codec import decode_name, encode_name
from repro.net import ASN, Address, Prefix
from repro.obs.metrics import (
    MetricsRegistry,
    registry_from_wire,
    registry_to_wire,
)
from repro.obs.runtime import metrics, thread_scope, tracer
from repro.rpki.vrp import OriginValidation
from repro.web.alexa import Domain


def _pair_key(prefix: Prefix, origin: ASN) -> str:
    return f"{prefix.family}:{prefix.value}:{prefix.length}:{int(origin)}"


class CachedFunnel:
    """Steps 2-4 against a :class:`CacheSession`, one instance per shard."""

    def __init__(
        self,
        resolver,
        table_dump,
        payloads,
        session: CacheSession,
        inner=None,
    ):
        self._resolver = resolver
        self._dump = table_dump
        self._payloads = payloads
        self._session = session
        self._inner = inner          # ResilientFunnel on fault runs
        self._namespace = resolver.namespace
        self._vantage = resolver.vantage
        #: Artifacts computed by this shard, per stage — adopted by the
        #: session (and shipped over the process wire) after the run.
        self.fresh: Dict[str, dict] = {stage: {} for stage in STAGES}
        #: Hit/miss counts by stage key ("dns.www", "prefix", "form.plain"…).
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}

    # -- the funnel ----------------------------------------------------------

    def measure_domain(self, domain: Domain) -> DomainMeasurement:
        """Steps 2-4 for one domain (both name forms)."""
        www = self.measure_form(domain.www_name, "www")
        plain = self.measure_form(domain.name, "plain")
        return DomainMeasurement(domain=domain, www=www, plain=plain)

    def measure_form(self, name: str, form: str) -> NameMeasurement:
        if self._inner is not None:
            return self._form_level(name, form)
        return self._staged(name, form)

    # -- staged caching (plain runs) ----------------------------------------

    def _staged(self, name: str, form: str) -> NameMeasurement:
        entry = self._lookup("dns", name)
        if entry is not None:
            self._hit(f"dns.{form}")
            measurement = self._dns_from_entry(name, entry)
            self._replay(entry[5])
        else:
            self._miss(f"dns.{form}")
            measurement, deltas = self._capture(
                lambda: measure_name(self._resolver, name)
            )
            self.fresh["dns"][name] = [
                name_fingerprint(self._namespace, self._vantage, name),
                measurement.resolved,
                [[a.family, a.value] for a in measurement.addresses],
                measurement.excluded_special,
                measurement.cname_count,
                deltas,
            ]
        if measurement.resolved and measurement.addresses:
            pairs = self._map_addresses(measurement)
            measurement.pairs = self._validate(pairs)
        return measurement

    @staticmethod
    def _dns_from_entry(name: str, entry: list) -> NameMeasurement:
        measurement = NameMeasurement(name=name)
        measurement.resolved = entry[1]
        for family, value in entry[2]:
            measurement.addresses.append(Address(family, value))
        measurement.excluded_special = entry[3]
        measurement.cname_count = entry[4]
        return measurement

    def _map_addresses(
        self, measurement: NameMeasurement
    ) -> List[Tuple[Prefix, ASN]]:
        pairs: set = set()
        missing: List[Tuple[str, Address]] = []
        for address in measurement.addresses:
            key = f"{address.family}:{address.value}"
            entry = self._lookup("prefix", key)
            if entry is None:
                missing.append((key, address))
                continue
            self._hit("prefix")
            for family, value, length, origin in entry[0]:
                pairs.add((Prefix(family, value, length), ASN(origin)))
            measurement.unreachable_addresses += entry[1]
            measurement.as_set_excluded += entry[2]
            self._replay(entry[3])
        if missing:
            with tracer().span("stage.prefix", name=measurement.name):
                for key, address in missing:
                    self._miss("prefix")
                    (mapped, unreachable, as_set), deltas = self._capture(
                        lambda a=address: map_single_address(self._dump, a)
                    )
                    pairs.update(mapped)
                    measurement.unreachable_addresses += unreachable
                    measurement.as_set_excluded += as_set
                    self.fresh["prefix"][key] = [
                        [
                            [p.family, p.value, p.length, int(o)]
                            for p, o in mapped
                        ],
                        unreachable,
                        as_set,
                        deltas,
                    ]
        return sorted(pairs)

    def _validate(
        self, pair_inputs: List[Tuple[Prefix, ASN]]
    ) -> List[PrefixOriginPair]:
        validated: List[Optional[PrefixOriginPair]] = []
        missing: List[Tuple[int, str, Prefix, ASN]] = []
        for index, (prefix, origin) in enumerate(pair_inputs):
            key = _pair_key(prefix, origin)
            entry = self._lookup("rpki", key)
            if entry is None:
                validated.append(None)
                missing.append((index, key, prefix, origin))
                continue
            self._hit("rpki")
            validated.append(
                PrefixOriginPair(prefix, origin, OriginValidation(entry[0]))
            )
            self._replay(entry[1])
        if missing:
            with tracer().span("stage.rpki"):
                for index, key, prefix, origin in missing:
                    self._miss("rpki")
                    pair, deltas = self._capture(
                        lambda p=prefix, o=origin: validate_single_pair(
                            self._payloads, p, o
                        )
                    )
                    validated[index] = pair
                    self.fresh["rpki"][key] = [pair.state.value, deltas]
        return validated  # type: ignore[return-value]

    # -- form-level caching (fault runs) ------------------------------------

    def _form_level(self, name: str, form: str) -> NameMeasurement:
        entry = self._lookup("form", name)
        if entry is not None:
            self._hit(f"form.{form}")
            measurement = decode_name(entry[1])
            self._replay(entry[2])
            return measurement
        self._miss(f"form.{form}")
        measurement, deltas = self._capture(
            lambda: self._inner.measure_form(name)
        )
        if not measurement.degraded_stage:
            self.fresh["form"][name] = [
                name_fingerprint(self._namespace, self._vantage, name),
                list(encode_name(measurement)),
                deltas,
            ]
        return measurement

    # -- plumbing ------------------------------------------------------------

    def _lookup(self, stage: str, key: str) -> Optional[list]:
        entry = self.fresh[stage].get(key)
        if entry is not None:
            return entry
        return self._session.get(stage, key)

    def _capture(self, fn: Callable) -> Tuple[object, List[list]]:
        """Run ``fn`` under a scratch registry; return (value, delta).

        The scratch is used even with observability disabled: an
        unobserved cold run must still store deltas so a later
        *observed* warm run can replay them.
        """
        live = metrics()
        scratch = MetricsRegistry()
        with thread_scope(scratch, tracer()):
            value = fn()
        if live.enabled:
            live.merge(scratch)
        return value, registry_to_wire(scratch)

    def _replay(self, deltas: List[list]) -> None:
        live = metrics()
        if live.enabled:
            live.merge(registry_from_wire(deltas))

    def _hit(self, stage_key: str) -> None:
        self.hits[stage_key] = self.hits.get(stage_key, 0) + 1
        metrics().counter(
            CACHE_HITS_METRIC,
            _STAT_HELP[CACHE_HITS_METRIC],
            labelnames=("stage",),
        ).labels(stage=stage_key).inc()

    def _miss(self, stage_key: str) -> None:
        self.misses[stage_key] = self.misses.get(stage_key, 0) + 1
        metrics().counter(
            CACHE_MISSES_METRIC,
            _STAT_HELP[CACHE_MISSES_METRIC],
            labelnames=("stage",),
        ).labels(stage=stage_key).inc()
