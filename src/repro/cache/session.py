"""One run's view of the snapshot store.

:meth:`CacheSession.open` loads the store, compares the stored input
digests against the study's current inputs, and classifies every
artifact as valid or invalidated *before* any measurement runs:

* config fingerprint mismatch — nothing is reusable (a fault plan
  changes outcomes, not just timing);
* zone digest match — every ``dns``/``form`` artifact is valid (the
  fast path); on mismatch, each artifact's stored CNAME-closure
  fingerprint is recomputed and only changed names are dropped;
* dump digest mismatch — every ``prefix`` artifact (and every
  ``form`` artifact, which embeds step-3 results) is dropped;
* VRP digest mismatch — the **delta index**: the symmetric
  difference of the stored and current VRP sets is loaded into a
  prefix trie, and a ``rpki`` artifact is dropped exactly when some
  changed/revoked VRP's prefix covers its announced prefix (RFC 6811
  validation reads nothing else).  ``form`` artifacts are checked
  against their embedded pairs the same way.

The session then serves validated artifacts to every shard (it is
plain data, so the process pool ships it with the study), collects
the shards' fresh artifacts after the merge, and saves the union
under the current digests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.fingerprint import (
    config_fingerprint,
    dump_digest,
    name_fingerprint,
    vrp_digest,
    vrp_items,
    zone_digest,
)
from repro.cache.store import STAGES, load_store, save_store, store_path
from repro.net import Prefix, PrefixTrie
from repro.obs.runtime import thread_scope

# Index of the (prefix, origin) pair list inside a form artifact's
# encoded NameMeasurement (repro.exec.codec wire layout).
_WIRE_NAME_PAIRS = 7


class CacheSession:
    """Validated artifacts in, fresh artifacts out, one store write."""

    def __init__(
        self,
        directory: str,
        digests: Dict[str, str],
        vrp_set: List[list],
        entries: Dict[str, dict],
        invalidated: Dict[str, int],
        save: bool = True,
        clean: bool = False,
    ):
        self.directory = directory
        self._digests = digests
        self._vrp_set = vrp_set
        self._entries = entries
        self._invalidated = invalidated
        self._save = save
        # True when the on-disk store already equals what save() would
        # write (same digests, nothing invalidated) — a warm run with
        # no fresh artifacts then skips the rewrite entirely.
        self._clean = clean
        self._fresh: Dict[str, dict] = {stage: {} for stage in STAGES}

    @classmethod
    def open(cls, directory: str, study, config=None) -> "CacheSession":
        """Load the store and classify its artifacts for this study."""
        namespace = study.resolver.namespace
        vantage = study.resolver.vantage
        vrps = vrp_items(study.payloads)
        digests = {
            "zone": zone_digest(namespace),
            "dump": dump_digest(study.table_dump),
            "vrps": vrp_digest(vrps),
            "config": config_fingerprint(config),
        }
        entries: Dict[str, dict] = {stage: {} for stage in STAGES}
        invalidated: Dict[str, int] = {}

        def drop(stage: str, count: int = 1) -> None:
            if count:
                invalidated[stage] = invalidated.get(stage, 0) + count

        stored = load_store(directory)
        save = config is None or config.cache is None or config.cache.save
        if stored is None:
            return cls(directory, digests, vrps, entries, invalidated, save)
        old = stored["stages"]
        if stored["digests"]["config"] != digests["config"]:
            drop("config", sum(len(old.get(stage, {})) for stage in STAGES))
            return cls(directory, digests, vrps, entries, invalidated, save)

        # Validity checks walk tries and namespaces; none of that is
        # measurement work, so run them under the null scope.
        with thread_scope():
            zone_ok = stored["digests"]["zone"] == digests["zone"]
            for stage in ("dns", "form"):
                if zone_ok:
                    entries[stage] = dict(old.get(stage, {}))
                    continue
                for name, entry in old.get(stage, {}).items():
                    if name_fingerprint(namespace, vantage, name) == entry[0]:
                        entries[stage][name] = entry
                    else:
                        drop(stage)
            if stored["digests"]["dump"] == digests["dump"]:
                entries["prefix"] = dict(old.get("prefix", {}))
            else:
                drop("prefix", len(old.get("prefix", {})))
                # Form artifacts embed step-3 results.
                drop("form", len(entries["form"]))
                entries["form"] = {}
            if stored["digests"]["vrps"] == digests["vrps"]:
                entries["rpki"] = dict(old.get("rpki", {}))
            else:
                delta = _delta_trie(stored["vrp_set"], vrps)
                for key, entry in old.get("rpki", {}).items():
                    family, value, length, _origin = key.split(":")
                    announced = Prefix(int(family), int(value), int(length))
                    if delta.covering(announced):
                        drop("rpki")
                    else:
                        entries["rpki"][key] = entry
                survivors = {}
                for name, entry in entries["form"].items():
                    pairs = entry[1][_WIRE_NAME_PAIRS]
                    if any(
                        delta.covering(Prefix(pair[0], pair[1], pair[2]))
                        for pair in pairs
                    ):
                        drop("form")
                    else:
                        survivors[name] = entry
                entries["form"] = survivors
        clean = stored["digests"] == digests
        return cls(
            directory, digests, vrps, entries, invalidated, save, clean=clean
        )

    # -- shard-facing reads --------------------------------------------------

    def get(self, stage: str, key: str) -> Optional[list]:
        """The validated artifact under ``key``, or None."""
        return self._entries[stage].get(key)

    def valid_counts(self) -> Dict[str, int]:
        """How many artifacts survived validation, per stage."""
        return {stage: len(self._entries[stage]) for stage in STAGES}

    # -- accounting ----------------------------------------------------------

    @property
    def invalidated(self) -> Dict[str, int]:
        """Artifacts dropped at open, by stage (plus ``config``)."""
        return dict(self._invalidated)

    def record_invalidation(self, registry) -> None:
        """Tick ``ripki_cache_invalidated_total{stage=…}`` into a registry."""
        from repro.core.pipeline import _STAT_HELP, CACHE_INVALIDATED_METRIC

        counter = registry.counter(
            CACHE_INVALIDATED_METRIC,
            _STAT_HELP[CACHE_INVALIDATED_METRIC],
            labelnames=("stage",),
        )
        for stage, count in sorted(self._invalidated.items()):
            counter.labels(stage=stage).inc(count)

    # -- parent-side writes --------------------------------------------------

    def adopt(self, fresh: Dict[str, dict]) -> None:
        """Fold one shard's fresh artifacts into the session."""
        for stage, entries in fresh.items():
            self._fresh[stage].update(entries)

    def save(self) -> Optional[str]:
        """Persist surviving + fresh artifacts under the current digests.

        A fully-warm run — the store matched every digest and every
        artifact was served from it — leaves the file untouched;
        rewriting tens of thousands of unchanged entries would
        otherwise dominate the warm run's wall clock.
        """
        if not self._save:
            return None
        if self._clean and not any(self._fresh[stage] for stage in STAGES):
            return store_path(self.directory)
        stages = {
            stage: {**self._entries[stage], **self._fresh[stage]}
            for stage in STAGES
        }
        return save_store(self.directory, self._digests, self._vrp_set, stages)

    def __repr__(self) -> str:
        valid = sum(len(self._entries[stage]) for stage in STAGES)
        fresh = sum(len(self._fresh[stage]) for stage in STAGES)
        return f"<CacheSession {self.directory!r} valid={valid} fresh={fresh}>"


def _delta_trie(old_items: List[list], new_items: List[list]) -> PrefixTrie:
    """The changed/revoked/added VRP prefixes, indexed for coverage."""
    delta = {tuple(item) for item in old_items} ^ {
        tuple(item) for item in new_items
    }
    trie: PrefixTrie = PrefixTrie()
    for family, value, length, _max_length, _asn, _anchor in delta:
        trie.insert(Prefix(family, value, length), True)
    return trie
