"""On-disk format of the snapshot store.

One JSON file (``snapshot.json``) per cache directory holds the input
digests the artifacts were computed under, the VRP set itself (the
delta index needs the old set, not just its digest), and four
artifact maps — one per stage granularity:

* ``dns``    — per name form: the DNS answer,
* ``prefix`` — per IP address: its (prefix, origin) matches,
* ``rpki``   — per (prefix, origin) pair: its validation outcome,
* ``form``   — per name form: a whole-funnel measurement (fault runs
  only, where per-stage splitting would break retry determinism).

Every artifact carries the metric delta its computation produced (the
:func:`repro.obs.metrics.registry_to_wire` form) so cache hits replay
the exact counter ticks of a recomputation.  Those deltas repeat the
same few metric descriptors tens of thousands of times, so the store
interns descriptors into one table on save and expands them on load —
in memory and on the wire the deltas stay self-contained.

Everything in the file is JSON primitives; keys are strings.  A
missing, corrupt, or differently-versioned file loads as ``None`` and
the session starts cold — the store is a cache, never a source of
truth.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

STORE_VERSION = 1
STORE_FILENAME = "snapshot.json"

# Stage granularities, in the order the funnel runs them.
STAGES: Tuple[str, ...] = ("dns", "prefix", "rpki", "form")

# Index of the metric-delta slot inside each stage's artifact list.
DELTAS_INDEX: Dict[str, int] = {"dns": 5, "prefix": 3, "rpki": 1, "form": 2}


def store_path(directory: str) -> str:
    return os.path.join(directory, STORE_FILENAME)


def _intern_deltas(stages: Dict[str, dict]) -> Tuple[Dict[str, dict], List[list]]:
    """Copy ``stages`` with metric descriptors replaced by table indices."""
    table: List[list] = []
    index_of: Dict[tuple, int] = {}
    compact_stages: Dict[str, dict] = {}
    for stage, entries in stages.items():
        slot = DELTAS_INDEX[stage]
        compact_entries = {}
        for key, entry in entries.items():
            compact = list(entry)
            interned = []
            for name, kind, help, labelnames, buckets, series in entry[slot]:
                descriptor = (
                    name,
                    kind,
                    help,
                    tuple(labelnames),
                    tuple(buckets) if buckets is not None else None,
                )
                index = index_of.get(descriptor)
                if index is None:
                    index = len(table)
                    index_of[descriptor] = index
                    table.append(
                        [name, kind, help, list(labelnames), buckets]
                    )
                interned.append([index, series])
            compact[slot] = interned
            compact_entries[key] = compact
        compact_stages[stage] = compact_entries
    return compact_stages, table


def _expand_deltas(stages: Dict[str, dict], table: List[list]) -> Dict[str, dict]:
    """Inverse of :func:`_intern_deltas`; raises on a malformed store."""
    expanded_stages: Dict[str, dict] = {}
    for stage, entries in stages.items():
        slot = DELTAS_INDEX[stage]
        expanded_entries = {}
        for key, entry in entries.items():
            expanded = list(entry)
            expanded[slot] = [
                list(table[index]) + [series] for index, series in entry[slot]
            ]
            expanded_entries[key] = expanded
        expanded_stages[stage] = expanded_entries
    return expanded_stages


def save_store(
    directory: str,
    digests: Dict[str, str],
    vrp_set: List[list],
    stages: Dict[str, dict],
) -> str:
    """Write the store; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    compact_stages, table = _intern_deltas(
        {stage: stages.get(stage, {}) for stage in STAGES}
    )
    payload = {
        "version": STORE_VERSION,
        "digests": digests,
        "vrp_set": vrp_set,
        "metrics": table,
        "stages": compact_stages,
    }
    path = store_path(directory)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def load_digests(directory: str) -> Optional[Dict[str, str]]:
    """The input digests a store was computed under, or ``None``.

    A cheap probe that skips the artifact maps entirely — the serving
    layer uses it to decide whether an index built from this cache
    directory would be *stale* against a study's current inputs,
    without paying for a full load.
    """
    try:
        with open(store_path(directory)) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
        return None
    digests = payload.get("digests")
    if not isinstance(digests, dict):
        return None
    for key in ("zone", "dump", "vrps", "config"):
        if key not in digests:
            return None
    return {key: str(value) for key, value in digests.items()}


def load_store(directory: str) -> Optional[dict]:
    """Read the store back, or ``None`` for anything unusable."""
    try:
        with open(store_path(directory)) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
        return None
    try:
        payload["stages"] = _expand_deltas(
            payload["stages"], payload["metrics"]
        )
        payload["digests"]["zone"]  # structural sanity
        payload["digests"]["dump"]
        payload["digests"]["vrps"]
        payload["digests"]["config"]
        payload["vrp_set"]
    except (KeyError, IndexError, TypeError):
        return None
    return payload
