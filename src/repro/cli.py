"""Command-line interface.

``ripki run`` builds a synthetic world, executes the measurement
study, and prints every figure's series and Table 1 — the same rows
the benchmark harness checks against the paper.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis import TextTable
from repro.core import (
    CacheConfig,
    ContinuousStudy,
    MeasurementStudy,
    RtrSink,
    RunConfig,
    TelemetrySink,
    cdn_as_report,
    figure1_www_overlap,
    figure2_rpki_outcome,
    figure3_cdn_popularity,
    figure4_rpki_cdn,
    pipeline_statistics,
    table1_top_covered,
)
from repro.core.reports import render_table1
from repro.faults import PROFILES, FaultPlan, RetryPolicy
from repro.web import EcosystemConfig, HTTPArchiveClassifier, WebEcosystem
from repro.world import WORLD_PROFILES


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared ``--telemetry-*`` flag group (argparse parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("telemetry")
    group.add_argument("--telemetry-port", type=int, default=None,
                       metavar="PORT",
                       help="expose /metrics, /health, /ready, and "
                            "/snapshot over HTTP on PORT while the "
                            "command runs (0 = ephemeral port)")
    group.add_argument("--telemetry-host", default="127.0.0.1",
                       metavar="HOST",
                       help="bind address for --telemetry-port")
    group.add_argument("--telemetry-linger", type=float, default=0.0,
                       metavar="SEC",
                       help="keep the telemetry endpoints up SEC "
                            "seconds after the work finishes (lets an "
                            "external scraper read the final state)")
    return parent


def _exec_parent() -> argparse.ArgumentParser:
    """Shared sharded-executor flag group (argparse parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument("--workers", "--num-workers", type=int, default=1,
                       help="worker count for the sharded executor "
                            "(1 = classic serial loop)")
    group.add_argument("--exec-mode",
                       choices=["auto", "serial", "thread", "process",
                                "workers"],
                       default="auto",
                       help="sharded-executor backend (auto: process "
                            "pool when --workers > 1; workers: "
                            "long-lived framed worker processes with "
                            "work-stealing and straggler re-dispatch)")
    group.add_argument("--shard-size", type=int, default=None,
                       help="domains per shard (default: scaled to "
                            "workers)")
    group.add_argument("--job-deadline", type=float, default=None,
                       metavar="SEC",
                       help="per-job deadline for --exec-mode workers; "
                            "an unanswered job is re-dispatched to "
                            "another worker after SEC seconds")
    return parent


def _fault_parent() -> argparse.ArgumentParser:
    """Shared fault-injection flag group (argparse parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("fault injection")
    group.add_argument("--fault-profile", choices=sorted(PROFILES),
                       default=None,
                       help="inject deterministic substrate faults "
                            "(seeded from --seed; degraded domains are "
                            "reported, not fatal)")
    group.add_argument("--retries", type=int, default=3,
                       help="attempts per funnel stage before a domain "
                            "degrades (fault runs only)")
    group.add_argument("--retry-backoff", type=float, default=0.05,
                       help="base backoff seconds between attempts "
                            "(accounted deterministically, never slept)")
    return parent


def _dispatch_parent() -> argparse.ArgumentParser:
    """Shared service-dispatch flag group (argparse parent)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("dispatch")
    group.add_argument("--workers", type=int, default=1,
                       help="dispatch thread count (1 = serial)")
    group.add_argument("--batch-size", type=int, default=None,
                       help="items per dispatch batch "
                            "(default: scaled to workers)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ripki",
        description="Reproduce the RiPKI (HotNets 2015) measurement study.",
    )
    telemetry = _telemetry_parent()
    executor = _exec_parent()
    faults = _fault_parent()
    dispatch = _dispatch_parent()
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", parents=[executor, faults, telemetry],
                         help="build a world and run the full study")
    run.add_argument("--domains", type=int, default=20_000,
                     help="population size (the paper used 1M)")
    run.add_argument("--seed", type=int, default=2015)
    run.add_argument("--bins", type=int, default=None,
                     help="rank bin size (default: population/100)")
    run.add_argument("--figure", choices=["1", "2", "3", "4", "table1", "cdn-as"],
                     action="append", default=None,
                     help="restrict output (repeatable)")
    run.add_argument("--progress", action="store_true",
                     help="render a rate/ETA progress line on stderr")
    run.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="write Prometheus text metrics to FILE")
    run.add_argument("--trace-out", metavar="FILE", default=None,
                     help="write the span trace as JSON to FILE")
    run.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="persist per-stage artifacts under DIR; a "
                          "re-run with unchanged inputs recomputes "
                          "nothing and returns a bit-identical result")

    refresh = sub.add_parser(
        "refresh",
        parents=[telemetry],
        help="continuous-measurement campaigns over a churning world: "
             "a full baseline, then incremental refreshes that "
             "re-measure only what changed",
    )
    refresh.add_argument("--domains", type=int, default=5_000)
    refresh.add_argument("--seed", type=int, default=2015)
    refresh.add_argument("--campaigns", type=int, default=3,
                         help="refresh campaigns after the baseline")
    refresh.add_argument("--churn", type=float, default=0.05,
                         help="fraction of domains re-hosted between "
                              "campaigns")
    refresh.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="snapshot-cache refreshes (exact carry-over "
                              "keyed by input digests) instead of the "
                              "www/apex equality heuristic")
    refresh.add_argument("--metrics-out", metavar="FILE", default=None,
                         help="write Prometheus text metrics to FILE")

    export = sub.add_parser(
        "export",
        help="build a world, run the study, write the datasets as CSV "
             "plus a RIS-style table dump (the paper: 'All data will "
             "be made available')",
    )
    export.add_argument("--domains", type=int, default=20_000)
    export.add_argument("--seed", type=int, default=2015)
    export.add_argument("--outdir", default="ripki-data",
                        help="output directory (created if missing)")

    audit = sub.add_parser(
        "audit",
        help="per-domain delivery-security report (Section 5.1): grade, "
             "prefix inventory, RPKI verdicts, actionable findings",
    )
    audit.add_argument("--domains", type=int, default=5_000)
    audit.add_argument("--seed", type=int, default=2015)
    audit.add_argument("--rank", type=int, action="append", default=None,
                       help="rank(s) to audit (repeatable; default: 1-5)")

    serve = sub.add_parser(
        "serve",
        parents=[dispatch, telemetry],
        help="run a completed study as a query service: build (or load "
             "from a snapshot cache) an immutable serving index, answer "
             "a query script or a generated load, print a "
             "latency/verdict table",
    )
    serve.add_argument("--domains", type=int, default=2_000)
    serve.add_argument("--seed", type=int, default=2015)
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="build the index through the snapshot cache "
                            "under DIR (warm when digests match)")
    serve.add_argument("--script", metavar="FILE", default=None,
                       help="query script (one query per line: "
                            "'validate P ASN' | 'lookup IP' | "
                            "'domain NAME' | 'rank_slice A B'); "
                            "default: generated load")
    serve.add_argument("--queries", type=int, default=2_000,
                       help="generated load size (ignored with --script)")
    serve.add_argument("--load-seed", type=int, default=None,
                       help="load-generator seed (default: --seed)")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf popularity exponent of the generated load")
    serve.add_argument("--serve-mode", choices=["auto", "serial", "thread"],
                       default="auto",
                       help="dispatch backend (auto: thread pool when "
                            "--workers > 1)")
    serve.add_argument("--io-wait", type=float, default=0.0, metavar="SEC",
                       help="simulated per-query IO wait (models a live "
                            "deployment's network hop; lets threads "
                            "overlap)")
    serve.add_argument("--fault-profile", choices=sorted(PROFILES),
                       default=None,
                       help="inject serve-path faults (answers degrade "
                            "with stale/degraded markers, never error)")
    serve.add_argument("--json", metavar="FILE", default=None,
                       help="write the run summary as JSON to FILE")
    serve.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write Prometheus text metrics to FILE")

    rtrd = sub.add_parser(
        "rtrd",
        parents=[dispatch, telemetry],
        help="run the long-lived RTR cache daemon: a churning router "
             "population synchronises against a mutating VRP world "
             "over streaming serial deltas; print a session/push "
             "table and verify every surviving router's table",
    )
    rtrd.add_argument("--vrps", type=int, default=2_000,
                      help="synthetic VRP world size")
    rtrd.add_argument("--seed", type=int, default=2015)
    rtrd.add_argument("--sessions", type=int, default=64,
                      help="target concurrent router sessions")
    rtrd.add_argument("--rounds", type=int, default=8,
                      help="churn rounds (one world publish each)")
    rtrd.add_argument("--world-changes", type=int, default=50,
                      help="VRPs announced/withdrawn per round")
    rtrd.add_argument("--disconnect", type=float, default=0.05,
                      help="fraction of routers disconnecting per round")
    rtrd.add_argument("--lag", type=float, default=0.1,
                      help="fraction of routers going read-silent "
                           "per round")
    rtrd.add_argument("--garbage", type=float, default=0.05,
                      help="fraction of routers sending junk bytes "
                           "per round")
    rtrd.add_argument("--history", type=int, default=16,
                      help="serial diffs kept for incremental sync "
                           "(older routers get a Cache Reset)")
    rtrd.add_argument("--rtrd-mode", choices=["auto", "serial", "thread"],
                      default="auto",
                      help="dispatch backend (auto: thread pool when "
                           "--workers > 1)")
    rtrd.add_argument("--json", metavar="FILE", default=None,
                      help="write the run summary as JSON to FILE")
    rtrd.add_argument("--metrics-out", metavar="FILE", default=None,
                      help="write Prometheus text metrics to FILE")

    world = sub.add_parser(
        "world",
        parents=[executor, faults, telemetry],
        help="step a seeded CA/publication world (ROA churn, missed "
             "re-signs, outages, key rollovers) and drive refresh "
             "campaigns plus an RTR daemon from each step's validated "
             "VRPs",
    )
    world.add_argument("--domains", type=int, default=2_000,
                       help="ecosystem size backing the measurement side")
    world.add_argument("--seed", type=int, default=2015,
                       help="seed for the ecosystem AND the world's "
                            "fault schedule (same seed, same ledger)")
    world.add_argument("--profile", choices=sorted(WORLD_PROFILES),
                       default="sloppy-ca",
                       help="CA behaviour profile driving the per-step "
                            "event schedule")
    world.add_argument("--steps", type=int, default=20,
                       help="world steps (one refresh campaign each)")
    world.add_argument("--grace", type=float, default=2.0,
                       help="relying-party grace window (virtual time "
                            "units) before a stale point's VRPs drop")
    world.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="snapshot-cache directory (default: a "
                            "temporary directory, so refreshes always "
                            "run through selective invalidation)")
    world.add_argument("--json", metavar="FILE", default=None,
                       help="write the run summary and the full event "
                            "ledger as JSON to FILE")
    world.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write Prometheus text metrics to FILE")

    rov = sub.add_parser(
        "rov",
        parents=[executor, telemetry],
        help="infer per-AS ROV enforcement from seeded anchor/"
             "experiment announcement pairs, then score adoption "
             "futures with the what-if counterfactual engine",
    )
    rov.add_argument("--domains", type=int, default=600,
                     help="ecosystem size backing the what-if funnel")
    rov.add_argument("--seed", type=int, default=2015,
                     help="seed for the ecosystem, the ground-truth "
                          "deployment, and every experiment round")
    rov.add_argument("--rounds", type=int, default=48,
                     help="anchor/experiment announcement rounds")
    rov.add_argument("--vantages", type=int, default=10,
                     help="vantage points sampled per round")
    rov.add_argument("--enforce-scale", type=float, default=1.0,
                     help="multiplier on the role-dependent ground-"
                          "truth enforcement rates")
    rov.add_argument("--futures", type=int, default=8,
                     help="sampled adoption futures scored in addition "
                          "to the three named scenarios")
    rov.add_argument("--samples", type=int, default=12,
                     help="seeded hijack cases replayed per future")
    rov.add_argument("--json", metavar="FILE", nargs="?", const="-",
                     default=None,
                     help="write the full summary as JSON to FILE "
                          "(bare --json: JSON on stdout, tables on "
                          "stderr)")
    rov.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="write Prometheus text metrics to FILE")

    worker = sub.add_parser(
        "worker",
        parents=[faults],
        help="serve the framed job protocol over stdin/stdout: build "
             "a world, announce its input digests, then answer "
             "JobSpec frames with JobResult frames until EOF (the "
             "transport a remote scheduler drives over any byte pipe)",
    )
    worker.add_argument("--domains", type=int, default=20_000,
                        help="population size (must match the driving "
                             "scheduler's world)")
    worker.add_argument("--seed", type=int, default=2015)
    worker.add_argument("--worker-id", type=int, default=0,
                        help="identity stamped on every frame")
    return parser


def _start_telemetry(args):
    """Start the exposition daemon (reads the process-wide registry)."""
    from repro.obs.http import TelemetryServer

    server = TelemetryServer(
        host=args.telemetry_host, port=args.telemetry_port
    )
    server.start()
    print(
        f"  telemetry: {server.url} "
        "(/metrics /health /ready /snapshot)"
    )
    return server


def _finish_telemetry(server, linger_s: float) -> None:
    if server is None:
        return
    try:
        if linger_s > 0:
            print(f"  telemetry: lingering {linger_s:.0f}s at {server.url}")
            time.sleep(linger_s)
    finally:
        server.stop()


def _print_series(title: str, series_map, limit: int = 20) -> None:
    from repro.analysis.charts import series_chart

    print(f"\n== {title} ==")
    labels = list(series_map)
    table = TextTable(["bin (ranks)"] + [series_map[l].label for l in labels])
    first = series_map[labels[0]]
    step = max(1, len(first) // limit)
    for index in range(0, len(first), step):
        start, end = first.bin_range(index)
        table.add_row(
            f"{start}-{end}",
            *(series_map[l].values[index] for l in labels),
        )
    print(table.render())
    print(series_chart(series_map, width=60, shared_scale=False))
    for label in labels:
        series = series_map[label]
        print(
            f"  {series.label}: mean={series.mean():.4f} "
            f"head={series.head_mean(10):.4f} tail={series.tail_mean(10):.4f}"
        )


def run_study(args: argparse.Namespace) -> int:
    from repro import obs

    wanted = set(args.figure or ["1", "2", "3", "4", "table1", "cdn-as"])
    telemetry_on = args.telemetry_port is not None
    observe = bool(
        args.progress or args.metrics_out or args.trace_out or telemetry_on
    )
    registry = collector = None
    telemetry = None
    if observe:
        registry, collector = obs.enable()
    try:
        if telemetry_on:
            telemetry = _start_telemetry(args)
        print(f"building world: {args.domains} domains, seed {args.seed} ...")
        started = time.time()
        world = WebEcosystem.build(
            EcosystemConfig(domain_count=args.domains, seed=args.seed)
        )
        print(f"  built in {time.time() - started:.1f}s: {world!r}")
        started = time.time()
        progress = obs.stderr_renderer() if args.progress else None
        faults = None
        if args.fault_profile:
            faults = FaultPlan.from_profile(args.fault_profile, seed=args.seed)
        config = RunConfig(
            workers=args.workers,
            mode=args.exec_mode,
            shard_size=args.shard_size,
            retry=RetryPolicy(
                max_attempts=args.retries, backoff_base=args.retry_backoff
            ),
            faults=faults,
            progress=progress,
            cache=CacheConfig(args.cache_dir) if args.cache_dir else None,
            job_deadline_s=args.job_deadline,
        )
        study = MeasurementStudy.from_ecosystem(world)
        result = study.run(config=config)
        label = f" ({args.workers} workers)" if args.workers > 1 else ""
        print(f"  measured in {time.time() - started:.1f}s{label}")
        if telemetry is not None:
            _stamp_health(telemetry.health, study, config, args)

        stats = pipeline_statistics(result, registry=registry)
        print("\n== Section 4 statistics ==")
        for key, value in stats.items():
            print(f"  {key}: {value}")

        if faults is not None:
            s = result.statistics
            print(f"\n== Resilience under '{args.fault_profile}' faults ==")
            print(f"  plan: {faults.describe()}")
            print(obs.degradation_report(
                s.degraded_domains,
                s.retries_total,
                s.faults_by_kind,
                s.domain_count,
            ))

        if args.cache_dir:
            s = result.statistics
            print(f"\n== Snapshot cache ({args.cache_dir}) ==")
            print(obs.cache_report(
                s.cache_hits_by_stage,
                s.cache_misses_by_stage,
                s.cache_invalidated_by_stage,
            ))

        dispatch = result.scheduler_report
        if dispatch is not None and dispatch.backend == "workers":
            print("\n== Job scheduler ==")
            print(obs.scheduler_report(dispatch.to_dict()))

        _render_figures(args, wanted, world, result)

        if observe:
            print("\n== Stage timings ==")
            print(obs.stage_timing_report(collector))
            if args.metrics_out:
                if dispatch is not None and dispatch.backend == "workers":
                    # Explicit export only: the study registry stays
                    # byte-identical to serial unless asked.
                    dispatch.to_metrics(registry)
                size = registry.write_prometheus(args.metrics_out)
                print(f"  metrics: {args.metrics_out} ({size} bytes)")
            if args.trace_out:
                spans = collector.dump(args.trace_out)
                print(f"  trace: {args.trace_out} ({spans} spans)")
        _finish_telemetry(telemetry, args.telemetry_linger)
        telemetry = None
    finally:
        _finish_telemetry(telemetry, 0.0)
        if observe:
            obs.disable()
    return 0


def _stamp_health(health, study, config, args) -> None:
    """Stamp a completed (re)build onto the telemetry health card.

    The digests are the snapshot cache's fingerprints of the study's
    inputs — the same values :meth:`ServingIndex.stale_against` and
    cache invalidation key on — so ``/health`` and a cache store
    describing the same world agree byte for byte.
    """
    from repro.cache.fingerprint import (
        config_fingerprint,
        dump_digest,
        vrp_digest,
        vrp_items,
        zone_digest,
    )

    health.set_digests({
        "zone": zone_digest(study.resolver.namespace),
        "dump": dump_digest(study.table_dump),
        "vrps": vrp_digest(vrp_items(study.payloads)),
        "config": config_fingerprint(config),
    })
    health.set_detail(domains=args.domains, seed=args.seed)
    health.mark_refresh()


def _render_figures(args, wanted, world, result) -> None:
    if "1" in wanted:
        series = figure1_www_overlap(result, args.bins)
        _print_series("Figure 1: equal prefixes www vs w/o www", {"=": series})
    if "2" in wanted:
        _print_series(
            "Figure 2: RPKI validation outcome",
            figure2_rpki_outcome(result, args.bins),
        )
    if "3" in wanted:
        classifier = HTTPArchiveClassifier(
            world.namespace, coverage=max(1, args.domains * 3 // 10)
        )
        archive = classifier.classify_all(world.ranking)
        _print_series(
            "Figure 3: CDN popularity (two heuristics)",
            figure3_cdn_popularity(result, archive, classifier.coverage, args.bins),
        )
    if "4" in wanted:
        _print_series(
            "Figure 4: RPKI deployment, overall vs CDN-hosted",
            figure4_rpki_cdn(result, args.bins),
        )
    if "table1" in wanted:
        print("\n== Table 1: top domains with RPKI coverage ==")
        print(render_table1(table1_top_covered(result)))
    if "cdn-as" in wanted:
        print("\n== Section 4.2: CDN ASes in the RPKI ==")
        print("  " + cdn_as_report(world).summary())


def run_refresh(args: argparse.Namespace) -> int:
    from repro import obs

    telemetry_on = args.telemetry_port is not None
    observe = bool(args.metrics_out or telemetry_on)
    registry = None
    telemetry = None
    slo = None
    if observe:
        registry, _collector = obs.enable()
    try:
        if telemetry_on:
            telemetry = _start_telemetry(args)
        print(f"building world: {args.domains} domains, seed {args.seed} ...")
        world = WebEcosystem.build(
            EcosystemConfig(domain_count=args.domains, seed=args.seed)
        )
        study = MeasurementStudy.from_ecosystem(world)
        config = (
            RunConfig(cache=CacheConfig(args.cache_dir))
            if args.cache_dir
            else None
        )
        continuous = ContinuousStudy(study, config)
        if observe:
            slo = obs.SLOTracker()
            continuous.attach(TelemetrySink(
                slo=slo,
                health=telemetry.health if telemetry else None,
            ))
        started = time.time()
        baseline = continuous.baseline()
        print(
            f"  baseline: {len(baseline)} domains "
            f"in {time.time() - started:.1f}s"
        )
        if telemetry is not None:
            _stamp_health(telemetry.health, study, config, args)
        mode = "cache" if args.cache_dir else "heuristic"
        for campaign in range(1, args.campaigns + 1):
            moved = world.rehost(args.churn, generation=campaign)
            started = time.time()
            result, stats = continuous.refresh()
            print(
                f"  campaign {campaign} ({mode}): {len(moved)} re-hosted, "
                f"{stats.total_queries} queries, "
                f"{stats.total_carried} carried over "
                f"({stats.saving_fraction:.1%} saved) "
                f"in {time.time() - started:.1f}s"
            )
            if args.cache_dir:
                s = result.statistics
                invalidated = sum(s.cache_invalidated_by_stage.values())
                print(
                    f"    cache: {s.cache_hits_total} hits, "
                    f"{s.cache_misses_total} misses, "
                    f"{invalidated} artifacts invalidated"
                )
            if telemetry is not None:
                # Re-stamp: the campaign re-measured a churned world,
                # so the input digests (and freshness) moved.
                _stamp_health(telemetry.health, study, config, args)
        if slo is not None:
            slo.export(registry)
        if observe and args.metrics_out:
            size = registry.write_prometheus(args.metrics_out)
            print(f"  metrics: {args.metrics_out} ({size} bytes)")
        _finish_telemetry(telemetry, args.telemetry_linger)
        telemetry = None
    finally:
        _finish_telemetry(telemetry, 0.0)
        if observe:
            obs.disable()
    return 0


def run_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.export import (
        export_domain_summary,
        export_measurements,
        export_series,
    )
    from repro.bgp.dumps import write_dump

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    print(f"building world: {args.domains} domains, seed {args.seed} ...")
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    result = MeasurementStudy.from_ecosystem(world).run()

    rows = export_measurements(result, outdir / "pairs.csv")
    print(f"  pairs.csv: {rows} rows")
    rows = export_domain_summary(result, outdir / "domains.csv")
    print(f"  domains.csv: {rows} rows")
    fig2 = figure2_rpki_outcome(result)
    fig4 = figure4_rpki_cdn(result)
    rows = export_series(
        [figure1_www_overlap(result), *fig2.values(), *fig4.values()],
        outdir / "series.csv",
    )
    print(f"  series.csv: {rows} rows")
    rows = write_dump(world.table_dump, outdir / "table.dump")
    print(f"  table.dump: {rows} rows (RIS-style)")
    return 0


def run_audit(args: argparse.Namespace) -> int:
    from repro.core.transparency import audit_domain, render_report

    print(f"building world: {args.domains} domains, seed {args.seed} ...")
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    ranks = args.rank or [1, 2, 3, 4, 5]
    for rank in ranks:
        if not 1 <= rank <= len(world.ranking):
            print(f"rank {rank} out of range, skipping")
            continue
        domain = world.ranking.domain_at_rank(rank)
        print()
        print(render_report(audit_domain(world, domain.name)))
    return 0


def run_serve(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.serve import (
        LoadProfile,
        QueryService,
        ServeConfig,
        ServingIndex,
        generate_load,
        parse_script,
        summarize_responses,
    )

    telemetry_on = args.telemetry_port is not None
    observe = bool(args.metrics_out or telemetry_on)
    registry = None
    telemetry = None
    slo = None
    if observe:
        registry, _collector = obs.enable()
    try:
        if telemetry_on:
            telemetry = _start_telemetry(args)
        print(f"building world: {args.domains} domains, seed {args.seed} ...")
        world = WebEcosystem.build(
            EcosystemConfig(domain_count=args.domains, seed=args.seed)
        )
        study = MeasurementStudy.from_ecosystem(world)
        started = time.time()
        if args.cache_dir:
            index = ServingIndex.from_cache(args.cache_dir, study)
            state = "warm" if index.warm else "cold"
            print(
                f"  index from cache ({args.cache_dir}, {state}) "
                f"in {time.time() - started:.1f}s: {index!r}"
            )
        else:
            result = study.run()
            index = ServingIndex.build(study, result)
            print(f"  index built in {time.time() - started:.1f}s: {index!r}")
        if telemetry is not None:
            from repro.cache.fingerprint import config_fingerprint

            health = telemetry.health
            health.set_digests({
                **index.digests,
                "config": config_fingerprint(None),
            })
            health.set_detail(
                domains=args.domains, seed=args.seed, source=index.source
            )
            health.set_staleness(lambda: index.stale_against(study))
            health.mark_refresh()

        if args.script:
            with open(args.script) as handle:
                queries = parse_script(handle.read())
            print(f"  script: {args.script} ({len(queries)} queries)")
        else:
            profile = LoadProfile(
                queries=args.queries,
                seed=args.load_seed if args.load_seed is not None
                else args.seed,
                zipf_exponent=args.zipf,
            )
            queries = generate_load(index, profile)
            print(
                f"  load: {len(queries)} queries "
                f"(zipf {args.zipf}, seed {profile.seed})"
            )

        faults = None
        if args.fault_profile:
            faults = FaultPlan.from_profile(args.fault_profile, seed=args.seed)
        if observe:
            slo = obs.SLOTracker()
        service = QueryService(index, ServeConfig(
            workers=args.workers,
            mode=args.serve_mode,
            batch_size=args.batch_size,
            faults=faults,
            simulated_io_s=args.io_wait,
            slo=slo,
        ))
        started = time.time()
        responses = service.run(queries)
        elapsed = time.time() - started
        summary = summarize_responses(responses, elapsed)
        mode = service.config.resolved_mode
        label = f" ({args.workers} workers)" if mode == "thread" else ""
        print(f"  served in {elapsed:.2f}s, {mode} dispatch{label}")
        print(f"\n== Query service ({len(queries)} queries) ==")
        print(obs.serve_report(summary))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(summary, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"  summary: {args.json}")
        if slo is not None:
            slo.export(registry)
        if observe and args.metrics_out:
            size = registry.write_prometheus(args.metrics_out)
            print(f"  metrics: {args.metrics_out} ({size} bytes)")
        _finish_telemetry(telemetry, args.telemetry_linger)
        telemetry = None
    finally:
        _finish_telemetry(telemetry, 0.0)
        if observe:
            obs.disable()
    return 0


def run_rtrd(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.cache.fingerprint import vrp_digest, vrp_items
    from repro.rtrd import (
        ChurnProfile,
        RTRDaemon,
        RtrdConfig,
        SyntheticVRPWorld,
        run_churn,
        summarize_publishes,
    )

    telemetry_on = args.telemetry_port is not None
    observe = bool(args.metrics_out or telemetry_on)
    registry = None
    telemetry = None
    slo = None
    if observe:
        registry, _collector = obs.enable()
    try:
        if telemetry_on:
            telemetry = _start_telemetry(args)
        print(
            f"building VRP world: {args.vrps} VRPs, seed {args.seed} ..."
        )
        world = SyntheticVRPWorld(args.vrps, seed=args.seed)
        if observe:
            slo = obs.SLOTracker()
        daemon = RTRDaemon(RtrdConfig(
            workers=args.workers,
            mode=args.rtrd_mode,
            batch_size=args.batch_size,
            history_limit=args.history,
        ))
        daemon.attach_telemetry(
            slo=slo,
            health=telemetry.health if telemetry is not None else None,
        )
        if telemetry is not None:
            health = telemetry.health
            health.set_detail(
                vrps=args.vrps, seed=args.seed, sessions=args.sessions
            )
            health.set_staleness(lambda: not daemon.converged)
        started = time.time()
        daemon.publish(world.vrps())
        daemon.connect_many(args.sessions)
        print(
            f"  {len(daemon.manager.synchronized())}/{args.sessions} "
            f"sessions synchronized at serial {daemon.serial}"
        )
        profile = ChurnProfile(
            rounds=args.rounds,
            target_sessions=args.sessions,
            disconnect=args.disconnect,
            lag=args.lag,
            garbage=args.garbage,
            world_changes=args.world_changes,
            seed=args.seed,
        )
        churn = run_churn(daemon, world, profile)
        elapsed = time.time() - started
        if telemetry is not None:
            telemetry.health.set_digests(
                {"vrps": vrp_digest(vrp_items(daemon.vrps()))}
            )
        mode = daemon.config.resolved_mode
        label = f" ({args.workers} workers)" if mode == "thread" else ""
        print(
            f"  {churn.rounds} churn rounds in {elapsed:.2f}s, "
            f"{mode} dispatch{label}"
        )
        summary = summarize_publishes(daemon, elapsed)
        summary["churn"] = {
            "connects": churn.connects,
            "disconnects": churn.disconnects,
            "revives": churn.revives,
            "garbage_frames": churn.garbage_frames,
            "lag_assignments": churn.lag_assignments,
            "diverged": churn.diverged,
            "converged": churn.converged,
        }
        print(f"\n== RTR daemon ({len(daemon.manager)} sessions) ==")
        print(obs.rtrd_report(summary))
        if churn.diverged:
            print(f"  DIVERGED: {churn.diverged} router tables differ")
        else:
            print(
                "  all surviving router tables identical to the "
                "cache snapshot"
            )
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(summary, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"  summary: {args.json}")
        if slo is not None:
            slo.export(registry)
        if observe and args.metrics_out:
            size = registry.write_prometheus(args.metrics_out)
            print(f"  metrics: {args.metrics_out} ({size} bytes)")
        _finish_telemetry(telemetry, args.telemetry_linger)
        telemetry = None
        if churn.diverged:
            return 1
    finally:
        _finish_telemetry(telemetry, 0.0)
        if observe:
            obs.disable()
    return 0


def run_world(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro import obs
    from repro.rtrd import RTRDaemon
    from repro.world import WorldConfig, WorldEngine, WorldSink

    telemetry_on = args.telemetry_port is not None
    observe = bool(args.metrics_out or telemetry_on)
    registry = None
    telemetry = None
    slo = None
    if observe:
        registry, _collector = obs.enable()
    try:
        if telemetry_on:
            telemetry = _start_telemetry(args)
        print(f"building world: {args.domains} domains, seed {args.seed} ...")
        world = WebEcosystem.build(
            EcosystemConfig(domain_count=args.domains, seed=args.seed)
        )
        engine = WorldEngine.from_ecosystem(
            world,
            WorldConfig(
                profile=args.profile, seed=args.seed, grace=args.grace
            ),
        )
        print(
            f"  {len(engine.authorities())} certificate authorities, "
            f"{len(engine.payloads)} VRPs at step 0 "
            f"({args.profile!r} profile)"
        )
        study = MeasurementStudy.from_ecosystem(world)
        faults = None
        if args.fault_profile:
            faults = FaultPlan.from_profile(args.fault_profile, seed=args.seed)
        cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="ripki-world-")
        config = RunConfig(
            workers=args.workers,
            mode=args.exec_mode,
            shard_size=args.shard_size,
            retry=RetryPolicy(
                max_attempts=args.retries, backoff_base=args.retry_backoff
            ),
            faults=faults,
            cache=CacheConfig(cache_dir),
            job_deadline_s=getattr(args, "job_deadline", None),
        )
        continuous = ContinuousStudy(study, config)
        daemon = RTRDaemon()
        world_sink = WorldSink(engine)
        rtr_sink = RtrSink(daemon)
        sinks = [world_sink, rtr_sink]
        if observe:
            slo = obs.SLOTracker()
            sinks.append(TelemetrySink(
                slo=slo,
                health=telemetry.health if telemetry else None,
            ))
        continuous.attach(*sinks)
        started = time.time()
        baseline = continuous.baseline()
        print(
            f"  baseline: {len(baseline)} domains, "
            f"{rtr_sink.publishes[-1].announced} VRPs announced to RTR "
            f"in {time.time() - started:.1f}s"
        )
        invalidated_total = 0
        deltas_total = 0
        for index in range(1, args.steps + 1):
            result, stats = continuous.refresh()
            step = world_sink.steps[-1]
            s = result.statistics
            invalidated = sum(s.cache_invalidated_by_stage.values())
            invalidated_total += invalidated
            publish = rtr_sink.publishes[-1]
            deltas_total += publish.announced + publish.withdrawn
            events = ", ".join(
                f"{event.kind}({event.subject})"
                for event in step.events
                if event.subject != "world"
            ) or "quiet"
            print(
                f"  step {index}: {step.observation.total_vrps} VRPs "
                f"({step.vrps_added:+d}/-{step.vrps_removed}), "
                f"{step.observation.stale_points} stale / "
                f"{step.observation.dropped_points} dropped points, "
                f"{invalidated} artifacts invalidated, "
                f"rtr serial {publish.serial} "
                f"(+{publish.announced}/-{publish.withdrawn})"
            )
            print(f"    events: {events}")
        summary = engine.summary()
        print(f"\n== World ({args.steps} steps, {args.profile!r}) ==")
        print(obs.world_report(summary.to_dict()))
        print(
            f"cache artifacts invalidated: {invalidated_total}; "
            f"RTR delta entries pushed: {deltas_total}"
        )
        if args.json:
            payload = {
                "summary": summary.to_dict(),
                "invalidated_artifacts": invalidated_total,
                "rtr_delta_entries": deltas_total,
                "ledger": engine.ledger.to_rows(),
            }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"  summary: {args.json}")
        if slo is not None:
            slo.export(registry)
        if observe and args.metrics_out:
            size = registry.write_prometheus(args.metrics_out)
            print(f"  metrics: {args.metrics_out} ({size} bytes)")
        _finish_telemetry(telemetry, args.telemetry_linger)
        telemetry = None
    finally:
        _finish_telemetry(telemetry, 0.0)
        if observe:
            obs.disable()
    return 0


def run_rov(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.rov import (
        ExperimentSpec,
        RovExperimentRunner,
        WhatIfEngine,
        future_census,
        named_futures,
        sample_futures,
        seeded_enforcers,
    )

    json_to_stdout = args.json == "-"
    out = sys.stderr if json_to_stdout else sys.stdout

    def say(*parts) -> None:
        print(*parts, file=out)

    telemetry_on = args.telemetry_port is not None
    observe = bool(args.metrics_out or telemetry_on)
    registry = None
    telemetry = None
    if observe:
        registry, _collector = obs.enable()
    try:
        if telemetry_on:
            telemetry = _start_telemetry(args)
        say(f"building ecosystem: {args.domains} domains, "
            f"seed {args.seed} ...")
        world = WebEcosystem.build(
            EcosystemConfig(domain_count=args.domains, seed=args.seed)
        )
        topology = world.topology
        as_count = len(list(topology.asns()))
        enforcing = seeded_enforcers(
            topology, seed=args.seed, scale=args.enforce_scale
        )
        spec = ExperimentSpec(
            rounds=args.rounds, vantage_count=args.vantages, seed=args.seed
        )
        runner = RovExperimentRunner(topology, enforcing, spec)
        started = time.time()
        report = runner.run(mode=args.exec_mode, workers=args.workers)
        say(f"  campaign: {spec.rounds} rounds x {spec.vantage_count} "
            f"vantages over {as_count} ASes "
            f"({len(enforcing)} truly enforcing) "
            f"in {time.time() - started:.1f}s")
        say(f"  snippet: {report.snippet_line(enforcing)} "
            f"(vantage obs|non-rov|candidates|enforcers|false positives)")

        futures = named_futures(world)
        if args.futures > 0:
            futures += sample_futures(world, args.futures, seed=args.seed)
        engine = WhatIfEngine(
            world, hijack_samples=args.samples, seed=args.seed
        )
        started = time.time()
        deltas = engine.run_futures(
            futures, mode=args.exec_mode, workers=args.workers
        )
        say(f"  what-if: {len(deltas)} futures x "
            f"{args.samples} hijack replays in {time.time() - started:.1f}s")

        summary = {
            "seed": args.seed,
            "domains": args.domains,
            "ases": as_count,
            "true_enforcing": len(enforcing),
            "experiment": report.to_dict(),
            "baseline": engine.baseline().to_dict(),
            "futures": [delta.to_dict() for delta in deltas],
            "census": future_census(futures),
        }
        say(f"\n== ROV ({as_count} ASes, {len(deltas)} futures) ==")
        say(obs.rov_report(summary))
        if args.json:
            if json_to_stdout:
                json.dump(summary, sys.stdout, indent=1, sort_keys=True)
                sys.stdout.write("\n")
            else:
                with open(args.json, "w") as handle:
                    json.dump(summary, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                say(f"  summary: {args.json}")
        if observe and args.metrics_out:
            size = registry.write_prometheus(args.metrics_out)
            say(f"  metrics: {args.metrics_out} ({size} bytes)")
        _finish_telemetry(telemetry, args.telemetry_linger)
        telemetry = None
    finally:
        _finish_telemetry(telemetry, 0.0)
        if observe:
            obs.disable()
    return 0


def run_worker(args: argparse.Namespace) -> int:
    """``ripki worker``: the stdio side of the framed job protocol.

    Frames own stdout, so all human-readable chatter goes to stderr.
    A driving scheduler on the other end of the pipe compares the
    hello frame's digests with its own before dispatching; a job
    whose digests still mismatch is refused with a typed error frame.
    """
    from repro.exec.worker import serve_stdio

    print(
        f"building world: {args.domains} domains, seed {args.seed} ...",
        file=sys.stderr,
    )
    world = WebEcosystem.build(
        EcosystemConfig(domain_count=args.domains, seed=args.seed)
    )
    faults = None
    if args.fault_profile:
        faults = FaultPlan.from_profile(args.fault_profile, seed=args.seed)
    config = RunConfig(
        retry=RetryPolicy(
            max_attempts=args.retries, backoff_base=args.retry_backoff
        ),
        faults=faults,
    )
    study = MeasurementStudy.from_ecosystem(world)
    print(
        f"worker {args.worker_id}: serving job frames on stdio",
        file=sys.stderr,
    )
    answered = serve_stdio(study, config, worker_id=args.worker_id)
    print(f"worker {args.worker_id}: {answered} jobs answered",
          file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return run_study(args)
    if args.command == "refresh":
        return run_refresh(args)
    if args.command == "export":
        return run_export(args)
    if args.command == "audit":
        return run_audit(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "rtrd":
        return run_rtrd(args)
    if args.command == "world":
        return run_world(args)
    if args.command == "rov":
        return run_rov(args)
    if args.command == "worker":
        return run_worker(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
