"""The paper's contribution: the four-step measurement methodology.

Section 3 of the paper:

1. select websites (the ranked top list),
2. map domain names (www and w/o-www forms) to IP addresses via
   public DNS resolvers, excluding IANA special-purpose addresses,
3. map the addresses to all covering prefixes and origin ASes using
   route-collector table dumps (AS_SET origins excluded),
4. validate every prefix/origin pair against the cryptographically
   validated ROA set of all five trust anchors.

Plus the Section 4 analyses: CNAME-chain CDN detection, per-domain
coverage probabilities, rank binning, CDN AS keyword spotting, and
the report generators for every figure and table.
"""

from repro.core.cdn_asns import CDNASReport, spot_cdn_ases
from repro.core.cdn_detection import ChainHeuristic
from repro.core.continuous import (
    CampaignSink,
    ContinuousStudy,
    RtrSink,
    TelemetrySink,
    compare_results,
)
from repro.core.exposure import ExposureReport, analyse_exposure
from repro.core.pipeline import (
    CacheConfig,
    MeasurementStudy,
    RunConfig,
    StudyResult,
    StudyStatistics,
)
from repro.core.resilience import ResilientFunnel
from repro.core.transparency import TransparencyReport, audit_domain
from repro.core.records import DomainMeasurement, NameMeasurement, PrefixOriginPair
from repro.core.reports import (
    cdn_as_report,
    figure1_www_overlap,
    figure2_rpki_outcome,
    figure3_cdn_popularity,
    figure4_rpki_cdn,
    pipeline_statistics,
    table1_top_covered,
)

__all__ = [
    "CDNASReport",
    "CacheConfig",
    "CampaignSink",
    "ChainHeuristic",
    "ContinuousStudy",
    "DomainMeasurement",
    "ExposureReport",
    "MeasurementStudy",
    "NameMeasurement",
    "PrefixOriginPair",
    "ResilientFunnel",
    "RtrSink",
    "RunConfig",
    "StudyResult",
    "StudyStatistics",
    "TelemetrySink",
    "TransparencyReport",
    "analyse_exposure",
    "audit_domain",
    "compare_results",
    "cdn_as_report",
    "figure1_www_overlap",
    "figure2_rpki_outcome",
    "figure3_cdn_popularity",
    "figure4_rpki_cdn",
    "pipeline_statistics",
    "spot_cdn_ases",
    "table1_top_covered",
]
