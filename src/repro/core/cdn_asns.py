"""Section 4.2 — keyword spotting of CDN ASes and their RPKI objects.

"To derive the AS numbers of these CDNs, we apply keyword spotting on
common AS assignment lists."  The report then searches the RPKI for
attestation objects belonging to those ASes; the paper finds 199 CDN
ASes, exactly four RPKI prefixes — all Internap's — tied to three
origin ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.net import ASN, Prefix
from repro.rpki import ValidatedPayloads
from repro.web.cdn import CDN_CATALOGUE, CDNOperator


def spot_cdn_ases(
    assignment_list: Sequence[Tuple[ASN, str, str]],
    operators: Iterable[CDNOperator] = CDN_CATALOGUE,
) -> Dict[str, List[ASN]]:
    """Keyword spotting over (ASN, registry name, organisation) rows.

    Returns operator name -> list of spotted ASes.  This mirrors the
    paper's lower-bound approach: an AS is attributed to a CDN when
    the CDN's name appears in its registry strings.
    """
    keywords = {operator.keyword(): operator.name for operator in operators}
    spotted: Dict[str, List[ASN]] = {name: [] for name in keywords.values()}
    for asn, registry_name, organisation in assignment_list:
        haystack = f"{registry_name} {organisation}".upper()
        for keyword, operator_name in keywords.items():
            if keyword in haystack:
                spotted[operator_name].append(asn)
                break
    return spotted


@dataclass
class CDNASReport:
    """The in-text numbers of Section 4.2."""

    ases_per_operator: Dict[str, List[ASN]] = field(default_factory=dict)
    rpki_prefixes: List[Prefix] = field(default_factory=list)
    rpki_origin_ases: Set[ASN] = field(default_factory=set)
    operators_with_rpki: Set[str] = field(default_factory=set)

    @property
    def total_cdn_ases(self) -> int:
        return sum(len(ases) for ases in self.ases_per_operator.values())

    @property
    def rpki_entry_count(self) -> int:
        return len(self.rpki_prefixes)

    def summary(self) -> str:
        operators = ", ".join(sorted(self.operators_with_rpki)) or "none"
        return (
            f"{self.total_cdn_ases} CDN ASes spotted; "
            f"{self.rpki_entry_count} RPKI entries tied to "
            f"{len(self.rpki_origin_ases)} origin ASes (operators: {operators})"
        )


def build_cdn_as_report(
    assignment_list: Sequence[Tuple[ASN, str, str]],
    payloads: ValidatedPayloads,
    operators: Iterable[CDNOperator] = CDN_CATALOGUE,
) -> CDNASReport:
    """Spot CDN ASes and search the validated ROA set for them."""
    report = CDNASReport(
        ases_per_operator=spot_cdn_ases(assignment_list, operators)
    )
    asn_to_operator: Dict[ASN, str] = {}
    for operator_name, ases in report.ases_per_operator.items():
        for asn in ases:
            asn_to_operator[asn] = operator_name
    for vrp in payloads:
        operator_name = asn_to_operator.get(vrp.asn)
        if operator_name is not None:
            report.rpki_prefixes.append(vrp.prefix)
            report.rpki_origin_ases.add(vrp.asn)
            report.operators_with_rpki.add(operator_name)
    return report
