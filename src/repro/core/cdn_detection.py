"""CDN detection via CNAME chains (Section 4.3).

"We say a domain is served by a CDN, if the IP address of its domain
name is indirectly accessed via two or more CNAMEs."  The heuristic
is deliberately conservative: single-CNAME CDN deployments are missed,
which is why the paper cross-checks against HTTPArchive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.records import DomainMeasurement

DEFAULT_MIN_CNAMES = 2


@dataclass(frozen=True)
class ChainHeuristic:
    """The chain-length CDN classifier with a tunable threshold."""

    min_cnames: int = DEFAULT_MIN_CNAMES

    def is_cdn(self, measurement: DomainMeasurement) -> bool:
        return measurement.is_cdn(self.min_cnames)

    def classify_all(
        self, measurements: Iterable[DomainMeasurement]
    ) -> Dict[str, bool]:
        return {
            m.domain.name: self.is_cdn(m)
            for m in measurements
        }

    def agreement(
        self,
        measurements: Iterable[DomainMeasurement],
        reference: Dict[str, str],
    ) -> Dict[str, int]:
        """Confusion counts against a reference classification.

        ``reference`` maps domain name -> CDN operator for domains the
        reference (e.g. HTTPArchive) deems CDN-served.
        """
        counts = {"both": 0, "chain_only": 0, "reference_only": 0, "neither": 0}
        for measurement in measurements:
            chain = self.is_cdn(measurement)
            ref = measurement.domain.name in reference
            if chain and ref:
                counts["both"] += 1
            elif chain:
                counts["chain_only"] += 1
            elif ref:
                counts["reference_only"] += 1
            else:
                counts["neither"] += 1
        return counts
