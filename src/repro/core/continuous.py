"""Continuous measurement acceleration (Figure 1's side observation).

"As a side observation, in future work it should be explored how this
fact [www and w/o-www mostly share prefixes] can help accelerate
continuous DNS measurements."

:class:`ContinuousStudy` implements that idea: after a full baseline
campaign, each refresh re-resolves only the apex (w/o-www) form of
every domain and re-measures the ``www`` form *only* when

* the apex answer changed since the last campaign, or
* the two forms disagreed last time (no equality to exploit), or
* the previous www measurement was unusable.

For the >90% of domains whose forms agree and whose hosting did not
move, the previous www measurement is carried over — roughly halving
the query volume of a steady-state campaign.  The price is bounded
staleness, which :func:`compare_results` quantifies against a full
re-run.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.pipeline import (
    MeasurementStudy,
    RunConfig,
    StudyResult,
    StudyStatistics,
)
from repro.core.records import DomainMeasurement, NameMeasurement
from repro.obs.runtime import metrics

# The refresh loop's own objective name in an attached SLO tracker.
REFRESH_SLO = "refresh"

REFRESH_QUERIES_METRIC = "ripki_refresh_queries_total"
REFRESH_CARRYOVER_METRIC = "ripki_refresh_carryover_total"
_REFRESH_HELP = {
    REFRESH_QUERIES_METRIC:
        "Name forms actually re-measured by refresh campaigns",
    REFRESH_CARRYOVER_METRIC:
        "Name forms served from the previous campaign or the cache",
}


@dataclass
class RefreshStats:
    """Work accounting for one refresh campaign.

    The www/apex equality heuristic only ever skips ``www`` forms, so
    ``apex_carried_over`` stays zero on heuristic refreshes; the
    snapshot cache (``RunConfig.cache``) also serves unchanged apex
    forms, and cache-backed refreshes count those here.
    """

    apex_measured: int = 0
    www_measured: int = 0
    www_carried_over: int = 0
    apex_carried_over: int = 0

    @property
    def total_queries(self) -> int:
        return self.apex_measured + self.www_measured

    @property
    def total_carried(self) -> int:
        return self.www_carried_over + self.apex_carried_over

    @property
    def saving_fraction(self) -> float:
        """Fraction of this campaign's name forms served without a query.

        Equals the legacy ``1 - total_queries / (2 * apex_measured)``
        on heuristic refreshes (where every apex is re-measured and
        every skipped form is a www), and extends to cache-backed
        refreshes where apex forms can be carried over too.
        """
        forms = self.total_queries + self.total_carried
        if forms == 0:
            return 0.0
        return 1.0 - self.total_queries / forms

    def to_metrics(self, registry) -> None:
        """Tick this campaign's work into ``registry``'s counters."""
        registry.counter(
            REFRESH_QUERIES_METRIC, _REFRESH_HELP[REFRESH_QUERIES_METRIC]
        ).inc(self.total_queries)
        registry.counter(
            REFRESH_CARRYOVER_METRIC, _REFRESH_HELP[REFRESH_CARRYOVER_METRIC]
        ).inc(self.total_carried)


@dataclass
class StalenessReport:
    """Divergence of an incremental result from a full re-run."""

    compared: int = 0
    stale_domains: List[str] = field(default_factory=list)

    @property
    def stale_fraction(self) -> float:
        if not self.compared:
            return 0.0
        return len(self.stale_domains) / self.compared


def _apex_fingerprint(measurement: NameMeasurement) -> Tuple:
    return (
        measurement.resolved,
        tuple(sorted(str(a) for a in measurement.addresses)),
    )


class CampaignSink:
    """Observer protocol for :meth:`ContinuousStudy.attach`.

    A sink rides the campaign loop: ``on_attach`` fires once when the
    sink is attached, ``before_campaign`` fires before each baseline
    or refresh starts measuring (this is where a sink may mutate the
    study's inputs — :class:`~repro.world.WorldSink` advances the CA
    world here), and ``on_campaign`` fires after each completed
    campaign.  The base class is all no-ops so sinks override only
    what they need.
    """

    def on_attach(self, continuous: "ContinuousStudy") -> None:
        """Called once, when attached."""

    def before_campaign(
        self, continuous: "ContinuousStudy", campaign_index: int
    ) -> None:
        """Called before campaign ``campaign_index`` (0 = baseline)."""

    def on_campaign(
        self,
        continuous: "ContinuousStudy",
        result: StudyResult,
        elapsed_s: float,
        campaigns: int,
    ) -> None:
        """Called after every completed baseline or refresh."""


class TelemetrySink(CampaignSink):
    """Wires the campaign loop into the live telemetry plane.

    ``slo`` (an :class:`~repro.obs.window.SLOTracker`) gets a
    ``refresh`` latency objective — each campaign's wall time is one
    event, good when it met ``refresh_deadline_s`` — so the exported
    error-budget gauge answers "how often is this loop falling behind
    the world".  ``health`` (an :class:`~repro.obs.http.HealthSource`)
    is stamped after every campaign, which is what drives ``/health``'s
    ``last_refresh_age_s`` and ``/ready``.  An injected ``clock``
    makes campaign durations (and therefore the SLO windows)
    deterministic under virtual time.
    """

    def __init__(
        self,
        slo=None,
        health=None,
        clock: Optional[Callable[[], float]] = None,
        refresh_deadline_s: float = 60.0,
    ):
        self._slo = slo
        self._health = health
        self._clock = clock
        self.refresh_deadline_s = refresh_deadline_s

    def on_attach(self, continuous: "ContinuousStudy") -> None:
        if self._clock is not None:
            continuous.set_clock(self._clock)
        if self._slo is not None:
            self._slo.declare(
                REFRESH_SLO,
                threshold_s=self.refresh_deadline_s,
                target=0.95,
            )

    def on_campaign(
        self,
        continuous: "ContinuousStudy",
        result: StudyResult,
        elapsed_s: float,
        campaigns: int,
    ) -> None:
        if self._slo is not None:
            self._slo.observe(
                REFRESH_SLO,
                elapsed_s,
                ok=elapsed_s <= self.refresh_deadline_s,
            )
        if self._health is not None:
            self._health.mark_refresh()
            self._health.set_detail(campaigns=campaigns)


class RtrSink(CampaignSink):
    """Feeds each campaign's validated payloads to an RTR daemon.

    After every completed baseline or refresh, ``daemon`` (an
    :class:`~repro.rtrd.daemon.RTRDaemon`) republishes the study's VRP
    set to its connected routers.  A campaign that re-derives an
    unchanged world is a wire no-op: the hardened cache keeps its
    serial and no router is notified.  The per-publish
    :class:`~repro.rtrd.daemon.PublishStats` are collected on
    ``publishes`` for reporting.
    """

    def __init__(self, daemon):
        self._daemon = daemon
        self.publishes: List = []

    @property
    def daemon(self):
        return self._daemon

    def on_campaign(
        self,
        continuous: "ContinuousStudy",
        result: StudyResult,
        elapsed_s: float,
        campaigns: int,
    ) -> None:
        self.publishes.append(self._daemon.publish(continuous.study.payloads))


# Deprecated attach_* shims warn once per name per process; tests
# reset this through _reset_deprecation_warnings() to pin the
# exactly-once behaviour regardless of execution order.
_WARNED_DEPRECATED: Set[str] = set()


def _reset_deprecation_warnings() -> None:
    _WARNED_DEPRECATED.clear()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _WARNED_DEPRECATED:
        return
    _WARNED_DEPRECATED.add(name)
    warnings.warn(
        f"ContinuousStudy.{name}() is deprecated; use "
        f"ContinuousStudy.attach({replacement})",
        DeprecationWarning,
        stacklevel=3,
    )


class ContinuousStudy:
    """A repeatable campaign over one study configuration.

    With a plain config the refresh uses the paper's www/apex equality
    heuristic (bounded staleness, roughly halved query volume).  With
    a cache-carrying :class:`~repro.core.pipeline.RunConfig` the
    refresh instead runs the study through the snapshot cache: every
    form whose inputs are unchanged is carried over *exactly* (no
    staleness), and the refresh accounting is derived from the cache
    hit/miss counters.

    Side effects compose through :meth:`attach`: pass any number of
    :class:`CampaignSink` objects (:class:`TelemetrySink`,
    :class:`RtrSink`, :class:`~repro.world.WorldSink`, or your own)
    and each baseline/refresh notifies them in attachment order.
    """

    def __init__(
        self, study: MeasurementStudy, config: Optional[RunConfig] = None
    ):
        self._study = study
        self._config = config
        self._previous: Optional[StudyResult] = None
        self._sinks: List[CampaignSink] = []
        self._telemetry_clock: Callable[[], float] = time.perf_counter
        self._last_refresh_at: Optional[float] = None
        self._campaigns = 0

    @property
    def study(self) -> MeasurementStudy:
        """The underlying study (sinks read/replace its inputs)."""
        return self._study

    @property
    def config(self) -> Optional[RunConfig]:
        return self._config

    @property
    def sinks(self) -> Tuple[CampaignSink, ...]:
        return tuple(self._sinks)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Replace the campaign wall clock (virtual time in tests)."""
        self._telemetry_clock = clock

    def attach(self, *sinks: CampaignSink) -> "ContinuousStudy":
        """Attach campaign sinks; returns ``self`` to chain.

        Sinks are notified in attachment order on every baseline and
        refresh; see :class:`CampaignSink` for the hook points.
        """
        for sink in sinks:
            sink.on_attach(self)
            self._sinks.append(sink)
        return self

    def attach_telemetry(
        self,
        slo=None,
        health=None,
        clock: Optional[Callable[[], float]] = None,
        refresh_deadline_s: float = 60.0,
    ) -> "ContinuousStudy":
        """Deprecated: use ``attach(TelemetrySink(...))``."""
        _warn_deprecated("attach_telemetry", "TelemetrySink(...)")
        return self.attach(
            TelemetrySink(
                slo=slo,
                health=health,
                clock=clock,
                refresh_deadline_s=refresh_deadline_s,
            )
        )

    def attach_rtr(self, daemon) -> "ContinuousStudy":
        """Deprecated: use ``attach(RtrSink(daemon))``."""
        _warn_deprecated("attach_rtr", "RtrSink(daemon)")
        return self.attach(RtrSink(daemon))

    @property
    def last_refresh_age_s(self) -> Optional[float]:
        """Seconds since the last completed campaign (None before
        the baseline)."""
        if self._last_refresh_at is None:
            return None
        return self._telemetry_clock() - self._last_refresh_at

    def _record_campaign(
        self, result: StudyResult, elapsed: float, campaigns: int
    ) -> None:
        self._last_refresh_at = self._telemetry_clock()
        for sink in self._sinks:
            sink.on_campaign(self, result, elapsed, campaigns)

    def baseline(self) -> StudyResult:
        """The initial full campaign (both name forms everywhere)."""
        started = self._telemetry_clock()
        for sink in self._sinks:
            sink.before_campaign(self, 0)
        if self._config is not None:
            result = self._study.run(config=self._config)
        else:
            result = self._study.run()
        self._previous = result
        self._campaigns = 1
        self._record_campaign(
            result, self._telemetry_clock() - started, self._campaigns
        )
        return result

    def refresh(self) -> Tuple[StudyResult, RefreshStats]:
        """An incremental campaign; see the class docstring for modes."""
        if self._previous is None:
            raise RuntimeError("call baseline() before refresh()")
        started = self._telemetry_clock()
        for sink in self._sinks:
            sink.before_campaign(self, self._campaigns)
        if self._config is not None and self._config.cache is not None:
            result, stats = self._cached_refresh()
        else:
            result, stats = self._heuristic_refresh()
        stats.to_metrics(metrics())
        self._previous = result
        self._campaigns += 1
        self._record_campaign(
            result, self._telemetry_clock() - started, self._campaigns
        )
        return result, stats

    def _cached_refresh(self) -> Tuple[StudyResult, RefreshStats]:
        result = self._study.run(config=self._config)
        hits = result.statistics.cache_hits_by_stage
        misses = result.statistics.cache_misses_by_stage
        stats = RefreshStats(
            apex_measured=misses.get("dns.plain", 0)
            + misses.get("form.plain", 0),
            www_measured=misses.get("dns.www", 0)
            + misses.get("form.www", 0),
            www_carried_over=hits.get("dns.www", 0)
            + hits.get("form.www", 0),
            apex_carried_over=hits.get("dns.plain", 0)
            + hits.get("form.plain", 0),
        )
        return result, stats

    def _heuristic_refresh(self) -> Tuple[StudyResult, RefreshStats]:
        stats = RefreshStats()
        measurements: List[DomainMeasurement] = []
        aggregate = StudyStatistics(domain_count=len(self._study._ranking))
        for domain in self._study._ranking:
            prior = self._previous.lookup(domain.name)
            plain = self._study._measure_form(domain.name)
            stats.apex_measured += 1
            if self._must_remeasure_www(prior, plain):
                www = self._study._measure_form(domain.www_name)
                stats.www_measured += 1
            else:
                www = prior.www
                stats.www_carried_over += 1
            measurement = DomainMeasurement(domain=domain, www=www, plain=plain)
            measurements.append(measurement)
            MeasurementStudy._accumulate(aggregate, measurement)
        return StudyResult(measurements, aggregate), stats

    @staticmethod
    def _must_remeasure_www(
        prior: Optional[DomainMeasurement], plain: NameMeasurement
    ) -> bool:
        if prior is None or not prior.www.usable:
            return True
        if _apex_fingerprint(prior.plain) != _apex_fingerprint(plain):
            return True
        overlap = prior.prefix_overlap()
        # Only domains whose forms fully agreed are safe to skip.
        return overlap is None or overlap < 1.0


def compare_results(
    incremental: StudyResult, full: StudyResult
) -> StalenessReport:
    """Count domains whose incremental www data diverges from truth."""
    report = StalenessReport()
    for measurement in incremental:
        truth = full.lookup(measurement.domain.name)
        if truth is None:
            continue
        report.compared += 1
        stale = _apex_fingerprint(measurement.www) != _apex_fingerprint(
            truth.www
        ) or set(measurement.www.pairs) != set(truth.www.pairs)
        if stale:
            report.stale_domains.append(measurement.domain.name)
    return report
