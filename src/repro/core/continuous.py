"""Continuous measurement acceleration (Figure 1's side observation).

"As a side observation, in future work it should be explored how this
fact [www and w/o-www mostly share prefixes] can help accelerate
continuous DNS measurements."

:class:`ContinuousStudy` implements that idea: after a full baseline
campaign, each refresh re-resolves only the apex (w/o-www) form of
every domain and re-measures the ``www`` form *only* when

* the apex answer changed since the last campaign, or
* the two forms disagreed last time (no equality to exploit), or
* the previous www measurement was unusable.

For the >90% of domains whose forms agree and whose hosting did not
move, the previous www measurement is carried over — roughly halving
the query volume of a steady-state campaign.  The price is bounded
staleness, which :func:`compare_results` quantifies against a full
re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import MeasurementStudy, StudyResult, StudyStatistics
from repro.core.records import DomainMeasurement, NameMeasurement


@dataclass
class RefreshStats:
    """Work accounting for one refresh campaign."""

    apex_measured: int = 0
    www_measured: int = 0
    www_carried_over: int = 0

    @property
    def total_queries(self) -> int:
        return self.apex_measured + self.www_measured

    @property
    def saving_fraction(self) -> float:
        """Query saving versus a full two-form campaign."""
        full = 2 * self.apex_measured
        if full == 0:
            return 0.0
        return 1.0 - self.total_queries / full


@dataclass
class StalenessReport:
    """Divergence of an incremental result from a full re-run."""

    compared: int = 0
    stale_domains: List[str] = field(default_factory=list)

    @property
    def stale_fraction(self) -> float:
        if not self.compared:
            return 0.0
        return len(self.stale_domains) / self.compared


def _apex_fingerprint(measurement: NameMeasurement) -> Tuple:
    return (
        measurement.resolved,
        tuple(sorted(str(a) for a in measurement.addresses)),
    )


class ContinuousStudy:
    """A repeatable campaign over one study configuration."""

    def __init__(self, study: MeasurementStudy):
        self._study = study
        self._previous: Optional[StudyResult] = None

    def baseline(self) -> StudyResult:
        """The initial full campaign (both name forms everywhere)."""
        result = self._study.run()
        self._previous = result
        return result

    def refresh(self) -> Tuple[StudyResult, RefreshStats]:
        """An incremental campaign exploiting www/apex equality."""
        if self._previous is None:
            raise RuntimeError("call baseline() before refresh()")
        stats = RefreshStats()
        measurements: List[DomainMeasurement] = []
        aggregate = StudyStatistics(domain_count=len(self._study._ranking))
        for domain in self._study._ranking:
            prior = self._previous.lookup(domain.name)
            plain = self._study._measure_form(domain.name)
            stats.apex_measured += 1
            if self._must_remeasure_www(prior, plain):
                www = self._study._measure_form(domain.www_name)
                stats.www_measured += 1
            else:
                www = prior.www
                stats.www_carried_over += 1
            measurement = DomainMeasurement(domain=domain, www=www, plain=plain)
            measurements.append(measurement)
            MeasurementStudy._accumulate(aggregate, measurement)
        result = StudyResult(measurements, aggregate)
        self._previous = result
        return result, stats

    @staticmethod
    def _must_remeasure_www(
        prior: Optional[DomainMeasurement], plain: NameMeasurement
    ) -> bool:
        if prior is None or not prior.www.usable:
            return True
        if _apex_fingerprint(prior.plain) != _apex_fingerprint(plain):
            return True
        overlap = prior.prefix_overlap()
        # Only domains whose forms fully agreed are safe to skip.
        return overlap is None or overlap < 1.0


def compare_results(
    incremental: StudyResult, full: StudyResult
) -> StalenessReport:
    """Count domains whose incremental www data diverges from truth."""
    report = StalenessReport()
    for measurement in incremental:
        truth = full.lookup(measurement.domain.name)
        if truth is None:
            continue
        report.compared += 1
        stale = _apex_fingerprint(measurement.www) != _apex_fingerprint(
            truth.www
        ) or set(measurement.www.pairs) != set(truth.www.pairs)
        if stale:
            report.stale_domains.append(measurement.domain.name)
    return report
