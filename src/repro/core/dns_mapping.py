"""Step 2 — mapping domain names to IP addresses.

Resolves both name forms through a public resolver, follows CNAME
chains, and discards answers pointing at IANA special-purpose
addresses, exactly as Section 3 prescribes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dns import PublicResolver
from repro.dns.errors import DNSError, ResolutionError
from repro.errors import TransientFault
from repro.net import Address, is_special_purpose
from repro.obs.runtime import metrics, tracer
from repro.core.records import NameMeasurement


def measure_name(resolver: PublicResolver, name: str) -> NameMeasurement:
    """Resolve one name and pre-fill the DNS part of its measurement."""
    counters = metrics()
    measurement = NameMeasurement(name=name)
    with tracer().span("stage.dns", name=name):
        counters.counter(
            "ripki_dns_resolutions_total", "Names pushed through step 2"
        ).inc()
        try:
            answer = resolver.resolve(name)
        except TransientFault:
            # Injected faults subclass DNSError but must reach the
            # retry loop instead of counting as a permanent failure.
            raise
        except (DNSError, ResolutionError):
            counters.counter(
                "ripki_dns_resolution_errors_total",
                "Step-2 resolutions ending in a DNS error",
            ).inc()
            return measurement
        measurement.cname_count = answer.cname_count
        if not answer.addresses:
            return measurement
        measurement.resolved = True
        for address in answer.addresses:
            if is_special_purpose(address):
                measurement.excluded_special += 1
            else:
                measurement.addresses.append(address)
        if measurement.excluded_special:
            counters.counter(
                "ripki_dns_special_excluded_total",
                "Answers discarded as IANA special-purpose",
            ).inc(measurement.excluded_special)
    return measurement


def cross_check(
    resolvers: List[PublicResolver], name: str
) -> Tuple[bool, List[NameMeasurement]]:
    """Resolve through several resolvers and compare the address sets.

    The paper verifies Google DNS answers against Open DNS and the
    DNS Looking Glass; CDN steering may legitimately differ, so the
    check reports agreement rather than enforcing it.
    """
    measurements = [measure_name(resolver, name) for resolver in resolvers]
    address_sets = [frozenset(m.addresses) for m in measurements if m.resolved]
    agree = len(set(address_sets)) <= 1
    return agree, measurements
