"""Section 5.2 — what the RPKI reveals about business relations.

"As soon as at least one ROA for an IP prefix exists, all valid
origin ASes for this IP prefix need to be assigned in the RPKI ...
it is very likely that the ROA information indicates a business
relation between prefix owner and authorized origin AS."  And unlike
BGP collectors, the RPKI is "a catalog which ... documents
information in advance" — backup arrangements are visible *before*
any route is ever announced.

:func:`analyse_exposure` compares the org-level relations readable
from the validated ROA set against those observable in collector
table dumps, and reports the relations only the RPKI discloses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.bgp import TableDump
from repro.net import ASN, Prefix
from repro.rpki import ValidatedPayloads

Relation = Tuple[str, str]  # (prefix owner org, authorized/origin org)


@dataclass
class ExposureReport:
    """Org-level relation visibility under RPKI vs public BGP data."""

    roa_relations: Set[Relation] = field(default_factory=set)
    bgp_relations: Set[Relation] = field(default_factory=set)

    @property
    def rpki_only(self) -> Set[Relation]:
        """Relations the RPKI documents that BGP never showed."""
        return self.roa_relations - self.bgp_relations

    @property
    def exposure_count(self) -> int:
        return len(self.rpki_only)

    def summary(self) -> str:
        return (
            f"{len(self.roa_relations)} org relations in ROAs, "
            f"{len(self.bgp_relations)} visible in BGP, "
            f"{self.exposure_count} exposed only by the RPKI"
        )


def analyse_exposure(world) -> ExposureReport:
    """Build the exposure report for a built ecosystem.

    A *relation* is a pair of distinct organisations (prefix owner,
    origin-AS owner).  Same-org pairs (an org authorizing its own AS)
    reveal nothing and are skipped on both sides.
    """
    report = ExposureReport()
    owner_of_prefix: Dict[Prefix, str] = {}
    owner_of_asn: Dict[ASN, str] = {}
    for org in world.organisations:
        for prefix in org.prefixes:
            owner_of_prefix[prefix] = org.name
        for asn in org.asns:
            owner_of_asn[asn] = org.name

    def relation(prefix: Prefix, asn: ASN) -> Optional[Relation]:
        owner = _covering_owner(owner_of_prefix, prefix)
        authorized = owner_of_asn.get(asn)
        if owner is None or authorized is None or owner == authorized:
            return None
        return (owner, authorized)

    for vrp in world.payloads():
        pair = relation(vrp.prefix, vrp.asn)
        if pair is not None:
            report.roa_relations.add(pair)

    for entry in world.table_dump:
        origin = entry.origin
        if origin is None:
            continue
        pair = relation(entry.prefix, origin)
        if pair is not None:
            report.bgp_relations.add(pair)

    return report


def _covering_owner(
    owner_of_prefix: Dict[Prefix, str], prefix: Prefix
) -> Optional[str]:
    """Owner of the prefix, or of the closest covering allocation."""
    if prefix in owner_of_prefix:
        return owner_of_prefix[prefix]
    for length in range(prefix.length - 1, 7, -1):
        candidate = prefix.supernet(length)
        if candidate in owner_of_prefix:
            return owner_of_prefix[candidate]
    return None
