"""The end-to-end measurement study (Section 3).

:class:`MeasurementStudy` runs steps 1–4 for every ranked domain and
returns a :class:`StudyResult` — "a comprehensive list of all Alexa
websites that (i) can be resolved from our DNS vantage point and (ii)
mapped to an IP prefix AS pair ... (iii) annotated with RPKI origin
validation outcome."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.bgp import TableDump
from repro.dns import PublicResolver
from repro.faults import DEFAULT_RETRY_POLICY, FaultPlan, RetryPolicy
from repro.obs.progress import ProgressEvent, ProgressReporter
from repro.obs.runtime import metrics, tracer
from repro.rpki import ValidatedPayloads
from repro.web.alexa import AlexaRanking, Domain
from repro.core.dns_mapping import measure_name
from repro.core.prefix_mapping import map_addresses
from repro.core.records import DomainMeasurement, NameMeasurement
from repro.core.rpki_validation import validate_pairs

# Execution backends; repro.exec re-exports this as MODES.
RUN_MODES: Tuple[str, ...] = ("auto", "serial", "thread", "process", "workers")

# Funnel counters, one metric name per StudyStatistics field.  The
# labelled entries share a metric family split by name form.
_STAT_METRICS: Dict[str, Tuple[str, Optional[Dict[str, str]]]] = {
    "domain_count": ("ripki_domains_measured_total", None),
    "invalid_dns_domains": ("ripki_invalid_dns_domains_total", None),
    "www_addresses": ("ripki_addresses_total", {"form": "www"}),
    "plain_addresses": ("ripki_addresses_total", {"form": "plain"}),
    "www_pairs": ("ripki_pairs_total", {"form": "www"}),
    "plain_pairs": ("ripki_pairs_total", {"form": "plain"}),
    "unreachable_addresses": ("ripki_unreachable_addresses_total", None),
    "as_set_exclusions": ("ripki_as_set_exclusions_total", None),
}

# Resilience counters — registered and ticked only on fault-injected
# runs, so a run without a fault plan emits byte-identical metrics to
# one predating the resilience layer.
_RESILIENCE_METRICS: Dict[str, str] = {
    "degraded_domains": "ripki_degraded_domains_total",
    "retries_total": "ripki_retries_total",
}
_FAULTS_METRIC = "ripki_faults_injected_total"

# Snapshot-cache counters — registered and ticked only on cache-backed
# runs, so a run without a cache emits byte-identical metrics to one
# predating the cache layer.  Labelled by stage key: per-stage keys
# ("dns.www", "dns.plain", "prefix", "rpki") on plain runs, form-level
# keys ("form.www", "form.plain") on fault runs, and for invalidation
# the store stages ("dns", "prefix", "rpki", "form") plus "config".
CACHE_HITS_METRIC = "ripki_cache_hits_total"
CACHE_MISSES_METRIC = "ripki_cache_misses_total"
CACHE_INVALIDATED_METRIC = "ripki_cache_invalidated_total"
_CACHE_STAT_METRICS: Dict[str, str] = {
    "cache_hits_by_stage": CACHE_HITS_METRIC,
    "cache_misses_by_stage": CACHE_MISSES_METRIC,
    "cache_invalidated_by_stage": CACHE_INVALIDATED_METRIC,
}

_STAT_HELP = {
    "ripki_domains_measured_total": "Domains pushed through the funnel",
    "ripki_invalid_dns_domains_total":
        "Domains excluded: only special-purpose answers",
    "ripki_addresses_total": "Step-2 addresses kept, by name form",
    "ripki_pairs_total": "Step-3/4 prefix-origin pairs, by name form",
    "ripki_unreachable_addresses_total":
        "Addresses with no covering prefix in the table dump",
    "ripki_as_set_exclusions_total":
        "Table rows skipped for an AS_SET origin (RFC 6472)",
    "ripki_degraded_domains_total":
        "Domains with a name form that exhausted its retry budget",
    "ripki_retries_total": "Stage retries spent across all domains",
    "ripki_faults_injected_total": "Injected faults observed, by kind",
    "ripki_cache_hits_total": "Snapshot-cache artifacts served, by stage",
    "ripki_cache_misses_total":
        "Snapshot-cache stage computations recorded, by stage",
    "ripki_cache_invalidated_total":
        "Stored artifacts dropped at session open, by stage",
}

# Stage name -> the counter that proves the stage observed work.
PIPELINE_STAGES: Dict[str, str] = {
    "rank": "ripki_domains_measured_total",
    "dns": "ripki_dns_resolutions_total",
    "prefix": "ripki_prefix_lookups_total",
    "rpki": "ripki_rpki_validations_total",
}

ProgressSink = Union[ProgressReporter, Callable[[ProgressEvent], None]]


def _register_funnel_counters(
    registry, resilient: bool = False, cached: bool = False
) -> None:
    """Create every funnel series up front so zero counts are explicit.

    The resilience counters exist only on fault-injected runs
    (``resilient=True``) and the cache counters only on cache-backed
    runs (``cached=True``); other runs keep their metric output
    unchanged.
    """
    for metric, labels in _STAT_METRICS.values():
        labelnames = tuple(labels) if labels else ()
        counter = registry.counter(metric, _STAT_HELP[metric], labelnames=labelnames)
        if labels:
            counter.labels(**labels)
    if resilient:
        for metric in _RESILIENCE_METRICS.values():
            registry.counter(metric, _STAT_HELP[metric])
        registry.counter(
            _FAULTS_METRIC, _STAT_HELP[_FAULTS_METRIC], labelnames=("kind",)
        )
    if cached:
        stage_keys = (
            ("form.www", "form.plain")
            if resilient
            else ("dns.www", "dns.plain", "prefix", "rpki")
        )
        for metric in (CACHE_HITS_METRIC, CACHE_MISSES_METRIC):
            counter = registry.counter(
                metric, _STAT_HELP[metric], labelnames=("stage",)
            )
            for stage_key in stage_keys:
                counter.labels(stage=stage_key)
        registry.counter(
            CACHE_INVALIDATED_METRIC,
            _STAT_HELP[CACHE_INVALIDATED_METRIC],
            labelnames=("stage",),
        )


@dataclass
class StudyStatistics:
    """The aggregate counters Section 4 reports in its first paragraph."""

    domain_count: int = 0
    invalid_dns_domains: int = 0      # excluded: only special-purpose answers
    www_addresses: int = 0
    plain_addresses: int = 0
    www_pairs: int = 0
    plain_pairs: int = 0
    unreachable_addresses: int = 0
    as_set_exclusions: int = 0
    # Resilience accounting (all zero/empty unless faults were injected).
    degraded_domains: int = 0         # a name form exhausted its retries
    retries_total: int = 0            # stage retries spent across domains
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    # Snapshot-cache accounting (all empty unless the run was
    # cache-backed); keyed by stage key, nonzero counts only.
    cache_hits_by_stage: Dict[str, int] = field(default_factory=dict)
    cache_misses_by_stage: Dict[str, int] = field(default_factory=dict)
    cache_invalidated_by_stage: Dict[str, int] = field(default_factory=dict)

    @property
    def total_addresses(self) -> int:
        return self.www_addresses + self.plain_addresses

    @property
    def cache_hits_total(self) -> int:
        return sum(self.cache_hits_by_stage.values())

    @property
    def cache_misses_total(self) -> int:
        return sum(self.cache_misses_by_stage.values())

    @property
    def faults_total(self) -> int:
        return sum(self.faults_by_kind.values())

    @property
    def degraded_fraction(self) -> float:
        if not self.domain_count:
            return 0.0
        return self.degraded_domains / self.domain_count

    @property
    def total_pairs(self) -> int:
        return self.www_pairs + self.plain_pairs

    @property
    def invalid_dns_fraction(self) -> float:
        if not self.domain_count:
            return 0.0
        return self.invalid_dns_domains / self.domain_count

    @property
    def unreachable_fraction(self) -> float:
        if not self.total_addresses:
            return 0.0
        return self.unreachable_addresses / self.total_addresses

    # -- metrics round-trip ------------------------------------------------

    def to_metrics(self, registry) -> None:
        """Record every counter into ``registry`` (expects fresh series).

        Resilience counters are emitted only when nonzero, so the
        metric output of a fault-free study is unchanged.
        """
        for field_name, (metric, labels) in _STAT_METRICS.items():
            labelnames = tuple(labels) if labels else ()
            counter = registry.counter(
                metric, _STAT_HELP[metric], labelnames=labelnames
            )
            if labels:
                counter = counter.labels(**labels)
            counter.inc(getattr(self, field_name))
        for field_name, metric in _RESILIENCE_METRICS.items():
            value = getattr(self, field_name)
            if value:
                registry.counter(metric, _STAT_HELP[metric]).inc(value)
        if self.faults_by_kind:
            faults = registry.counter(
                _FAULTS_METRIC, _STAT_HELP[_FAULTS_METRIC], labelnames=("kind",)
            )
            for kind, count in sorted(self.faults_by_kind.items()):
                faults.labels(kind=kind).inc(count)
        for field_name, metric in _CACHE_STAT_METRICS.items():
            mapping = getattr(self, field_name)
            if not mapping:
                continue
            counter = registry.counter(
                metric, _STAT_HELP[metric], labelnames=("stage",)
            )
            for stage_key, count in sorted(mapping.items()):
                counter.labels(stage=stage_key).inc(count)

    @classmethod
    def from_metrics(cls, registry) -> "StudyStatistics":
        """Rebuild the statistics from a registry's funnel counters."""
        stats = cls()
        for field_name, (metric, labels) in _STAT_METRICS.items():
            instrument = registry.get(metric)
            if instrument is None:
                continue
            if labels:
                instrument = instrument.labels(**labels)
            setattr(stats, field_name, int(instrument.value))
        for field_name, metric in _RESILIENCE_METRICS.items():
            instrument = registry.get(metric)
            if instrument is not None:
                setattr(stats, field_name, int(instrument.value))
        faults = registry.get(_FAULTS_METRIC)
        if faults is not None:
            for key, child in faults.series():
                if child.value:
                    stats.faults_by_kind[key[0]] = int(child.value)
        for field_name, metric in _CACHE_STAT_METRICS.items():
            instrument = registry.get(metric)
            if instrument is None:
                continue
            mapping = getattr(stats, field_name)
            for key, child in instrument.series():
                if child.value:
                    mapping[key[0]] = int(child.value)
        return stats

    def observed_stages(self, registry) -> List[str]:
        """Funnel stages whose counters recorded work in ``registry``."""
        observed = []
        for stage, metric in PIPELINE_STAGES.items():
            instrument = registry.get(metric)
            if instrument is None:
                continue
            series = instrument.series()
            if any(child.value > 0 for _key, child in series):
                observed.append(stage)
        return observed

    def consistent_with(self, registry) -> bool:
        """Sanity check: do the registry's funnel counters match us?"""
        return StudyStatistics.from_metrics(registry) == self


class StudyResult:
    """All per-domain measurements plus the aggregate statistics."""

    def __init__(
        self,
        measurements: List[DomainMeasurement],
        statistics: StudyStatistics,
    ):
        self._measurements = measurements
        self.statistics = statistics
        # Dispatch accounting from the sharded executor (a
        # repro.exec.scheduler.SchedulerReport); None on the plain
        # serial path.  Deliberately outside __eq__: how a run was
        # scheduled must never affect what it measured.
        self.scheduler_report = None
        self._by_name: Dict[str, DomainMeasurement] = {
            m.domain.name: m for m in measurements
        }

    def __eq__(self, other: object) -> bool:
        """Equal when measurements (in order) and statistics match."""
        if not isinstance(other, StudyResult):
            return NotImplemented
        return (
            self._measurements == other._measurements
            and self.statistics == other.statistics
        )

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[DomainMeasurement]:
        return iter(self._measurements)

    def by_rank(self) -> List[DomainMeasurement]:
        """Measurements ordered by rank (rank 1 first)."""
        return sorted(self._measurements, key=lambda m: m.rank)

    def rank_slice(self, first: int, last: int) -> List[DomainMeasurement]:
        """Measurements with ``first <= rank <= last``, rank-ordered."""
        if first > last:
            raise ValueError(f"empty rank slice [{first}, {last}]")
        return [m for m in self.by_rank() if first <= m.rank <= last]

    def lookup(self, name: str) -> Optional[DomainMeasurement]:
        return self._by_name.get(name)

    def usable(self) -> List[DomainMeasurement]:
        return [m for m in self._measurements if m.usable]

    def __repr__(self) -> str:
        return f"<StudyResult {len(self._measurements)} domains>"


def measure_domain(
    resolver: PublicResolver,
    table_dump: TableDump,
    payloads: ValidatedPayloads,
    domain: Domain,
) -> DomainMeasurement:
    """Steps 2-4 for one domain (both name forms).

    Module-level and free of study state so shard workers — including
    process-pool workers, which need a picklable callable — run the
    exact code path the serial loop runs.
    """
    www = _measure_form(resolver, table_dump, payloads, domain.www_name)
    plain = _measure_form(resolver, table_dump, payloads, domain.name)
    return DomainMeasurement(domain=domain, www=www, plain=plain)


def _measure_form(
    resolver: PublicResolver,
    table_dump: TableDump,
    payloads: ValidatedPayloads,
    name: str,
) -> NameMeasurement:
    measurement = measure_name(resolver, name)
    if measurement.resolved and measurement.addresses:
        pairs = map_addresses(table_dump, measurement)
        measurement.pairs = validate_pairs(payloads, pairs)
    return measurement


def accumulate_measurement(
    stats: StudyStatistics, measurement: DomainMeasurement
) -> None:
    """Fold one domain's funnel contribution into ``stats``.

    Also ticks the funnel counters of the *active* registry, so a
    shard worker running under its own scoped registry records its
    shard's share and nothing else.
    """
    counters = metrics()
    www, plain = measurement.www, measurement.plain
    resolved_forms = [form for form in (www, plain) if form.resolved]
    if resolved_forms and all(
        not form.addresses and form.excluded_special for form in resolved_forms
    ):
        stats.invalid_dns_domains += 1
        counters.counter(
            "ripki_invalid_dns_domains_total",
            _STAT_HELP["ripki_invalid_dns_domains_total"],
        ).inc()
    stats.www_addresses += len(www.addresses)
    stats.plain_addresses += len(plain.addresses)
    stats.www_pairs += len(www.pairs)
    stats.plain_pairs += len(plain.pairs)
    addresses = counters.counter(
        "ripki_addresses_total",
        _STAT_HELP["ripki_addresses_total"],
        labelnames=("form",),
    )
    pairs = counters.counter(
        "ripki_pairs_total",
        _STAT_HELP["ripki_pairs_total"],
        labelnames=("form",),
    )
    addresses.labels(form="www").inc(len(www.addresses))
    addresses.labels(form="plain").inc(len(plain.addresses))
    pairs.labels(form="www").inc(len(www.pairs))
    pairs.labels(form="plain").inc(len(plain.pairs))
    # unreachable/AS_SET counters tick live inside step 3
    # (prefix_mapping); only the plain-int stats accumulate here.
    stats.unreachable_addresses += (
        www.unreachable_addresses + plain.unreachable_addresses
    )
    stats.as_set_exclusions += www.as_set_excluded + plain.as_set_excluded
    # Resilience accounting; fault-free measurements carry all-default
    # fields and skip these counters entirely, keeping plain runs'
    # metric output unchanged.
    if measurement.degraded:
        stats.degraded_domains += 1
        counters.counter(
            "ripki_degraded_domains_total",
            _STAT_HELP["ripki_degraded_domains_total"],
        ).inc()
    retries = www.retries + plain.retries
    if retries:
        stats.retries_total += retries
        counters.counter(
            "ripki_retries_total", _STAT_HELP["ripki_retries_total"]
        ).inc(retries)
    for form in (www, plain):
        for kind, count in form.faults:
            stats.faults_by_kind[kind] = (
                stats.faults_by_kind.get(kind, 0) + count
            )
            counters.counter(
                _FAULTS_METRIC,
                _STAT_HELP[_FAULTS_METRIC],
                labelnames=("kind",),
            ).labels(kind=kind).inc(count)


@dataclass(frozen=True)
class CacheConfig:
    """Where (and whether) a run persists its snapshot cache.

    ``directory`` holds one store file (``snapshot.json``); ``save``
    set to False makes the run read-only against an existing store —
    useful for replays that must not advance the cache state.
    """

    directory: str
    save: bool = True

    def __post_init__(self):
        if not self.directory:
            raise ValueError("cache directory must be non-empty")


@dataclass(frozen=True)
class RunConfig:
    """Everything one :meth:`MeasurementStudy.run` needs, in one value.

    Built once (by the CLI or a test) and passed to ``run(config=...)``
    — the only run entry point since the per-call keyword shim was
    removed.  Frozen so a config can be shared
    between runs, shards, and worker processes without aliasing
    surprises; the progress sink is the one non-picklable field and
    is stripped before a config crosses a process boundary.
    """

    workers: int = 1
    mode: str = "auto"
    shard_size: Optional[int] = None
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    faults: Optional[FaultPlan] = None
    progress: Optional[ProgressSink] = None
    cache: Optional[CacheConfig] = None
    # Per-job deadline for the long-lived ``workers`` backend; a job
    # still unanswered after this many wall seconds is re-dispatched
    # to another worker (the straggler's late answer becomes a
    # deterministic duplicate).  None picks the scheduler default.
    job_deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mode not in RUN_MODES:
            raise ValueError(f"mode must be one of {RUN_MODES}, got {self.mode!r}")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.job_deadline_s is not None and self.job_deadline_s <= 0:
            raise ValueError("job_deadline_s must be > 0")

    @property
    def resilient(self) -> bool:
        """Fault injection (and with it the retry loop) is active."""
        return self.faults is not None

    def without_progress(self) -> "RunConfig":
        """A picklable copy for shipping to worker processes."""
        if self.progress is None:
            return self
        return RunConfig(
            workers=self.workers,
            mode=self.mode,
            shard_size=self.shard_size,
            retry=self.retry,
            faults=self.faults,
            cache=self.cache,
            job_deadline_s=self.job_deadline_s,
        )


class MeasurementStudy:
    """Configured instance of the four-step methodology."""

    def __init__(
        self,
        ranking: AlexaRanking,
        resolver: PublicResolver,
        table_dump: TableDump,
        payloads: ValidatedPayloads,
    ):
        self._ranking = ranking
        self._resolver = resolver
        self._dump = table_dump
        self._payloads = payloads

    @classmethod
    def from_ecosystem(cls, world, resolver_index: int = 0) -> "MeasurementStudy":
        """Convenience constructor over a built :class:`WebEcosystem`."""
        return cls(
            ranking=world.ranking,
            resolver=world.resolvers()[resolver_index],
            table_dump=world.table_dump,
            payloads=world.payloads(),
        )

    # The sharded executor (repro.exec) reads the study's parts to
    # plan shards and ship them to workers.
    @property
    def ranking(self) -> AlexaRanking:
        return self._ranking

    @property
    def resolver(self) -> PublicResolver:
        return self._resolver

    @property
    def table_dump(self) -> TableDump:
        return self._dump

    @property
    def payloads(self) -> ValidatedPayloads:
        return self._payloads

    def replace_payloads(self, payloads: ValidatedPayloads) -> None:
        """Swap in a new validated VRP set (the world moved).

        The next :meth:`run` validates against the new payloads; on a
        cache-backed run the VRP digest changes with them, so the
        session invalidates exactly the artifacts whose prefix/origin
        pairs are covered by the symmetric difference.
        """
        self._payloads = payloads

    def run(self, config: Optional[RunConfig] = None) -> StudyResult:
        """Execute steps 2-4 for every domain of the ranking.

        All run-shaping knobs live on the :class:`RunConfig` — the
        single entry point since the per-call keyword shim was
        removed: ``workers`` > 1 shards the ranking into contiguous
        rank chunks and fans them out through :mod:`repro.exec`,
        ``mode`` picks the execution backend, ``faults``/``retry``
        activate the resilience layer
        (:mod:`repro.core.resilience`), and ``progress`` receives
        rate/ETA events.  The result is bit-identical across backends
        for any fixed config.
        """
        if config is None:
            config = RunConfig()
        elif not isinstance(config, RunConfig):
            raise TypeError(
                "MeasurementStudy.run() takes a RunConfig; the legacy "
                "per-call keywords (and positional progress sinks) "
                "were removed — build a RunConfig and pass "
                "run(config=RunConfig(...))"
            )
        if (
            config.workers > 1
            or config.mode not in ("auto", "serial")
            or config.cache is not None
        ):
            # Cache-backed runs also route through the executor: it
            # owns the session open/adopt/save lifecycle, and a
            # one-shard serial run through it is the serial loop.
            from repro.exec import execute_study

            return execute_study(self, config=config)
        measurements: List[DomainMeasurement] = []
        stats = StudyStatistics(domain_count=len(self._ranking))
        reporter = self._make_reporter(config.progress)
        counters = metrics()
        _register_funnel_counters(counters, resilient=config.resilient)
        funnel = self.resilient_funnel(config) if config.resilient else None
        measured = counters.counter(
            "ripki_domains_measured_total",
            _STAT_HELP["ripki_domains_measured_total"],
        )
        with tracer().span("study.run", domains=len(self._ranking)):
            with tracer().span("stage.rank", domains=len(self._ranking)):
                domains = list(self._ranking)
            for domain in domains:
                if funnel is not None:
                    measurement = funnel.measure_domain(domain)
                else:
                    measurement = self.measure_domain(domain)
                measurements.append(measurement)
                accumulate_measurement(stats, measurement)
                measured.inc()
                if reporter is not None:
                    reporter.tick()
        if reporter is not None:
            reporter.done()
        return StudyResult(measurements, stats)

    def resilient_funnel(self, config: RunConfig):
        """The fault-injected funnel a resilient ``config`` demands."""
        from repro.core.resilience import ResilientFunnel

        assert config.faults is not None
        return ResilientFunnel(
            self._resolver,
            self._dump,
            self._payloads,
            faults=config.faults,
            retry=config.retry,
        )

    def _make_reporter(
        self, progress: Optional[ProgressSink]
    ) -> Optional[ProgressReporter]:
        if progress is None:
            return None
        if isinstance(progress, ProgressReporter):
            return progress
        return ProgressReporter(total=len(self._ranking), callback=progress)

    def measure_domain(self, domain: Domain) -> DomainMeasurement:
        """Steps 2-4 for one domain (both name forms)."""
        return measure_domain(self._resolver, self._dump, self._payloads, domain)

    def _measure_form(self, name: str) -> NameMeasurement:
        """Steps 2-4 for a single name form (used by ContinuousStudy)."""
        return _measure_form(self._resolver, self._dump, self._payloads, name)

    # Backwards-compatible alias for the extracted accumulator.
    _accumulate = staticmethod(accumulate_measurement)
