"""The end-to-end measurement study (Section 3).

:class:`MeasurementStudy` runs steps 1–4 for every ranked domain and
returns a :class:`StudyResult` — "a comprehensive list of all Alexa
websites that (i) can be resolved from our DNS vantage point and (ii)
mapped to an IP prefix AS pair ... (iii) annotated with RPKI origin
validation outcome."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.bgp import TableDump
from repro.dns import PublicResolver
from repro.rpki import ValidatedPayloads
from repro.web.alexa import AlexaRanking, Domain
from repro.core.dns_mapping import measure_name
from repro.core.prefix_mapping import map_addresses
from repro.core.records import DomainMeasurement, NameMeasurement
from repro.core.rpki_validation import validate_pairs


@dataclass
class StudyStatistics:
    """The aggregate counters Section 4 reports in its first paragraph."""

    domain_count: int = 0
    invalid_dns_domains: int = 0      # excluded: only special-purpose answers
    www_addresses: int = 0
    plain_addresses: int = 0
    www_pairs: int = 0
    plain_pairs: int = 0
    unreachable_addresses: int = 0
    as_set_exclusions: int = 0

    @property
    def total_addresses(self) -> int:
        return self.www_addresses + self.plain_addresses

    @property
    def invalid_dns_fraction(self) -> float:
        if not self.domain_count:
            return 0.0
        return self.invalid_dns_domains / self.domain_count

    @property
    def unreachable_fraction(self) -> float:
        if not self.total_addresses:
            return 0.0
        return self.unreachable_addresses / self.total_addresses


class StudyResult:
    """All per-domain measurements plus the aggregate statistics."""

    def __init__(
        self,
        measurements: List[DomainMeasurement],
        statistics: StudyStatistics,
    ):
        self._measurements = measurements
        self.statistics = statistics
        self._by_name: Dict[str, DomainMeasurement] = {
            m.domain.name: m for m in measurements
        }

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[DomainMeasurement]:
        return iter(self._measurements)

    def by_rank(self) -> List[DomainMeasurement]:
        """Measurements ordered by rank (rank 1 first)."""
        return sorted(self._measurements, key=lambda m: m.rank)

    def lookup(self, name: str) -> Optional[DomainMeasurement]:
        return self._by_name.get(name)

    def usable(self) -> List[DomainMeasurement]:
        return [m for m in self._measurements if m.usable]

    def __repr__(self) -> str:
        return f"<StudyResult {len(self._measurements)} domains>"


class MeasurementStudy:
    """Configured instance of the four-step methodology."""

    def __init__(
        self,
        ranking: AlexaRanking,
        resolver: PublicResolver,
        table_dump: TableDump,
        payloads: ValidatedPayloads,
    ):
        self._ranking = ranking
        self._resolver = resolver
        self._dump = table_dump
        self._payloads = payloads

    @classmethod
    def from_ecosystem(cls, world, resolver_index: int = 0) -> "MeasurementStudy":
        """Convenience constructor over a built :class:`WebEcosystem`."""
        return cls(
            ranking=world.ranking,
            resolver=world.resolvers()[resolver_index],
            table_dump=world.table_dump,
            payloads=world.payloads(),
        )

    def run(self) -> StudyResult:
        """Execute steps 2-4 for every domain of the ranking."""
        measurements: List[DomainMeasurement] = []
        stats = StudyStatistics(domain_count=len(self._ranking))
        for domain in self._ranking:
            measurement = self.measure_domain(domain)
            measurements.append(measurement)
            self._accumulate(stats, measurement)
        return StudyResult(measurements, stats)

    def measure_domain(self, domain: Domain) -> DomainMeasurement:
        """Steps 2-4 for one domain (both name forms)."""
        www = self._measure_form(domain.www_name)
        plain = self._measure_form(domain.name)
        return DomainMeasurement(domain=domain, www=www, plain=plain)

    def _measure_form(self, name: str) -> NameMeasurement:
        measurement = measure_name(self._resolver, name)
        if measurement.resolved and measurement.addresses:
            pairs = map_addresses(self._dump, measurement)
            measurement.pairs = validate_pairs(self._payloads, pairs)
        return measurement

    @staticmethod
    def _accumulate(stats: StudyStatistics, measurement: DomainMeasurement) -> None:
        www, plain = measurement.www, measurement.plain
        resolved_forms = [form for form in (www, plain) if form.resolved]
        if resolved_forms and all(
            not form.addresses and form.excluded_special for form in resolved_forms
        ):
            stats.invalid_dns_domains += 1
        stats.www_addresses += len(www.addresses)
        stats.plain_addresses += len(plain.addresses)
        stats.www_pairs += len(www.pairs)
        stats.plain_pairs += len(plain.pairs)
        stats.unreachable_addresses += (
            www.unreachable_addresses + plain.unreachable_addresses
        )
        stats.as_set_exclusions += www.as_set_excluded + plain.as_set_excluded
