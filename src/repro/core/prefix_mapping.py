"""Step 3 — mapping IP addresses to prefixes and origin ASes.

For each address, every covering prefix in the collector table dump
contributes a (prefix, origin AS) pair, where the origin is the
right-most ASN of the AS path.  Rows whose origin position is an
AS_SET are excluded (the attribute is ambiguous and deprecated,
RFC 6472); addresses without any covering prefix count as
unreachable from the BGP vantage point.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.bgp import TableDump
from repro.net import ASN, Address, Prefix
from repro.obs.runtime import metrics, tracer
from repro.core.records import NameMeasurement


def map_addresses(
    dump: TableDump, measurement: NameMeasurement
) -> List[Tuple[Prefix, ASN]]:
    """Derive the distinct (prefix, origin) pairs for a measurement.

    Side effects on ``measurement``: counts unreachable addresses and
    AS_SET-excluded rows.
    """
    counters = metrics()
    pairs: Set[Tuple[Prefix, ASN]] = set()
    with tracer().span("stage.prefix", name=measurement.name):
        counters.counter(
            "ripki_prefix_lookups_total", "Addresses pushed through step 3"
        ).inc(len(measurement.addresses))
        for address in measurement.addresses:
            entries = dump.covering_entries(address)
            if not entries:
                measurement.unreachable_addresses += 1
                counters.counter(
                    "ripki_unreachable_addresses_total",
                    "Addresses with no covering prefix in the table dump",
                ).inc()
                continue
            for entry in entries:
                origin = entry.origin
                if origin is None:
                    measurement.as_set_excluded += 1
                    counters.counter(
                        "ripki_as_set_exclusions_total",
                        "Table rows skipped for an AS_SET origin (RFC 6472)",
                    ).inc()
                    continue
                pairs.add((entry.prefix, origin))
    return sorted(pairs)
