"""Step 3 — mapping IP addresses to prefixes and origin ASes.

For each address, every covering prefix in the collector table dump
contributes a (prefix, origin AS) pair, where the origin is the
right-most ASN of the AS path.  Rows whose origin position is an
AS_SET are excluded (the attribute is ambiguous and deprecated,
RFC 6472); addresses without any covering prefix count as
unreachable from the BGP vantage point.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.bgp import TableDump
from repro.net import ASN, Address, Prefix
from repro.obs.runtime import metrics, tracer
from repro.core.records import NameMeasurement


def map_single_address(
    dump: TableDump, address: Address
) -> Tuple[List[Tuple[Prefix, ASN]], int, int]:
    """Step 3 for one address: ``(pairs, unreachable, as_set_excluded)``.

    Ticks the stage counters for exactly this address's share of the
    work, so the snapshot cache can capture the metric delta of one
    address as its artifact and replay it on a later hit.
    """
    counters = metrics()
    counters.counter(
        "ripki_prefix_lookups_total", "Addresses pushed through step 3"
    ).inc()
    entries = dump.covering_entries(address)
    if not entries:
        counters.counter(
            "ripki_unreachable_addresses_total",
            "Addresses with no covering prefix in the table dump",
        ).inc()
        return [], 1, 0
    pairs: Set[Tuple[Prefix, ASN]] = set()
    as_set_excluded = 0
    for entry in entries:
        origin = entry.origin
        if origin is None:
            as_set_excluded += 1
            counters.counter(
                "ripki_as_set_exclusions_total",
                "Table rows skipped for an AS_SET origin (RFC 6472)",
            ).inc()
            continue
        pairs.add((entry.prefix, origin))
    return sorted(pairs), 0, as_set_excluded


def map_addresses(
    dump: TableDump, measurement: NameMeasurement
) -> List[Tuple[Prefix, ASN]]:
    """Derive the distinct (prefix, origin) pairs for a measurement.

    Side effects on ``measurement``: counts unreachable addresses and
    AS_SET-excluded rows.
    """
    pairs: Set[Tuple[Prefix, ASN]] = set()
    with tracer().span("stage.prefix", name=measurement.name):
        for address in measurement.addresses:
            mapped, unreachable, as_set_excluded = map_single_address(
                dump, address
            )
            pairs.update(mapped)
            measurement.unreachable_addresses += unreachable
            measurement.as_set_excluded += as_set_excluded
    return sorted(pairs)
