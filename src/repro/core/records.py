"""Per-domain measurement records.

A :class:`NameMeasurement` is the outcome of steps 2–4 for one domain
name form; a :class:`DomainMeasurement` pairs the ``www`` and
w/o-``www`` forms and derives the quantities the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.net import ASN, Address, Prefix
from repro.rpki.vrp import OriginValidation
from repro.web.alexa import Domain


@dataclass(frozen=True, order=True)
class PrefixOriginPair:
    """One (covering prefix, origin AS) pair with its RPKI state."""

    prefix: Prefix
    origin: ASN
    state: OriginValidation

    @property
    def covered(self) -> bool:
        """True when the RPKI says anything about this pair."""
        return self.state is not OriginValidation.NOT_FOUND

    def __str__(self) -> str:
        return f"{self.prefix} via {self.origin}: {self.state}"


@dataclass
class NameMeasurement:
    """Steps 2-4 for one name form."""

    name: str
    resolved: bool = False
    addresses: List[Address] = field(default_factory=list)
    excluded_special: int = 0       # discarded special-purpose answers
    unreachable_addresses: int = 0  # no covering prefix at the collectors
    as_set_excluded: int = 0        # table rows skipped due to AS_SET origin
    cname_count: int = 0            # CNAME indirections observed
    pairs: List[PrefixOriginPair] = field(default_factory=list)
    # Resilience outcome (set only by fault-injected runs): the stage
    # that exhausted its retries ("" = none), retries spent across
    # stages, and the injected faults observed, as sorted
    # (kind, count) pairs — primitives so the wire codec ships them.
    degraded_stage: str = ""
    retries: int = 0
    faults: Tuple[Tuple[str, int], ...] = ()

    # -- derived quantities -------------------------------------------------

    @property
    def usable(self) -> bool:
        """Resolved to at least one routable, reachable address."""
        return self.resolved and bool(self.pairs)

    @property
    def degraded(self) -> bool:
        """A stage gave up after exhausting its retry budget."""
        return bool(self.degraded_stage)

    def prefixes(self) -> Set[Prefix]:
        return {pair.prefix for pair in self.pairs}

    def state_fractions(self) -> Tuple[float, float, float]:
        """(valid, invalid, not_found) fractions over the pairs."""
        if not self.pairs:
            return 0.0, 0.0, 0.0
        total = len(self.pairs)
        valid = sum(1 for p in self.pairs if p.state is OriginValidation.VALID)
        invalid = sum(
            1 for p in self.pairs if p.state is OriginValidation.INVALID
        )
        return valid / total, invalid / total, (total - valid - invalid) / total

    def coverage(self) -> float:
        """Fraction of pairs covered by the RPKI (paper: "3/5")."""
        if not self.pairs:
            return 0.0
        return sum(1 for p in self.pairs if p.covered) / len(self.pairs)

    def covered_count(self) -> int:
        return sum(1 for p in self.pairs if p.covered)

    @property
    def rpki_enabled(self) -> bool:
        """At least one associated prefix is part of the RPKI."""
        return any(p.covered for p in self.pairs)

    @property
    def fully_covered(self) -> bool:
        return bool(self.pairs) and all(p.covered for p in self.pairs)

    def coverage_label(self) -> str:
        """Table 1 style cell, e.g. "(3/3)" full or "(1/3)" partial."""
        if not self.usable:
            return "n/a"
        return f"({self.covered_count()}/{len(self.pairs)})"

    def __repr__(self) -> str:
        return (
            f"<NameMeasurement {self.name} {len(self.addresses)} addrs, "
            f"{len(self.pairs)} pairs>"
        )


@dataclass
class DomainMeasurement:
    """The full measurement of one ranked domain."""

    domain: Domain
    www: NameMeasurement
    plain: NameMeasurement

    @property
    def rank(self) -> int:
        return self.domain.rank

    @property
    def usable(self) -> bool:
        return self.www.usable or self.plain.usable

    @property
    def degraded(self) -> bool:
        """Either name form exhausted a retry budget."""
        return self.www.degraded or self.plain.degraded

    def is_cdn(self, min_cnames: int = 2) -> bool:
        """The paper's chain heuristic: served via >= 2 CNAMEs."""
        return (
            self.www.cname_count >= min_cnames
            or self.plain.cname_count >= min_cnames
        )

    def prefix_overlap(self) -> Optional[float]:
        """Share of prefixes equal between the two name forms (Fig. 1).

        Jaccard similarity of the covering-prefix sets; None when
        either form is unusable (excluded from the figure).
        """
        if not (self.www.usable and self.plain.usable):
            return None
        www_prefixes = self.www.prefixes()
        plain_prefixes = self.plain.prefixes()
        union = www_prefixes | plain_prefixes
        if not union:
            return None
        return len(www_prefixes & plain_prefixes) / len(union)

    def combined_pairs(self) -> List[PrefixOriginPair]:
        """Distinct pairs across both name forms."""
        return sorted(set(self.www.pairs) | set(self.plain.pairs))

    def state_fractions(self) -> Tuple[float, float, float]:
        """Per-domain (valid, invalid, not_found) over combined pairs."""
        pairs = self.combined_pairs()
        if not pairs:
            return 0.0, 0.0, 0.0
        total = len(pairs)
        valid = sum(1 for p in pairs if p.state is OriginValidation.VALID)
        invalid = sum(1 for p in pairs if p.state is OriginValidation.INVALID)
        return valid / total, invalid / total, (total - valid - invalid) / total

    @property
    def rpki_enabled(self) -> bool:
        return self.www.rpki_enabled or self.plain.rpki_enabled

    def __repr__(self) -> str:
        return f"<DomainMeasurement #{self.rank} {self.domain.name}>"
