"""Report generators: one per table/figure of the evaluation section.

Every generator consumes a :class:`~repro.core.pipeline.StudyResult`
and returns plain data (binned series, table rows) so the benchmark
harness and the CLI can print the same rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import BinnedSeries, TextTable, bin_means, bin_shares
from repro.core.cdn_asns import CDNASReport, build_cdn_as_report
from repro.core.cdn_detection import ChainHeuristic
from repro.core.pipeline import StudyResult

# The paper bins 1M domains into groups of 10,000 — i.e. 100 bins.
PAPER_BIN_COUNT = 100


def default_bin_size(result: StudyResult) -> int:
    """Bin size giving the paper's 100 bins at any population scale."""
    return max(1, len(result) // PAPER_BIN_COUNT)


# -- Figure 1 ---------------------------------------------------------------


def figure1_www_overlap(
    result: StudyResult, bin_size: Optional[int] = None
) -> BinnedSeries:
    """Share of equal prefixes between www and w/o-www per rank bin."""
    bin_size = bin_size or default_bin_size(result)
    per_rank = [m.prefix_overlap() for m in result.by_rank()]
    return bin_means(per_rank, bin_size, label="equal prefixes www vs w/o www")


# -- Figure 2 ---------------------------------------------------------------


def figure2_rpki_outcome(
    result: StudyResult, bin_size: Optional[int] = None
) -> Dict[str, BinnedSeries]:
    """Valid / invalid / not-found fractions per rank bin."""
    bin_size = bin_size or default_bin_size(result)
    valid_per_rank: List[Optional[float]] = []
    invalid_per_rank: List[Optional[float]] = []
    notfound_per_rank: List[Optional[float]] = []
    for measurement in result.by_rank():
        if not measurement.usable:
            valid_per_rank.append(None)
            invalid_per_rank.append(None)
            notfound_per_rank.append(None)
            continue
        valid, invalid, notfound = measurement.state_fractions()
        valid_per_rank.append(valid)
        invalid_per_rank.append(invalid)
        notfound_per_rank.append(notfound)
    return {
        "valid": bin_means(valid_per_rank, bin_size, label="valid"),
        "invalid": bin_means(invalid_per_rank, bin_size, label="invalid"),
        "not_found": bin_means(notfound_per_rank, bin_size, label="not found"),
    }


# -- Table 1 ----------------------------------------------------------------


@dataclass
class Table1Row:
    """One row of Table 1."""

    rank: int
    name: str
    www_label: str     # e.g. "(3/3)"
    www_full: bool
    plain_label: str
    plain_full: bool

    def marker(self, full: bool, label: str) -> str:
        if label == "n/a":
            return "n/a"
        if label.startswith("(0/"):
            return f"x {label}"
        return ("FULL " if full else "part ") + label


def table1_top_covered(result: StudyResult, count: int = 10) -> List[Table1Row]:
    """The first ``count`` ranked domains with any RPKI coverage."""
    rows: List[Table1Row] = []
    for measurement in result.by_rank():
        if not measurement.rpki_enabled:
            continue
        rows.append(
            Table1Row(
                rank=measurement.rank,
                name=measurement.domain.name,
                www_label=measurement.www.coverage_label(),
                www_full=measurement.www.fully_covered,
                plain_label=measurement.plain.coverage_label(),
                plain_full=measurement.plain.fully_covered,
            )
        )
        if len(rows) >= count:
            break
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    table = TextTable(["Rank", "Domain", "www", "w/o www"])
    for row in rows:
        table.add_row(
            row.rank,
            row.name,
            row.marker(row.www_full, row.www_label),
            row.marker(row.plain_full, row.plain_label),
        )
    return table.render()


# -- Figure 3 ---------------------------------------------------------------


def figure3_cdn_popularity(
    result: StudyResult,
    httparchive_classification: Dict[str, str],
    httparchive_coverage: int,
    bin_size: Optional[int] = None,
    heuristic: Optional[ChainHeuristic] = None,
) -> Dict[str, BinnedSeries]:
    """CDN share per bin: chain heuristic vs HTTPArchive."""
    bin_size = bin_size or default_bin_size(result)
    heuristic = heuristic or ChainHeuristic()
    chain_flags: List[Optional[bool]] = []
    archive_flags: List[Optional[bool]] = []
    for measurement in result.by_rank():
        chain_flags.append(heuristic.is_cdn(measurement))
        if measurement.rank <= httparchive_coverage:
            archive_flags.append(
                measurement.domain.name in httparchive_classification
            )
        else:
            archive_flags.append(None)
    return {
        "GoogleDNS": bin_shares(chain_flags, bin_size, label="GoogleDNS"),
        "HTTPArchive": bin_shares(archive_flags, bin_size, label="HTTPArchive"),
    }


# -- Figure 4 ---------------------------------------------------------------


def figure4_rpki_cdn(
    result: StudyResult,
    bin_size: Optional[int] = None,
    heuristic: Optional[ChainHeuristic] = None,
) -> Dict[str, BinnedSeries]:
    """RPKI-enabled share per bin, overall and among CDN-hosted sites."""
    bin_size = bin_size or default_bin_size(result)
    heuristic = heuristic or ChainHeuristic()
    overall: List[Optional[bool]] = []
    cdn_only: List[Optional[bool]] = []
    for measurement in result.by_rank():
        if not measurement.usable:
            overall.append(None)
            cdn_only.append(None)
            continue
        enabled = measurement.rpki_enabled
        overall.append(enabled)
        cdn_only.append(enabled if heuristic.is_cdn(measurement) else None)
    return {
        "rpki_enabled": bin_shares(overall, bin_size, label="RPKI-enabled"),
        "rpki_enabled_cdn": bin_shares(
            cdn_only, bin_size, label="RPKI-enabled websites hosted on CDNs"
        ),
    }


# -- Section 4.2 in-text numbers ---------------------------------------------


def cdn_as_report(world) -> CDNASReport:
    """Keyword spotting + RPKI search over a built ecosystem."""
    return build_cdn_as_report(world.as_assignment_list(), world.payloads())


# -- Section 4 opening statistics ---------------------------------------------


def pipeline_statistics(
    result: StudyResult, registry=None
) -> Dict[str, float]:
    """The counters reported in the first paragraph of Section 4.

    With a metrics ``registry`` the numbers are rebuilt from the
    funnel counters the instrumented stages recorded — the registry
    is then the single source of truth shared with any exporter — and
    a mismatch against the accumulated statistics raises.
    """
    stats = result.statistics
    if registry is not None:
        from repro.core.pipeline import StudyStatistics

        rebuilt = StudyStatistics.from_metrics(registry)
        if rebuilt != stats:
            raise ValueError(
                "metrics registry disagrees with StudyStatistics: "
                f"{rebuilt} != {stats}"
            )
        stats = rebuilt
    summary: Dict[str, float] = {
        "domains": stats.domain_count,
        "invalid_dns_fraction": stats.invalid_dns_fraction,
        "www_addresses": stats.www_addresses,
        "plain_addresses": stats.plain_addresses,
        "www_pairs": stats.www_pairs,
        "plain_pairs": stats.plain_pairs,
        "unreachable_fraction": stats.unreachable_fraction,
        "as_set_exclusions": stats.as_set_exclusions,
    }
    # Resilience keys appear only when a fault-injected run recorded
    # something, so fault-free output is unchanged.
    if stats.degraded_domains or stats.retries_total or stats.faults_by_kind:
        summary["degraded_domains"] = stats.degraded_domains
        summary["degraded_fraction"] = stats.degraded_fraction
        summary["retries_total"] = stats.retries_total
        summary["faults_injected"] = stats.faults_total
    return summary
