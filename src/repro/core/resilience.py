"""Graceful degradation for the measurement funnel.

:class:`ResilientFunnel` runs steps 2-4 against fault-injected
substrates (:mod:`repro.faults`) under a retry policy, and turns
retry exhaustion into *per-domain degradation* instead of a failed
study: a name form whose DNS stage gives up is recorded unresolved
with ``degraded_stage="dns"``; one whose prefix/validation stage
gives up keeps its DNS outcome and marks ``degraded_stage="prefix"``.
Retries spent and faults observed are recorded on the measurement so
:func:`~repro.core.pipeline.accumulate_measurement` can aggregate
them into :class:`~repro.core.pipeline.StudyStatistics`.

Determinism contract (the serial-vs-parallel equivalence guarantee):

* fault decisions are pure functions of (plan seed, kind, site key,
  attempt) — the funnel publishes the attempt number through a shared
  :class:`~repro.faults.AttemptCell`, never through wrapper-local
  counters that would drift with sharding;
* retried attempts run under a scratch metrics registry that is
  merged into the live one only on success, so failed attempts leave
  no trace in the funnel counters and the registry cross-check in
  :func:`repro.core.reports.pipeline_statistics` holds under faults;
* the prefix stage retries against a *trial copy* of the DNS result,
  so a failing attempt never double-counts unreachable addresses or
  AS_SET exclusions on the measurement it will eventually return.

One funnel instance serves one run, shard, or worker interchangeably
— instances carry no decision state, so any partition of the ranking
over funnels yields bit-identical measurements.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TypeVar

from repro.bgp import TableDump
from repro.dns import PublicResolver
from repro.errors import RetryExhausted
from repro.faults import (
    AttemptCell,
    DEFAULT_RETRY_POLICY,
    FaultPlan,
    FaultyResolver,
    FaultyTableDump,
    RetryPolicy,
    call_with_retry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import metrics, thread_scope, tracer
from repro.rpki import ValidatedPayloads
from repro.web.alexa import Domain
from repro.core.dns_mapping import measure_name
from repro.core.prefix_mapping import map_addresses
from repro.core.records import DomainMeasurement, NameMeasurement
from repro.core.rpki_validation import validate_pairs

T = TypeVar("T")

# Stage names recorded in NameMeasurement.degraded_stage.
STAGE_DNS = "dns"
STAGE_PREFIX = "prefix"


class ResilientFunnel:
    """Steps 2-4 with fault injection, retries, and degradation."""

    def __init__(
        self,
        resolver: PublicResolver,
        table_dump: TableDump,
        payloads: ValidatedPayloads,
        faults: FaultPlan,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        sleeper: Optional[Callable[[float], None]] = None,
    ):
        self._payloads = payloads
        self._retry = retry
        self._sleeper = sleeper
        self._cell = AttemptCell()
        self._form_faults: Dict[str, int] = {}
        self._resolver = FaultyResolver(
            resolver, faults, attempt=self._cell, on_fault=self._record_fault
        )
        self._dump = FaultyTableDump(
            table_dump, faults, attempt=self._cell, on_fault=self._record_fault
        )

    def _record_fault(self, kind: str) -> None:
        self._form_faults[kind] = self._form_faults.get(kind, 0) + 1

    def measure_domain(self, domain: Domain) -> DomainMeasurement:
        """Steps 2-4 for one domain (both name forms), never raising."""
        www = self.measure_form(domain.www_name)
        plain = self.measure_form(domain.name)
        return DomainMeasurement(domain=domain, www=www, plain=plain)

    def measure_form(self, name: str) -> NameMeasurement:
        """Steps 2-4 for one name form under the retry policy."""
        self._form_faults = {}
        retries = 0
        try:
            measurement, attempts = call_with_retry(
                lambda: self._attempt(lambda: measure_name(self._resolver, name)),
                policy=self._retry,
                key=f"{STAGE_DNS}|{name}",
                attempt_cell=self._cell,
                sleeper=self._sleeper,
            )
            retries += attempts - 1
        except RetryExhausted as exhausted:
            retries += exhausted.attempts - 1
            measurement = NameMeasurement(name=name, degraded_stage=STAGE_DNS)
        else:
            if measurement.resolved and measurement.addresses:
                try:
                    mapped, attempts = call_with_retry(
                        lambda: self._attempt(
                            lambda: self._map_and_validate(measurement)
                        ),
                        policy=self._retry,
                        key=f"{STAGE_PREFIX}|{name}",
                        attempt_cell=self._cell,
                        sleeper=self._sleeper,
                    )
                    retries += attempts - 1
                    measurement = mapped
                except RetryExhausted as exhausted:
                    retries += exhausted.attempts - 1
                    measurement.degraded_stage = STAGE_PREFIX
        measurement.retries = retries
        measurement.faults = tuple(sorted(self._form_faults.items()))
        return measurement

    def _map_and_validate(self, base: NameMeasurement) -> NameMeasurement:
        """Steps 3-4 on a trial copy of the DNS outcome.

        ``map_addresses`` mutates its measurement (unreachable/AS_SET
        counts); retrying on a copy keeps ``base`` pristine until an
        attempt completes, and leaves it untouched on exhaustion.
        """
        trial = NameMeasurement(
            name=base.name,
            resolved=base.resolved,
            addresses=list(base.addresses),
            excluded_special=base.excluded_special,
            cname_count=base.cname_count,
        )
        pairs = map_addresses(self._dump, trial)
        trial.pairs = validate_pairs(self._payloads, pairs)
        return trial

    def _attempt(self, fn: Callable[[], T]) -> T:
        """Run one attempt; its metric ticks land only if it succeeds."""
        live = metrics()
        if not live.enabled:
            return fn()
        scratch = MetricsRegistry()
        with thread_scope(scratch, tracer()):
            value = fn()
        live.merge(scratch)
        return value

    def __repr__(self) -> str:
        return f"<ResilientFunnel retry={self._retry!r}>"
