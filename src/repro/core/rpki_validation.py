"""Step 4 — RPKI origin validation of prefix/origin pairs.

Every (prefix, origin AS) pair from step 3 is validated against the
Validated ROA Payloads produced by the relying party: *valid*,
*invalid*, or *not found* (RFC 6811).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.net import ASN, Prefix
from repro.obs.runtime import metrics, tracer
from repro.rpki import ValidatedPayloads
from repro.core.records import PrefixOriginPair


def validate_single_pair(
    payloads: ValidatedPayloads, prefix: Prefix, origin: ASN
) -> PrefixOriginPair:
    """Step 4 for one (prefix, origin) pair, ticking its outcome counter.

    The per-pair granularity lets the snapshot cache capture the
    metric delta of one validation as its artifact and replay it on a
    later hit.
    """
    pair = PrefixOriginPair(
        prefix=prefix,
        origin=origin,
        state=payloads.validate_origin(prefix, origin),
    )
    metrics().counter(
        "ripki_rpki_validations_total",
        "Step-4 origin validations by RFC 6811 outcome",
        labelnames=("state",),
    ).labels(state=pair.state.name.lower()).inc()
    return pair


def validate_pairs(
    payloads: ValidatedPayloads,
    pairs: Iterable[Tuple[Prefix, ASN]],
) -> List[PrefixOriginPair]:
    """Annotate each pair with its origin-validation outcome."""
    with tracer().span("stage.rpki"):
        validated = [
            validate_single_pair(payloads, prefix, origin)
            for prefix, origin in pairs
        ]
    return validated
