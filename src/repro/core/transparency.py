"""Section 5.1 — a delivery-security transparency report.

"We are left with a surprisingly basic but still unanswered question:
How can a content owner easily verify that his content is reliably
and securely delivered in the current Web ecosystem?" — and the paper
argues "new systems should be devised that increase transparency".

:func:`audit_domain` is that system for the synthetic world: one call
produces a per-domain report covering DNS health, resolver agreement,
CDN dependence, the full prefix/origin inventory, RPKI coverage with
per-pair verdicts, optional DNSSEC status, and the residual hijack
attack surface (unprotected prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cdn_detection import ChainHeuristic
from repro.core.dns_mapping import cross_check
from repro.core.pipeline import MeasurementStudy
from repro.core.records import DomainMeasurement, PrefixOriginPair
from repro.net import Prefix
from repro.rpki.vrp import OriginValidation
from repro.web.alexa import Domain


@dataclass
class TransparencyReport:
    """Everything a content owner needs to see at a glance."""

    domain: Domain
    resolvable: bool = False
    resolver_agreement: bool = True
    uses_cdn: bool = False
    pairs: List[PrefixOriginPair] = field(default_factory=list)
    unprotected_prefixes: List[Prefix] = field(default_factory=list)
    invalid_pairs: List[PrefixOriginPair] = field(default_factory=list)
    www_coverage_label: str = "n/a"
    plain_coverage_label: str = "n/a"
    dnssec_status: Optional[str] = None

    @property
    def fully_protected(self) -> bool:
        return (
            self.resolvable
            and bool(self.pairs)
            and not self.unprotected_prefixes
            and not self.invalid_pairs
        )

    @property
    def grade(self) -> str:
        """A one-letter verdict: A full, B partial, C none, F broken."""
        if not self.resolvable:
            return "F"
        if self.invalid_pairs:
            return "F"
        if not self.pairs:
            return "F"
        if self.fully_protected:
            return "A"
        covered = len(self.pairs) - len(self.unprotected_prefixes)
        return "B" if covered else "C"

    def issues(self) -> List[str]:
        """Actionable findings, most severe first."""
        findings: List[str] = []
        if not self.resolvable:
            findings.append("domain does not resolve to routable addresses")
            return findings
        for pair in self.invalid_pairs:
            findings.append(
                f"announcement {pair.prefix} via {pair.origin} is RPKI-"
                f"invalid (misconfigured ROA or hijack in progress)"
            )
        for prefix in self.unprotected_prefixes:
            findings.append(
                f"prefix {prefix} has no ROA: hijackable without any "
                f"validator noticing"
            )
        if self.uses_cdn and self.unprotected_prefixes:
            findings.append(
                "content rides a CDN whose address space is unsigned — "
                "ask the CDN about their RPKI roadmap"
            )
        if not self.resolver_agreement:
            findings.append(
                "public resolvers disagree on the address set "
                "(CDN steering or cache inconsistency)"
            )
        if self.dnssec_status == "insecure":
            findings.append("zone is not DNSSEC-signed")
        elif self.dnssec_status == "bogus":
            findings.append("DNSSEC validation fails (BOGUS) — check keys")
        return findings


def audit_domain(
    world,
    domain_name: str,
    dnssec_deployment=None,
) -> TransparencyReport:
    """Audit one domain of a built world."""
    domain = next(
        (d for d in world.ranking if d.name == domain_name), None
    )
    if domain is None:
        raise KeyError(f"unknown domain: {domain_name!r}")

    study = MeasurementStudy.from_ecosystem(world)
    measurement = study.measure_domain(domain)
    report = TransparencyReport(domain=domain)
    report.resolvable = measurement.usable
    report.uses_cdn = ChainHeuristic().is_cdn(measurement)
    report.pairs = measurement.combined_pairs()
    report.invalid_pairs = [
        p for p in report.pairs if p.state is OriginValidation.INVALID
    ]
    report.unprotected_prefixes = sorted(
        {p.prefix for p in report.pairs if p.state is OriginValidation.NOT_FOUND}
    )
    report.www_coverage_label = measurement.www.coverage_label()
    report.plain_coverage_label = measurement.plain.coverage_label()

    agree, _measurements = cross_check(world.resolvers(), domain.name)
    report.resolver_agreement = agree

    if dnssec_deployment is not None:
        from repro.web.dnssec_adoption import rrset_for_validation

        records = rrset_for_validation(world.namespace, domain.name)
        status = dnssec_deployment.status_for(domain.name, records)
        report.dnssec_status = str(status)
    return report


def render_report(report: TransparencyReport) -> str:
    """Human-readable rendering of a report."""
    lines = [
        f"Delivery security report for {report.domain.name} "
        f"(rank {report.domain.rank})",
        f"  grade: {report.grade}",
        f"  resolves: {report.resolvable}   "
        f"resolver agreement: {report.resolver_agreement}   "
        f"CDN-served: {report.uses_cdn}",
        f"  RPKI coverage: www {report.www_coverage_label}, "
        f"w/o www {report.plain_coverage_label}",
    ]
    if report.dnssec_status is not None:
        lines.append(f"  DNSSEC: {report.dnssec_status}")
    lines.append(f"  prefix/origin inventory ({len(report.pairs)}):")
    for pair in report.pairs:
        lines.append(f"    {pair}")
    findings = report.issues()
    lines.append(f"  findings ({len(findings)}):")
    for finding in findings:
        lines.append(f"    - {finding}")
    if not findings:
        lines.append("    (none — fully protected)")
    return "\n".join(lines)
