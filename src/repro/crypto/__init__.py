"""From-scratch cryptographic substrate for the RPKI.

The RPKI relying-party validator must *cryptographically* validate
certificates and ROAs before using them (paper Section 3, step 4:
"Only cryptographically correct ROAs are further used").  This package
implements everything needed for that from scratch: a deterministic
CSPRNG-style generator (so whole synthetic PKIs are reproducible),
Miller–Rabin primality testing, RSA key generation, and PKCS#1 v1.5
signatures over SHA-256.

Keys default to 512 bits: comfortably strong enough to make forged or
corrupted objects fail verification in tests, while keeping bulk key
generation for thousands of synthetic CAs fast.
"""

from repro.crypto.digest import sha256, sha256_hex
from repro.errors import ReproError
from repro.crypto.errors import CryptoError, SignatureError
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rng import DeterministicRNG
from repro.crypto.rsa import generate_keypair, sign, verify

__all__ = [
    "CryptoError",
    "DeterministicRNG",
    "KeyPair",
    "PublicKey",
    "ReproError",
    "SignatureError",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "sha256",
    "sha256_hex",
    "sign",
    "verify",
]
