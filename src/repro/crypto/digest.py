"""Message digests.

SHA-256 via :mod:`hashlib` (part of the Python standard library, not a
third-party dependency), plus helpers for hashing structured data
deterministically.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """SHA-256 digest as a lowercase hex string."""
    return hashlib.sha256(data).hexdigest()


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic byte serialisation of a JSON-able structure.

    Used as the to-be-signed encoding for certificates and ROAs: the
    same logical object always hashes to the same digest, and any
    mutation of a signed field changes it.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def digest_struct(obj: Any) -> bytes:
    """SHA-256 over the canonical serialisation of a structure."""
    return sha256(canonical_bytes(obj))
