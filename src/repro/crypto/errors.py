"""Exception hierarchy for the crypto substrate."""

from repro.errors import ReproError


class CryptoError(ReproError):
    """Base class for crypto failures."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


class KeyError_(CryptoError):
    """A key is malformed (name avoids shadowing the builtin)."""
