"""RSA key containers and serialisation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.digest import sha256_hex
from repro.crypto.errors import KeyError_


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``."""

    modulus: int
    exponent: int

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8

    def fingerprint(self) -> str:
        """Stable hex identifier for the key (SKI-like)."""
        blob = f"{self.modulus:x}:{self.exponent:x}".encode("ascii")
        return sha256_hex(blob)[:40]

    def to_dict(self) -> Dict[str, str]:
        return {"n": format(self.modulus, "x"), "e": format(self.exponent, "x")}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "PublicKey":
        try:
            return cls(int(data["n"], 16), int(data["e"], 16))
        except (KeyError, ValueError) as exc:
            raise KeyError_(f"malformed public key dict: {exc}") from exc


@dataclass(frozen=True)
class KeyPair:
    """An RSA key pair; ``private_exponent`` never leaves the holder."""

    public: PublicKey
    private_exponent: int

    @property
    def modulus(self) -> int:
        return self.public.modulus

    def fingerprint(self) -> str:
        return self.public.fingerprint()

    def __repr__(self) -> str:  # never print the private exponent
        return f"<KeyPair {self.public.bits}-bit {self.fingerprint()[:12]}>"
