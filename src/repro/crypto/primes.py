"""Primality testing and prime generation (Miller–Rabin)."""

from __future__ import annotations

from repro.crypto.rng import DeterministicRNG

# Trial division by small primes rejects most composites cheaply.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

_MILLER_RABIN_ROUNDS = 24


def is_probable_prime(candidate: int, rng: DeterministicRNG = None) -> bool:
    """Miller–Rabin probabilistic primality test.

    With 24 random bases the error probability is below 4**-24; for the
    deterministic witness set used on small inputs the answer is exact.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False

    # Write candidate - 1 as d * 2**r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if rng is None:
        rng = DeterministicRNG(candidate & 0xFFFFFFFF)

    for _ in range(_MILLER_RABIN_ROUNDS):
        base = rng.randint(2, candidate - 2)
        x = pow(base, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: DeterministicRNG) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size below 8 bits is not useful")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng):
            return candidate
