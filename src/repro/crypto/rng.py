"""Deterministic random number generator.

A counter-mode generator built on SHA-256.  Given the same seed it
produces the same stream on every platform and Python version, which
makes whole synthetic PKIs, BGP tables, and web ecosystems
reproducible bit-for-bit.  It is *not* meant to be secure against an
adaptive adversary — determinism is the point.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, TypeVar, Union

T = TypeVar("T")

Seed = Union[int, str, bytes]


def _seed_bytes(seed: Seed) -> bytes:
    if isinstance(seed, bytes):
        return seed
    if isinstance(seed, str):
        return seed.encode("utf-8")
    return str(int(seed)).encode("ascii")


class DeterministicRNG:
    """SHA-256 counter-mode byte stream with convenience samplers."""

    def __init__(self, seed: Seed):
        self._key = hashlib.sha256(b"repro-rng:" + _seed_bytes(seed)).digest()
        self._counter = 0
        self._buffer = b""

    def fork(self, label: Seed) -> "DeterministicRNG":
        """Derive an independent child generator.

        Forking lets subsystems draw randomness without perturbing each
        other's streams — adding a consumer never changes the values an
        existing consumer sees.
        """
        return DeterministicRNG(self._key + b"/" + _seed_bytes(label))

    def bytes(self, count: int) -> bytes:
        """Return ``count`` pseudo-random bytes."""
        while len(self._buffer) < count:
            block = hashlib.sha256(
                self._key + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        result, self._buffer = self._buffer[:count], self._buffer[count:]
        return result

    def getrandbits(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""
        if bits <= 0:
            return 0
        count = (bits + 7) // 8
        value = int.from_bytes(self.bytes(count), "big")
        return value >> (count * 8 - bits)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        bits = span.bit_length()
        # Rejection sampling keeps the distribution exactly uniform.
        while True:
            value = self.getrandbits(bits)
            if value < span:
                return low + value

    def random(self) -> float:
        """Return a float in [0, 1) with 53 bits of precision."""
        return self.getrandbits(53) / (1 << 53)

    def choice(self, seq: Sequence[T]) -> T:
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise IndexError("choice from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def sample(self, seq: Sequence[T], count: int) -> list:
        """Return ``count`` distinct elements, order randomised."""
        if count > len(seq):
            raise ValueError(f"sample of {count} from {len(seq)} elements")
        pool = list(seq)
        picked = []
        for _ in range(count):
            index = self.randint(0, len(pool) - 1)
            picked.append(pool.pop(index))
        return picked

    def shuffle(self, items: list) -> None:
        """Fisher–Yates shuffle in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one element with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights length mismatch")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        threshold = self.random() * total
        running = 0.0
        for item, weight in zip(items, weights):
            running += weight
            if threshold < running:
                return item
        return items[-1]

    def pareto(self, alpha: float) -> float:
        """Sample from a Pareto distribution (heavy-tailed popularity)."""
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        uniform = 1.0 - self.random()
        return uniform ** (-1.0 / alpha)

    def expovariate(self, rate: float) -> float:
        """Sample from an exponential distribution with the given rate."""
        import math

        if rate <= 0:
            raise ValueError("rate must be positive")
        return -math.log(1.0 - self.random()) / rate
