"""RSA key generation and PKCS#1 v1.5 signatures over SHA-256.

This is a from-scratch textbook implementation: modular
exponentiation via :func:`pow`, EMSA-PKCS1-v1_5 style padding with a
SHA-256 ``DigestInfo`` prefix, constant public exponent 65537.  It is
used by the RPKI substrate so corrupted or forged objects genuinely
fail verification.
"""

from __future__ import annotations

from repro.crypto.digest import sha256
from repro.crypto.errors import SignatureError
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.primes import generate_prime
from repro.crypto.rng import DeterministicRNG

PUBLIC_EXPONENT = 65537

# DER prefix of DigestInfo for SHA-256 (RFC 8017, section 9.2).
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

DEFAULT_KEY_BITS = 512
MIN_KEY_BITS = 512


def generate_keypair(rng: DeterministicRNG, bits: int = DEFAULT_KEY_BITS) -> KeyPair:
    """Generate an RSA key pair of roughly ``bits`` modulus bits."""
    if bits < MIN_KEY_BITS:
        raise ValueError(
            f"modulus below {MIN_KEY_BITS} bits cannot carry a SHA-256 signature"
        )
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        d = pow(PUBLIC_EXPONENT, -1, phi)
        return KeyPair(PublicKey(n, PUBLIC_EXPONENT), d)


def _emsa_encode(message: bytes, target_length: int) -> int:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message)."""
    digest_info = _SHA256_DIGEST_INFO + sha256(message)
    padding_length = target_length - len(digest_info) - 3
    if padding_length < 8:
        raise SignatureError(
            f"modulus too small for PKCS#1 v1.5 with SHA-256 "
            f"({target_length} bytes available)"
        )
    encoded = b"\x00\x01" + b"\xff" * padding_length + b"\x00" + digest_info
    return int.from_bytes(encoded, "big")


def sign(message: bytes, keypair: KeyPair) -> int:
    """Produce a PKCS#1 v1.5 signature over ``message``."""
    encoded = _emsa_encode(message, keypair.public.byte_length)
    return pow(encoded, keypair.private_exponent, keypair.modulus)


def verify(message: bytes, signature: int, public_key: PublicKey) -> bool:
    """Check a signature; returns False on any mismatch (never raises
    for a wrong signature, only for structurally impossible inputs)."""
    if not 0 <= signature < public_key.modulus:
        return False
    try:
        expected = _emsa_encode(message, public_key.byte_length)
    except SignatureError:
        return False
    recovered = pow(signature, PUBLIC_EXPONENT, public_key.modulus)
    return recovered == expected
