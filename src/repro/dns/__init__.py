"""DNS substrate.

Provides what the paper's step (2) needs: a global namespace of
resource records (A/AAAA/CNAME), vantage-dependent answers (CDNs
direct different resolvers to different caches), and a recursive
resolver that follows CNAME chains — the chains the CDN-detection
heuristic of Section 4.3 counts.
"""

from repro.dns.errors import DNSError, ResolutionError
from repro.errors import ReproError
from repro.dns.records import RecordType, ResourceRecord
from repro.dns.resolver import Answer, RCode, RecursiveResolver
from repro.dns.namespace import Namespace
from repro.dns.vantage import PublicResolver

__all__ = [
    "Answer",
    "DNSError",
    "Namespace",
    "PublicResolver",
    "RCode",
    "RecordType",
    "RecursiveResolver",
    "ReproError",
    "ResolutionError",
    "ResourceRecord",
]
