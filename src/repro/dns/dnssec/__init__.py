"""DNSSEC substrate (RFC 4033-4035, simplified but cryptographically real).

The paper's conclusion announces a comparison of RPKI deployment
"with the adoption of other core protocols such as DNSSEC"; this
package provides the machinery for that extension experiment:

* signed zones with zone keys (DNSKEY), delegation signer records
  (DS) linking parents to children, and RRSIG signatures over record
  sets — all using the same from-scratch RSA as the RPKI,
* a validating resolver that walks the chain of trust from the root
  trust anchor and classifies answers as SECURE / INSECURE / BOGUS.
"""

from repro.dns.dnssec.records import DNSKEYRecord, DSRecord, RRSIGRecord
from repro.dns.dnssec.zone import SignedZone, ZoneTree
from repro.dns.dnssec.validator import SecurityStatus, ValidatingResolver

__all__ = [
    "DNSKEYRecord",
    "DSRecord",
    "RRSIGRecord",
    "SecurityStatus",
    "SignedZone",
    "ValidatingResolver",
    "ZoneTree",
]
