"""DNSSEC record types: DNSKEY, DS, RRSIG."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.digest import canonical_bytes, sha256_hex
from repro.crypto.keys import PublicKey


@dataclass(frozen=True)
class DNSKEYRecord:
    """A zone's public signing key."""

    zone: str
    public_key: PublicKey

    def key_tag(self) -> str:
        """Short identifier of the key (analogue of the RFC key tag)."""
        return self.public_key.fingerprint()[:16]


@dataclass(frozen=True)
class DSRecord:
    """Delegation Signer: the parent's commitment to a child key.

    The digest binds the child zone name and its DNSKEY, so swapping
    the child key breaks the chain unless the parent re-signs.
    """

    child_zone: str
    digest: str

    @classmethod
    def for_key(cls, dnskey: DNSKEYRecord) -> "DSRecord":
        blob = canonical_bytes(
            {"zone": dnskey.zone, "key": dnskey.public_key.to_dict()}
        )
        return cls(child_zone=dnskey.zone, digest=sha256_hex(blob))

    def matches(self, dnskey: DNSKEYRecord) -> bool:
        return (
            dnskey.zone == self.child_zone
            and DSRecord.for_key(dnskey).digest == self.digest
        )


@dataclass(frozen=True)
class RRSIGRecord:
    """A signature over one name's record set within a zone."""

    name: str            # the owner name (fqdn) the rrset belongs to
    zone: str            # signing zone
    covered_digest: str  # digest of the canonical rrset
    signature: int
    key_tag: str

    def signed_blob(self) -> bytes:
        return canonical_bytes(
            {
                "name": self.name,
                "zone": self.zone,
                "rrset": self.covered_digest,
            }
        )


def rrset_digest(name: str, records: Tuple[str, ...]) -> str:
    """Canonical digest of a record set (order-insensitive)."""
    return sha256_hex(
        canonical_bytes({"name": name, "records": sorted(records)})
    )
