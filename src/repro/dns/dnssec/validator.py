"""DNSSEC validation.

Given a :class:`~repro.dns.dnssec.zone.ZoneTree` and the root key as
trust anchor, :class:`ValidatingResolver` classifies an answer for a
name:

* **SECURE** — an unbroken DS/DNSKEY chain from the root to the
  authoritative zone, and a valid RRSIG over the answer's record set,
* **INSECURE** — the chain ends at an unsigned delegation before the
  authoritative zone (no DS), so no validation is possible,
* **BOGUS** — the chain or the signature exists but fails
  cryptographic checks (tampering, key mismatch, missing RRSIG).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

from repro.crypto.keys import PublicKey
from repro.crypto.rsa import verify
from repro.dns.dnssec.records import DNSKEYRecord, DSRecord, rrset_digest
from repro.dns.dnssec.zone import SignedZone, ZoneTree


class SecurityStatus(enum.Enum):
    SECURE = "secure"
    INSECURE = "insecure"
    BOGUS = "bogus"

    def __str__(self) -> str:
        return self.value


class ValidatingResolver:
    """Chain-of-trust validation over a zone tree."""

    def __init__(self, tree: ZoneTree, trust_anchor: Optional[PublicKey] = None):
        self._tree = tree
        # The pinned root key; defaults to the tree's actual root key,
        # tests can pin a wrong one to simulate anchor mismatch.
        if trust_anchor is None and tree.root.signed:
            trust_anchor = tree.root.keypair.public
        self._trust_anchor = trust_anchor

    # -- chain validation ---------------------------------------------------

    def authenticate_zone(self, zone_name: str) -> Tuple[SecurityStatus, Optional[SignedZone]]:
        """Authenticate the zone's key via the DS chain from the root."""
        chain = self._tree.chain_to(zone_name)
        if not chain:
            return SecurityStatus.INSECURE, None
        root = chain[0]
        if self._trust_anchor is None:
            return SecurityStatus.INSECURE, None
        if not root.signed or root.keypair.public != self._trust_anchor:
            return SecurityStatus.BOGUS, None
        parent = root
        for zone in chain[1:]:
            if not parent.signed:
                # Below an unsigned zone everything is insecure.
                return SecurityStatus.INSECURE, None
            ds = parent.ds_records.get(zone.name)
            if not zone.signed:
                if ds is not None:
                    # Parent promises a signed child, child is not:
                    # that's a downgrade attack, not plain insecurity.
                    return SecurityStatus.BOGUS, None
                return SecurityStatus.INSECURE, None
            if ds is None:
                # Signed child without a DS: island of security.
                return SecurityStatus.INSECURE, None
            if not ds.matches(zone.dnskey()):
                return SecurityStatus.BOGUS, None
            parent = zone
        return SecurityStatus.SECURE, chain[-1]

    # -- answer validation -----------------------------------------------------

    def validate(
        self, fqdn: str, records: Sequence[str]
    ) -> SecurityStatus:
        """Classify the answer ``records`` for ``fqdn``."""
        zone = self._tree.authoritative_zone(fqdn)
        status, authenticated = self.authenticate_zone(zone.name)
        if status is not SecurityStatus.SECURE:
            return status
        rrsig = authenticated.rrsigs.get(fqdn)
        if rrsig is None:
            # A secure zone must sign everything it serves.
            return SecurityStatus.BOGUS
        if rrsig.covered_digest != rrset_digest(fqdn, tuple(records)):
            return SecurityStatus.BOGUS
        if not verify(
            rrsig.signed_blob(), rrsig.signature, authenticated.keypair.public
        ):
            return SecurityStatus.BOGUS
        return SecurityStatus.SECURE

    def is_secure(self, fqdn: str, records: Sequence[str]) -> bool:
        return self.validate(fqdn, records) is SecurityStatus.SECURE
