"""Signed zones and the delegation tree.

A :class:`ZoneTree` models the DNS hierarchy root -> TLD -> domain
zone.  A zone may be *signed* (owns a key pair, publishes a DNSKEY,
and its parent — if itself signed — publishes a matching DS record)
or *unsigned* (a plain delegation, which makes everything below it
provably insecure rather than bogus).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import DeterministicRNG, KeyPair, generate_keypair
from repro.crypto.rsa import sign
from repro.dns.dnssec.records import (
    DNSKEYRecord,
    DSRecord,
    RRSIGRecord,
    rrset_digest,
)

DNSSEC_KEY_BITS = 512  # the smallest modulus that fits a SHA-256 PKCS#1 signature


class SignedZone:
    """One zone, signed or not."""

    def __init__(
        self,
        name: str,
        keypair: Optional[KeyPair] = None,
    ):
        self.name = name
        self.keypair = keypair
        self.ds_records: Dict[str, DSRecord] = {}   # child zone -> DS
        self.rrsigs: Dict[str, RRSIGRecord] = {}    # owner name -> RRSIG

    @property
    def signed(self) -> bool:
        return self.keypair is not None

    def dnskey(self) -> Optional[DNSKEYRecord]:
        if not self.signed:
            return None
        return DNSKEYRecord(zone=self.name, public_key=self.keypair.public)

    def publish_ds(self, child_key: DNSKEYRecord) -> None:
        """Parent-side: commit to a signed child's key."""
        if not self.signed:
            raise ValueError(f"unsigned zone {self.name!r} cannot publish DS")
        self.ds_records[child_key.zone] = DSRecord.for_key(child_key)

    def sign_rrset(self, owner: str, records: Sequence[str]) -> RRSIGRecord:
        """Sign the record set at ``owner`` with the zone key."""
        if not self.signed:
            raise ValueError(f"unsigned zone {self.name!r} cannot sign")
        digest = rrset_digest(owner, tuple(records))
        unsigned = RRSIGRecord(
            name=owner,
            zone=self.name,
            covered_digest=digest,
            signature=0,
            key_tag=self.dnskey().key_tag(),
        )
        signature = sign(unsigned.signed_blob(), self.keypair)
        rrsig = RRSIGRecord(
            name=owner,
            zone=self.name,
            covered_digest=digest,
            signature=signature,
            key_tag=unsigned.key_tag,
        )
        self.rrsigs[owner] = rrsig
        return rrsig

    def __repr__(self) -> str:
        state = "signed" if self.signed else "unsigned"
        return f"<SignedZone {self.name!r} {state}>"


class ZoneTree:
    """The zone hierarchy with a single root trust anchor."""

    def __init__(self, rng: DeterministicRNG, key_bits: int = DNSSEC_KEY_BITS):
        self._rng = rng.fork("dnssec")
        self._key_bits = key_bits
        self._zones: Dict[str, SignedZone] = {}
        self.root = self._create_zone("", signed=True)

    # -- construction ------------------------------------------------------

    def _create_zone(self, name: str, signed: bool) -> SignedZone:
        keypair = None
        if signed:
            keypair = generate_keypair(
                self._rng.fork(f"zone:{name}"), bits=self._key_bits
            )
        zone = SignedZone(name, keypair)
        self._zones[name] = zone
        return zone

    @staticmethod
    def parent_name(zone_name: str) -> Optional[str]:
        if zone_name == "":
            return None
        _label, _dot, rest = zone_name.partition(".")
        return rest  # "" == the root

    def add_zone(self, name: str, signed: bool) -> SignedZone:
        """Create a zone and link it below its (existing) parent.

        A signed child below a signed parent gets a DS record in the
        parent; below an unsigned parent the chain stays broken (an
        "island of security", which validators treat as insecure).
        """
        if name in self._zones:
            raise ValueError(f"zone {name!r} already exists")
        parent_name = self.parent_name(name)
        if parent_name not in self._zones:
            raise ValueError(f"parent zone {parent_name!r} missing for {name!r}")
        zone = self._create_zone(name, signed)
        parent = self._zones[parent_name]
        if signed and parent.signed:
            parent.publish_ds(zone.dnskey())
        return zone

    # -- queries ---------------------------------------------------------------

    def zone(self, name: str) -> Optional[SignedZone]:
        return self._zones.get(name)

    def zone_names(self) -> List[str]:
        return sorted(self._zones)

    def authoritative_zone(self, fqdn: str) -> SignedZone:
        """The most specific existing zone containing ``fqdn``."""
        candidate = fqdn
        while candidate not in self._zones:
            parent = self.parent_name(candidate)
            if parent is None:
                return self.root
            candidate = parent
        return self._zones[candidate]

    def chain_to(self, zone_name: str) -> List[SignedZone]:
        """Zones from the root down to ``zone_name`` (inclusive)."""
        chain: List[str] = []
        cursor: Optional[str] = zone_name
        while cursor is not None:
            if cursor in self._zones:
                chain.append(cursor)
            cursor = self.parent_name(cursor) if cursor else None
        return [self._zones[name] for name in reversed(chain)]

    def __len__(self) -> int:
        return len(self._zones)

    def __repr__(self) -> str:
        signed = sum(1 for z in self._zones.values() if z.signed)
        return f"<ZoneTree {len(self._zones)} zones, {signed} signed>"
