"""Exception hierarchy for the DNS substrate."""

from repro.errors import ReproError


class DNSError(ReproError):
    """Base class for DNS failures."""


class ResolutionError(DNSError):
    """A name could not be resolved (loop, chain too long, ...)."""
