"""Exception hierarchy for the DNS substrate."""


class DNSError(Exception):
    """Base class for DNS failures."""


class ResolutionError(DNSError):
    """A name could not be resolved (loop, chain too long, ...)."""
