"""The global record namespace.

Records may be *global* (same answer everywhere) or pinned to a
*vantage* label.  A CDN that serves European resolvers from a
different cache than Californian ones registers two vantage-specific
record sets under the same name; lookups fall back to the global set
when no vantage-specific records exist.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns.records import RecordType, ResourceRecord, normalise_name

GLOBAL_VANTAGE = ""


class Namespace:
    """All registered DNS records, indexed by (name, rtype, vantage)."""

    def __init__(self):
        self._records: Dict[Tuple[str, RecordType, str], List[ResourceRecord]] = {}
        self._names: set = set()

    def add(self, record: ResourceRecord, vantage: str = GLOBAL_VANTAGE) -> None:
        key = (record.name, record.rtype, vantage)
        self._records.setdefault(key, []).append(record)
        self._names.add(record.name)

    def add_address(
        self, name: str, address: str, vantage: str = GLOBAL_VANTAGE
    ) -> None:
        self.add(ResourceRecord.a(name, address), vantage)

    def add_cname(
        self, name: str, target: str, vantage: str = GLOBAL_VANTAGE
    ) -> None:
        self.add(ResourceRecord.cname(name, target), vantage)

    def lookup(
        self, name: str, rtype: RecordType, vantage: str = GLOBAL_VANTAGE
    ) -> List[ResourceRecord]:
        """Vantage-specific records when present, else global ones."""
        name = normalise_name(name)
        if vantage != GLOBAL_VANTAGE:
            specific = self._records.get((name, rtype, vantage))
            if specific:
                return list(specific)
        return list(self._records.get((name, rtype, GLOBAL_VANTAGE), ()))

    def remove_name(self, name: str) -> int:
        """Drop every record (all types, all vantages) at ``name``.

        Returns the number of records removed.  Used by the hosting
        churn model when a domain moves infrastructure.
        """
        name = normalise_name(name)
        doomed = [key for key in self._records if key[0] == name]
        removed = 0
        for key in doomed:
            removed += len(self._records.pop(key))
        self._names.discard(name)
        return removed

    def exists(self, name: str) -> bool:
        """True when any record type at any vantage mentions the name."""
        return normalise_name(name) in self._names

    def names(self) -> Iterator[str]:
        return iter(self._names)

    def content_items(self) -> List[Tuple[str, str, str, str]]:
        """Every record as a sorted ``(name, rtype, vantage, data)`` row.

        A canonical, order-insensitive view of the zone: two namespaces
        holding the same records yield the same list regardless of
        registration order, so the snapshot cache can digest it as the
        zone identity.
        """
        items: List[Tuple[str, str, str, str]] = []
        for (name, rtype, vantage), records in self._records.items():
            for record in records:
                data = (
                    record.target
                    if rtype is RecordType.CNAME
                    else str(record.address)
                )
                items.append((name, rtype.value, vantage, data))
        items.sort()
        return items

    def __len__(self) -> int:
        """Total number of registered records."""
        return sum(len(records) for records in self._records.values())

    def __repr__(self) -> str:
        return f"<Namespace {len(self._names)} names, {len(self)} records>"
