"""DNS resource records."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.net import Address
from repro.dns.errors import DNSError


class RecordType(enum.Enum):
    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"

    def __str__(self) -> str:
        return self.value


def normalise_name(name: str) -> str:
    """Lower-case and strip the trailing dot of a domain name."""
    name = name.strip().lower()
    if name.endswith("."):
        name = name[:-1]
    if not name:
        raise DNSError("empty domain name")
    return name


@dataclass(frozen=True)
class ResourceRecord:
    """One record: address data for A/AAAA, a target name for CNAME."""

    name: str
    rtype: RecordType
    address: Optional[Address] = None
    target: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "name", normalise_name(self.name))
        if self.rtype is RecordType.CNAME:
            if self.target is None or self.address is not None:
                raise DNSError(f"CNAME record for {self.name!r} needs a target")
            object.__setattr__(self, "target", normalise_name(self.target))
        else:
            if self.address is None or self.target is not None:
                raise DNSError(
                    f"{self.rtype} record for {self.name!r} needs an address"
                )
            expected_family = 4 if self.rtype is RecordType.A else 6
            if self.address.family != expected_family:
                raise DNSError(
                    f"{self.rtype} record for {self.name!r} has an "
                    f"IPv{self.address.family} address"
                )

    @classmethod
    def a(cls, name: str, address: Union[str, Address]) -> "ResourceRecord":
        if isinstance(address, str):
            address = Address.parse(address)
        rtype = RecordType.A if address.family == 4 else RecordType.AAAA
        return cls(name=name, rtype=rtype, address=address)

    @classmethod
    def cname(cls, name: str, target: str) -> "ResourceRecord":
        return cls(name=name, rtype=RecordType.CNAME, target=target)

    def __str__(self) -> str:
        value = self.target if self.rtype is RecordType.CNAME else str(self.address)
        return f"{self.name} {self.rtype} {value}"
