"""Recursive resolution with CNAME-chain following.

The resolver walks CNAME chains (bounded, loop-detected), collects the
terminal A/AAAA records, and reports the chain itself — the paper's
CDN heuristic classifies a domain as CDN-served when its address "is
indirectly accessed via two or more CNAMEs".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.dns.errors import ResolutionError
from repro.dns.namespace import GLOBAL_VANTAGE, Namespace
from repro.dns.records import RecordType, ResourceRecord, normalise_name
from repro.net import Address
from repro.obs.runtime import metrics

MAX_CHAIN_LENGTH = 16
DEFAULT_CACHE_SIZE = 65_536


class RCode(enum.Enum):
    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"

    def __str__(self) -> str:
        return self.value


@dataclass
class Answer:
    """The outcome of one resolution."""

    name: str
    rcode: RCode
    addresses: List[Address] = field(default_factory=list)
    cname_chain: List[str] = field(default_factory=list)  # targets, in order
    records: List[ResourceRecord] = field(default_factory=list)

    @property
    def cname_count(self) -> int:
        """Number of CNAME indirections traversed."""
        return len(self.cname_chain)

    @property
    def final_name(self) -> str:
        """The name the terminal address records live at."""
        return self.cname_chain[-1] if self.cname_chain else self.name

    def ok(self) -> bool:
        return self.rcode is RCode.NOERROR and bool(self.addresses)

    def __repr__(self) -> str:
        return (
            f"<Answer {self.name} {self.rcode} {len(self.addresses)} addrs "
            f"via {self.cname_count} CNAMEs>"
        )


class RecursiveResolver:
    """Resolves names against a :class:`Namespace` from one vantage.

    ``cache_size > 0`` enables a per-resolver answer cache (FIFO
    eviction, keyed by name and record types).  The cache is off by
    default because the namespace is mutable — callers that know
    their namespace is frozen (a built world) can turn it on.  Hits,
    misses, and evictions are counted in the active metrics registry.
    """

    def __init__(
        self,
        namespace: Namespace,
        vantage: str = GLOBAL_VANTAGE,
        cache_size: int = 0,
    ):
        self._namespace = namespace
        self.vantage = vantage
        self._cache_size = cache_size
        self._cache: dict = {}

    @property
    def namespace(self) -> Namespace:
        """The record namespace this resolver answers from."""
        return self._namespace

    def resolve(
        self,
        name: str,
        rtypes: Sequence[RecordType] = (RecordType.A, RecordType.AAAA),
    ) -> Answer:
        """Resolve ``name``, following CNAMEs, for the given types."""
        name = normalise_name(name)
        if self._cache_size:
            return self._resolve_cached(name, rtypes)
        return self._resolve(name, rtypes)

    def _resolve_cached(self, name: str, rtypes: Sequence[RecordType]) -> Answer:
        counters = metrics()
        key = (name, tuple(rtypes))
        hit = self._cache.get(key)
        if hit is not None:
            counters.counter(
                "ripki_dns_cache_hits_total", "Resolver answer-cache hits"
            ).inc()
            return _copy_answer(hit)
        counters.counter(
            "ripki_dns_cache_misses_total", "Resolver answer-cache misses"
        ).inc()
        answer = self._resolve(name, rtypes)
        if len(self._cache) >= self._cache_size:
            # FIFO eviction keeps behaviour deterministic.
            self._cache.pop(next(iter(self._cache)))
            counters.counter(
                "ripki_dns_cache_evictions_total", "Resolver answer-cache evictions"
            ).inc()
        self._cache[key] = _copy_answer(answer)
        return answer

    def cache_clear(self) -> None:
        self._cache.clear()

    def _resolve(self, name: str, rtypes: Sequence[RecordType]) -> Answer:
        answer = Answer(name=name, rcode=RCode.NOERROR)
        current = name
        seen = {current}
        for _hop in range(MAX_CHAIN_LENGTH + 1):
            cnames = self._namespace.lookup(current, RecordType.CNAME, self.vantage)
            if cnames:
                target = cnames[0].target
                answer.records.append(cnames[0])
                if target in seen:
                    raise ResolutionError(
                        f"CNAME loop at {target!r} while resolving {name!r}"
                    )
                seen.add(target)
                answer.cname_chain.append(target)
                current = target
                continue
            for rtype in rtypes:
                for record in self._namespace.lookup(current, rtype, self.vantage):
                    answer.records.append(record)
                    answer.addresses.append(record.address)
            break
        else:
            raise ResolutionError(
                f"CNAME chain longer than {MAX_CHAIN_LENGTH} for {name!r}"
            )
        if not answer.addresses:
            # The rcode belongs to the *final* name of the chain: a
            # CNAME owner always exists, but a chain ending at a name
            # with no records is NXDOMAIN (a dangling CNAME), exactly
            # as a real recursive resolver reports it.
            known = self._namespace.exists(answer.final_name)
            answer.rcode = RCode.NOERROR if known else RCode.NXDOMAIN
        counters = metrics()
        if counters.enabled:
            counters.histogram(
                "ripki_dns_cname_hops",
                "CNAME indirections per resolution (CDN heuristic input)",
                buckets=(0, 1, 2, 3, 4, 8, 16),
            ).observe(answer.cname_count)
        return answer


def _copy_answer(answer: Answer) -> Answer:
    """Shallow-copy an answer so cache entries stay immutable."""
    return Answer(
        name=answer.name,
        rcode=answer.rcode,
        addresses=list(answer.addresses),
        cname_chain=list(answer.cname_chain),
        records=list(answer.records),
    )
