"""Public resolver vantage points.

The paper resolves the Alexa list via Google DNS, verifies with Open
DNS and the ``us01`` node of the DNS Looking Glass, and cross-checks
the CDN classification against HTTPArchive's monitoring agent in
Redwood City.  :class:`PublicResolver` models one such service: a
named resolver bound to a geographic vantage label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dns.namespace import Namespace
from repro.dns.resolver import Answer, RecursiveResolver


@dataclass(frozen=True)
class ResolverSpec:
    """Identity of a public resolver service."""

    name: str
    vantage: str


# The paper's three verification vantage points plus HTTPArchive's.
GOOGLE_DNS = ResolverSpec("GoogleDNS", "berlin")
OPEN_DNS = ResolverSpec("OpenDNS", "berlin")
LOOKING_GLASS_US01 = ResolverSpec("DNSLookingGlass-us01", "us-east")
HTTPARCHIVE_AGENT = ResolverSpec("HTTPArchive", "redwood-city")

DEFAULT_RESOLVERS = (GOOGLE_DNS, OPEN_DNS, LOOKING_GLASS_US01)


class PublicResolver:
    """A named public resolver over the shared namespace."""

    def __init__(
        self, namespace: Namespace, spec: ResolverSpec, cache_size: int = 0
    ):
        self.spec = spec
        self._resolver = RecursiveResolver(
            namespace, vantage=spec.vantage, cache_size=cache_size
        )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def vantage(self) -> str:
        return self.spec.vantage

    @property
    def namespace(self) -> Namespace:
        """The record namespace the resolver answers from."""
        return self._resolver.namespace

    def resolve(self, name: str) -> Answer:
        return self._resolver.resolve(name)

    def __repr__(self) -> str:
        return f"<PublicResolver {self.name} @ {self.vantage}>"


def make_resolvers(
    namespace: Namespace, specs: Sequence[ResolverSpec] = DEFAULT_RESOLVERS
) -> List[PublicResolver]:
    """Instantiate the default verification resolver set."""
    return [PublicResolver(namespace, spec) for spec in specs]
