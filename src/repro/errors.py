"""The root of the substrate exception hierarchy (``repro.errors``).

Every substrate package historically grew its own disjoint exception
base (``DNSError``, ``BGPError``, ``CryptoError``, ``NetError``,
``RPKIError``, ``RTRError``).  The resilience layer needs *one*
catchable surface — a retry loop cannot enumerate every substrate —
so all of those bases now derive from :class:`ReproError`, and each
package re-exports it::

    from repro.dns import ReproError   # same class everywhere
    try:
        measure(...)
    except ReproError:                 # catches any substrate failure
        ...

Two refinements matter to the retry machinery:

* :class:`TransientFault` marks failures that are *worth retrying* —
  injected faults and (in a live deployment) network-weather errors.
  Deterministic protocol errors (a CNAME loop, a malformed PDU) stay
  plain ``ReproError`` subtypes: retrying them cannot help.
* :class:`RetryExhausted` is what the retry layer raises when it
  gives up; it carries the attribution the degradation accounting
  records (key, attempt count, backoff budget spent, last cause).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Root of every substrate failure in the reproduction."""


class TransientFault(ReproError):
    """A failure that may succeed on retry (injected or environmental)."""


class RetryExhausted(ReproError):
    """The retry layer gave up on one call; the outcome is *degraded*."""

    def __init__(
        self,
        key: str,
        attempts: int,
        cause: Optional[BaseException] = None,
        budget_spent: float = 0.0,
    ):
        super().__init__(
            f"gave up on {key!r} after {attempts} attempt(s): {cause}"
        )
        self.key = key
        self.attempts = attempts
        self.cause = cause
        self.budget_spent = budget_spent


__all__ = ["ReproError", "RetryExhausted", "TransientFault"]
