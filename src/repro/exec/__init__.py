"""Parallel sharded execution of the measurement study (``repro.exec``).

The ROADMAP's production-scale pipeline walks the full top-1M as
fast as the hardware allows.  This package supplies the execution
engine: :func:`plan_shards` cuts an Alexa ranking into contiguous
rank chunks, :func:`execute_study` fans steps 2-4 out through a
pluggable :mod:`scheduler <repro.exec.scheduler>` (serial, thread,
process pool, or long-lived framed workers), and the merge layer
folds per-shard statistics, metric registries, and trace spans back
into one :class:`~repro.core.pipeline.StudyResult` that is
bit-identical to the serial run.  Shard results cross process
boundaries in the compact wire form of :mod:`repro.exec.codec`;
the ``workers`` backend wraps that codec in the framed job protocol
of :mod:`repro.exec.jobs` (JobSpec out, JobResult back) with
work-stealing, per-job deadlines, and straggler re-dispatch.
"""

from repro.exec.codec import (
    decode_measurements,
    decode_name,
    decode_statistics,
    encode_measurements,
    encode_name,
    encode_statistics,
)
from repro.exec.executor import (
    MODES,
    ShardOutcome,
    execute_study,
    merge_statistics,
    run_shard,
)
from repro.exec.jobs import (
    DEFAULT_JOB_DEADLINE_S,
    MAX_FRAME_SIZE,
    JobProtocolError,
    JobResult,
    JobSpec,
    decode_frames,
    encode_frame,
)
from repro.exec.scheduler import (
    SCHEDULER_BACKENDS,
    SchedulerError,
    SchedulerReport,
    scheduler_for,
)
from repro.exec.sharding import (
    MAX_SHARD_SIZE,
    Batch,
    Shard,
    default_shard_size,
    plan_batches,
    plan_shards,
)

__all__ = [
    "Batch",
    "DEFAULT_JOB_DEADLINE_S",
    "JobProtocolError",
    "JobResult",
    "JobSpec",
    "MAX_FRAME_SIZE",
    "MAX_SHARD_SIZE",
    "MODES",
    "SCHEDULER_BACKENDS",
    "SchedulerError",
    "SchedulerReport",
    "Shard",
    "ShardOutcome",
    "decode_frames",
    "decode_measurements",
    "decode_name",
    "decode_statistics",
    "default_shard_size",
    "encode_frame",
    "encode_measurements",
    "encode_name",
    "encode_statistics",
    "execute_study",
    "merge_statistics",
    "plan_batches",
    "plan_shards",
    "run_shard",
    "scheduler_for",
]
