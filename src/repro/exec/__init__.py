"""Parallel sharded execution of the measurement study (``repro.exec``).

The ROADMAP's production-scale pipeline walks the full top-1M as
fast as the hardware allows.  This package supplies the execution
engine: :func:`plan_shards` cuts an Alexa ranking into contiguous
rank chunks, :func:`execute_study` fans steps 2-4 out to a worker
pool (process, thread, or serial backend), and the merge layer folds
per-shard statistics, metric registries, and trace spans back into
one :class:`~repro.core.pipeline.StudyResult` that is bit-identical
to the serial run.  Shard results cross the process boundary in the
compact wire form of :mod:`repro.exec.codec`.
"""

from repro.exec.codec import (
    decode_measurements,
    decode_name,
    decode_statistics,
    encode_measurements,
    encode_name,
    encode_statistics,
)
from repro.exec.executor import (
    MODES,
    ShardOutcome,
    execute_study,
    merge_statistics,
    run_shard,
)
from repro.exec.sharding import (
    MAX_SHARD_SIZE,
    Batch,
    Shard,
    default_shard_size,
    plan_batches,
    plan_shards,
)

__all__ = [
    "Batch",
    "MAX_SHARD_SIZE",
    "MODES",
    "Shard",
    "ShardOutcome",
    "decode_measurements",
    "decode_name",
    "decode_statistics",
    "default_shard_size",
    "encode_measurements",
    "encode_name",
    "encode_statistics",
    "execute_study",
    "merge_statistics",
    "plan_batches",
    "plan_shards",
    "run_shard",
]
