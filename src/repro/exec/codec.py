"""Compact wire format for shard results crossing process boundaries.

Measurement records are object-heavy: every :class:`~repro.net.Address`
and :class:`~repro.net.Prefix` is a ``__slots__`` instance, every
:class:`~repro.core.records.NameMeasurement` an eight-field dataclass.
Pickling them naively ships one state dict per object, and the parent
process pays the reconstruction cost serially while its workers sit
idle — at 20k domains that deserialisation dominates the parallel
wall-clock.  Encoding each measurement as nested tuples of primitives
roughly halves the payload and the parent-side decode time.

Two invariants make the codec safe and exact:

* values are lifted from objects that were already validated on
  construction inside the worker, so decoding rebuilds them through
  ``__new__`` without re-running the parse/range checks;
* :class:`~repro.web.alexa.Domain` objects never cross the boundary
  at all — the parent re-attaches its *own* domain objects (the same
  ones the serial run would use) from the shard plan, which both
  shrinks the payload and preserves object identity with the serial
  result.

``decode_measurements(encode_measurements(ms), domains) == ms`` holds
exactly; the round-trip is covered by ``tests/test_exec_parallel.py``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.pipeline import StudyStatistics
from repro.core.records import (
    DomainMeasurement,
    NameMeasurement,
    PrefixOriginPair,
)
from repro.net import ASN, Address, Prefix
from repro.rpki.vrp import OriginValidation
from repro.web.alexa import Domain

# One NameMeasurement as primitives: (name, resolved, addresses,
# excluded_special, unreachable, as_set_excluded, cnames, pairs,
# degraded_stage, retries, faults) with addresses = [(family, value)],
# pairs = [(family, value, length, origin, state-value)], and
# faults = [(kind, count)].
WireName = Tuple[str, bool, list, int, int, int, int, list, str, int, list]
WireMeasurement = Tuple[WireName, WireName]

# StudyStatistics as primitives: the integer fields in declaration
# order, then each mapping field (faults_by_kind and the three
# cache-by-stage dicts) as sorted (key, count) pairs.
WireStatistics = Tuple[
    int, int, int, int, int, int, int, int, int, int, list, list, list, list
]


def _encode_name(measurement: NameMeasurement) -> WireName:
    return (
        measurement.name,
        measurement.resolved,
        [(a._family, a._value) for a in measurement.addresses],
        measurement.excluded_special,
        measurement.unreachable_addresses,
        measurement.as_set_excluded,
        measurement.cname_count,
        [
            (
                pair.prefix._family,
                pair.prefix._value,
                pair.prefix._length,
                int(pair.origin),
                pair.state.value,
            )
            for pair in measurement.pairs
        ],
        measurement.degraded_stage,
        measurement.retries,
        [(kind, count) for kind, count in measurement.faults],
    )


def _decode_name(wire: WireName) -> NameMeasurement:
    (
        name,
        resolved,
        addresses,
        excluded,
        unreachable,
        as_set,
        cnames,
        pairs,
        degraded_stage,
        retries,
        faults,
    ) = wire
    measurement = NameMeasurement.__new__(NameMeasurement)
    measurement.name = name
    measurement.resolved = resolved
    decoded_addresses = []
    for family, value in addresses:
        address = Address.__new__(Address)
        address._family = family
        address._value = value
        decoded_addresses.append(address)
    measurement.addresses = decoded_addresses
    measurement.excluded_special = excluded
    measurement.unreachable_addresses = unreachable
    measurement.as_set_excluded = as_set
    measurement.cname_count = cnames
    decoded_pairs = []
    for family, value, length, origin, state in pairs:
        prefix = Prefix.__new__(Prefix)
        prefix._family = family
        prefix._value = value
        prefix._length = length
        decoded_pairs.append(
            PrefixOriginPair(prefix, ASN(origin), OriginValidation(state))
        )
    measurement.pairs = decoded_pairs
    measurement.degraded_stage = degraded_stage
    measurement.retries = retries
    measurement.faults = tuple((kind, count) for kind, count in faults)
    return measurement


def encode_measurements(
    measurements: Sequence[DomainMeasurement],
) -> List[WireMeasurement]:
    """Flatten measurements to primitives; domains are *not* included."""
    return [
        (_encode_name(m.www), _encode_name(m.plain)) for m in measurements
    ]


def decode_measurements(
    encoded: Sequence[WireMeasurement], domains: Sequence[Domain]
) -> List[DomainMeasurement]:
    """Rebuild measurements, re-attaching the caller's domain objects.

    ``domains`` must be the shard's domain sequence in rank order —
    the same order :func:`encode_measurements` saw on the other side.
    """
    if len(encoded) != len(domains):
        raise ValueError(
            f"{len(encoded)} encoded measurements for {len(domains)} domains"
        )
    measurements = []
    for (www, plain), domain in zip(encoded, domains):
        measurement = DomainMeasurement.__new__(DomainMeasurement)
        measurement.domain = domain
        measurement.www = _decode_name(www)
        measurement.plain = _decode_name(plain)
        measurements.append(measurement)
    return measurements


def encode_statistics(stats: StudyStatistics) -> WireStatistics:
    """Flatten shard statistics to primitives for the wire."""
    return (
        stats.domain_count,
        stats.invalid_dns_domains,
        stats.www_addresses,
        stats.plain_addresses,
        stats.www_pairs,
        stats.plain_pairs,
        stats.unreachable_addresses,
        stats.as_set_exclusions,
        stats.degraded_domains,
        stats.retries_total,
        sorted(stats.faults_by_kind.items()),
        sorted(stats.cache_hits_by_stage.items()),
        sorted(stats.cache_misses_by_stage.items()),
        sorted(stats.cache_invalidated_by_stage.items()),
    )


def decode_statistics(wire: WireStatistics) -> StudyStatistics:
    """Rebuild shard statistics; exact inverse of :func:`encode_statistics`."""
    *counts, faults, hits, misses, invalidated = wire
    return StudyStatistics(
        *counts,
        faults_by_kind=dict(faults),
        cache_hits_by_stage=dict(hits),
        cache_misses_by_stage=dict(misses),
        cache_invalidated_by_stage=dict(invalidated),
    )


# Public aliases: the snapshot cache stores whole-form measurements in
# exactly this wire form (one artifact per name form on fault runs).
encode_name = _encode_name
decode_name = _decode_name
