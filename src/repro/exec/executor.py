"""Parallel execution of the four-step study over rank shards.

:func:`execute_study` splits the ranking into contiguous shards,
runs steps 2-4 for every shard on a worker pool, and merges the
per-shard outcomes back into one :class:`StudyResult` that is
bit-identical to the serial run:

* **measurement order** — shards are contiguous rank chunks and the
  merge concatenates them in shard order, so the measurement list is
  the serial walk;
* **statistics** — every :class:`StudyStatistics` field is an
  integer sum over domains, so summing per-shard statistics in any
  order reproduces the serial accumulation exactly;
* **metrics** — each shard worker records into its own scoped
  registry (:class:`repro.obs.runtime.thread_scope`); the per-shard
  registries are merged into the caller's active registry, and all
  funnel counters are integer-valued, so
  ``pipeline_statistics(result, registry)`` cross-checks cleanly;
* **trace spans** — per-shard collectors are grafted under the run's
  root span via :meth:`TraceCollector.absorb`.

Four backends share one shard-runner code path, dispatched through
the pluggable schedulers of :mod:`repro.exec.scheduler`:

* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`,
  true parallelism; the study (resolver, table dump, payloads) is
  shipped to each worker once via the pool initializer,
* ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`;
  no pickling, workers share the study object.  The GIL serialises
  the pure-Python funnel, so this backend exists for determinism
  tests and for a future IO-bound (live DNS) resolver,
* ``serial`` — the shard pipeline on the calling thread, for
  debugging the sharded path itself,
* ``workers`` — N long-lived forked worker processes speaking the
  length-prefixed JSON job protocol (:mod:`repro.exec.jobs`) with
  work-stealing, per-job deadlines, and straggler re-dispatch.

``auto`` resolves to ``process`` when ``workers > 1``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.pipeline import (
    _STAT_HELP,
    _register_funnel_counters,
    RUN_MODES,
    MeasurementStudy,
    ProgressSink,
    RunConfig,
    StudyResult,
    StudyStatistics,
    accumulate_measurement,
    measure_domain,
)
from repro.core.records import DomainMeasurement
from repro.exec.codec import (
    encode_measurements,
    encode_statistics,
)
from repro.exec.sharding import Shard, plan_shards
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.runtime import (
    metrics,
    observability_enabled,
    thread_scope,
    tracer,
)
from repro.obs.tracing import Span, TraceCollector

MODES = RUN_MODES

# Deep v6 tries nest one node per prefix bit; give pickle headroom
# when shipping the study to process workers.
_PICKLE_RECURSION_LIMIT = 20_000


@dataclass
class ShardOutcome:
    """Everything one shard run produced, ready to merge."""

    index: int
    measurements: List[DomainMeasurement]
    statistics: StudyStatistics
    metrics: Optional[MetricsRegistry] = None
    spans: List[Span] = field(default_factory=list)
    dropped_spans: int = 0
    # Fresh snapshot-cache artifacts (stage -> key -> entry) on
    # cache-backed runs; adopted by the parent's session in shard order.
    cache_entries: Optional[dict] = None


def merge_statistics(parts) -> StudyStatistics:
    """Sum per-shard statistics; every field is additive over domains."""
    total = StudyStatistics()
    for part in parts:
        total.domain_count += part.domain_count
        total.invalid_dns_domains += part.invalid_dns_domains
        total.www_addresses += part.www_addresses
        total.plain_addresses += part.plain_addresses
        total.www_pairs += part.www_pairs
        total.plain_pairs += part.plain_pairs
        total.unreachable_addresses += part.unreachable_addresses
        total.as_set_exclusions += part.as_set_exclusions
        total.degraded_domains += part.degraded_domains
        total.retries_total += part.retries_total
        for kind, count in sorted(part.faults_by_kind.items()):
            total.faults_by_kind[kind] = (
                total.faults_by_kind.get(kind, 0) + count
            )
        for field_name in (
            "cache_hits_by_stage",
            "cache_misses_by_stage",
            "cache_invalidated_by_stage",
        ):
            merged = getattr(total, field_name)
            for stage_key, count in sorted(getattr(part, field_name).items()):
                merged[stage_key] = merged.get(stage_key, 0) + count
    return total


def run_shard(
    study: MeasurementStudy,
    shard: Shard,
    observe: bool,
    config: Optional[RunConfig] = None,
    session=None,
) -> ShardOutcome:
    """Steps 2-4 for one shard, recorded into shard-local sinks.

    When ``observe`` is set the shard gets a fresh registry and trace
    collector installed thread-locally, so concurrent shards never
    interleave into one instrument and the outcomes merge
    deterministically in shard order.

    A resilient ``config`` (one carrying a fault plan) routes the
    shard through a fresh :class:`~repro.core.resilience.ResilientFunnel`;
    fault decisions are pure functions of the plan, so per-shard
    funnels reproduce the serial run's outcomes exactly.  A cache
    ``session`` additionally wraps the shard in a
    :class:`~repro.cache.funnel.CachedFunnel`, which serves validated
    artifacts and collects fresh ones into ``cache_entries``.
    """
    resilient = config is not None and config.resilient
    cached = session is not None
    registry = MetricsRegistry() if observe else None
    collector = TraceCollector() if observe else None
    measurements: List[DomainMeasurement] = []
    stats = StudyStatistics(domain_count=len(shard))
    funnel = study.resilient_funnel(config) if resilient else None
    if cached:
        from repro.cache.funnel import CachedFunnel

        funnel = CachedFunnel(
            study.resolver,
            study.table_dump,
            study.payloads,
            session,
            inner=funnel,
        )
    with thread_scope(registry, collector):
        counters = metrics()
        if observe:
            _register_funnel_counters(
                counters, resilient=resilient, cached=cached
            )
        measured = counters.counter(
            "ripki_domains_measured_total",
            _STAT_HELP["ripki_domains_measured_total"],
        )
        with tracer().span(
            "shard.run", shard=shard.index, domains=len(shard)
        ):
            for domain in shard.domains:
                if funnel is not None:
                    measurement = funnel.measure_domain(domain)
                else:
                    measurement = measure_domain(
                        study.resolver, study.table_dump, study.payloads, domain
                    )
                measurements.append(measurement)
                accumulate_measurement(stats, measurement)
                measured.inc()
    if cached:
        stats.cache_hits_by_stage = dict(funnel.hits)
        stats.cache_misses_by_stage = dict(funnel.misses)
    return ShardOutcome(
        index=shard.index,
        measurements=measurements,
        statistics=stats,
        metrics=registry,
        spans=collector.spans() if collector is not None else [],
        dropped_spans=collector.dropped if collector is not None else 0,
        cache_entries=funnel.fresh if cached else None,
    )


# -- process-pool plumbing ----------------------------------------------------

# One study per worker process, installed by the pool initializer so
# the (large) resolver/table-dump/payload state is pickled once per
# worker instead of once per shard.  The config crosses the boundary
# progress-stripped (the sink is the one non-picklable field; ticks
# happen parent-side anyway).
_WORKER_STUDY: Optional[MeasurementStudy] = None
_WORKER_OBSERVE: bool = False
_WORKER_CONFIG: Optional[RunConfig] = None
_WORKER_SESSION = None


def _init_process_worker(
    study: MeasurementStudy,
    observe: bool,
    config: Optional[RunConfig] = None,
    session=None,
) -> None:
    global _WORKER_STUDY, _WORKER_OBSERVE, _WORKER_CONFIG, _WORKER_SESSION
    sys.setrecursionlimit(max(sys.getrecursionlimit(), _PICKLE_RECURSION_LIMIT))
    _WORKER_STUDY = study
    _WORKER_OBSERVE = observe
    _WORKER_CONFIG = config
    _WORKER_SESSION = session


def _process_shard(shard: Shard):
    """Run one shard and return it in wire form.

    Measurements and statistics go back to the parent through the
    codec (:mod:`repro.exec.codec`) instead of as pickled record
    objects — the parent deserialises results on one thread, and the
    compact form halves that bottleneck.  Domains are re-attached
    parent-side from the shard plan.
    """
    assert _WORKER_STUDY is not None, "worker initializer did not run"
    outcome = run_shard(
        _WORKER_STUDY, shard, _WORKER_OBSERVE, _WORKER_CONFIG, _WORKER_SESSION
    )
    return (
        outcome.index,
        encode_measurements(outcome.measurements),
        encode_statistics(outcome.statistics),
        outcome.metrics,
        outcome.spans,
        outcome.dropped_spans,
        outcome.cache_entries,
    )


# -- the engine ---------------------------------------------------------------


def execute_study(
    study: MeasurementStudy,
    workers: int = 1,
    mode: str = "auto",
    shard_size: Optional[int] = None,
    progress: Optional[ProgressSink] = None,
    config: Optional[RunConfig] = None,
) -> StudyResult:
    """Run the study sharded; the result equals the serial run's.

    ``config`` bundles every knob (and is what
    :meth:`MeasurementStudy.run` passes); the loose keywords build an
    equivalent config when it is omitted.  The progress sink receives
    batched ticks — one ``tick(len(shard))`` per completed shard, in
    completion order.
    """
    if config is None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        config = RunConfig(
            workers=max(1, int(workers)),
            mode=mode,
            shard_size=shard_size,
            progress=progress,
        )
    workers = config.workers
    shard_size = config.shard_size
    resolved = config.mode
    if resolved == "auto":
        resolved = "process" if workers > 1 else "serial"

    session = None
    if config.cache is not None:
        from repro.cache.session import CacheSession

        session = CacheSession.open(config.cache.directory, study, config)

    observe = observability_enabled()
    registry = metrics()
    trace = tracer()
    if observe:
        _register_funnel_counters(
            registry, resilient=config.resilient, cached=session is not None
        )
        if session is not None:
            session.record_invalidation(registry)

    reporter = _make_reporter(config.progress, total=len(study.ranking))
    ticker: Callable[[Shard], None] = (
        (lambda shard: reporter.tick(len(shard)))
        if reporter is not None
        else (lambda shard: None)
    )

    with trace.span(
        "study.run",
        domains=len(study.ranking),
        workers=workers,
        mode=resolved,
    ) as root:
        with trace.span("stage.rank", domains=len(study.ranking)):
            domains = list(study.ranking)
        shards = plan_shards(domains, shard_size=shard_size, workers=workers)
        from repro.exec.scheduler import scheduler_for

        scheduler = scheduler_for(resolved, config)
        outcomes, scheduler_report = scheduler.run(
            study, shards, observe, ticker, session
        )
        outcomes.sort(key=lambda outcome: outcome.index)
        measurements = [
            measurement
            for outcome in outcomes
            for measurement in outcome.measurements
        ]
        stats = merge_statistics(outcome.statistics for outcome in outcomes)
        if session is not None:
            stats.cache_invalidated_by_stage = session.invalidated
            for outcome in outcomes:
                if outcome.cache_entries is not None:
                    session.adopt(outcome.cache_entries)
            session.save()
        if observe:
            parent_id = root.span_id if root is not None else None
            for outcome in outcomes:
                if outcome.metrics is not None and registry.enabled:
                    registry.merge(outcome.metrics)
                trace.absorb(
                    outcome.spans,
                    parent_id=parent_id,
                    dropped=outcome.dropped_spans,
                )
    if reporter is not None:
        reporter.done()
    result = StudyResult(measurements, stats)
    result.scheduler_report = scheduler_report
    return result


def _make_reporter(
    progress: Optional[ProgressSink], total: int
) -> Optional[ProgressReporter]:
    if progress is None:
        return None
    if isinstance(progress, ProgressReporter):
        return progress
    return ProgressReporter(total=total, callback=progress)


