"""Job protocol: framed JobSpec/JobResult envelopes over byte streams.

The sharded executor's wire codec (:mod:`repro.exec.codec`) already
makes shard results primitives-only; this module promotes it to a
full job protocol so shards can cross *any* byte stream — a socket
pair to a forked worker, the stdio of a ``ripki worker`` process on
another box — not just a pickle channel inside one process pool.

Framing is 4-byte big-endian length + UTF-8 JSON.  The decoder is
incremental (feed it whatever ``recv`` returned, get back every
complete frame plus the unconsumed remainder) and hostile-input
hardened in the same way :mod:`repro.rtr.codec` is: an oversize
length prefix, a zero-length frame, or garbage that is not JSON all
raise :class:`JobProtocolError` — a typed error the scheduler maps
to *quarantine the worker*, never to a corrupted merge.

Two envelopes cross the stream:

* :class:`JobSpec` — parent → worker: which contiguous slice of the
  ranking to run (``start``/``count``; the domains themselves never
  travel — the worker holds the same study and slices it), the
  dispatch attempt, the frozen :class:`~repro.core.pipeline.RunConfig`
  in primitive form, and the study's input digests (zone / dump /
  VRPs / config — the snapshot cache's fingerprints) so a worker
  holding a *different* world refuses the job instead of silently
  computing the wrong answer;
* :class:`JobResult` — worker → parent: the shard outcome in wire
  form (encoded measurements + statistics via :mod:`repro.exec.codec`,
  the metric delta via :func:`repro.obs.metrics.registry_to_wire`,
  trace spans, fresh cache entries), tagged with the job id, shard
  index, attempt, and worker id so the scheduler can resolve
  duplicate completions deterministically by shard index.

Everything here is JSON-safe by construction: tuples become lists on
the wire, and every decoder on the return path (``decode_measurements``,
``decode_statistics``, ``registry_from_wire``, ``CacheSession.adopt``)
already accepts list-shaped input, so a JSON round-trip is exact.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import RunConfig
from repro.errors import ReproError
from repro.exec.codec import (
    decode_measurements,
    decode_statistics,
    encode_measurements,
    encode_statistics,
)
from repro.exec.sharding import Shard
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs.metrics import registry_from_wire, registry_to_wire
from repro.obs.tracing import Span

# Length prefix: 4-byte unsigned big-endian, like the RTR framing.
_PREFIX = struct.Struct(">I")
PREFIX_SIZE = _PREFIX.size

# A 5k-domain shard's encoded measurements run a few MB of JSON;
# 256 MiB leaves two orders of magnitude of headroom while still
# rejecting a garbage prefix (which reads as ~4 GiB) instantly.
MAX_FRAME_SIZE = 1 << 28

# Default per-job deadline for the workers backend; generous enough
# that only a genuinely wedged worker trips it on synthetic worlds.
# Both the scheduler (expiry) and the stall injector (how long to
# oversleep) key off this, so it lives at the protocol layer.
DEFAULT_JOB_DEADLINE_S = 30.0


class JobProtocolError(ReproError):
    """A frame violated the job protocol (oversize, truncated, not JSON)."""


def encode_frame(payload: dict) -> bytes:
    """One length-prefixed JSON frame for ``payload``."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_SIZE:
        raise JobProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_SIZE "
            f"({MAX_FRAME_SIZE})"
        )
    return _PREFIX.pack(len(body)) + body


def decode_frames(buffer: bytes) -> Tuple[List[dict], bytes]:
    """Every complete frame in ``buffer`` plus the unconsumed tail.

    Incremental: call with whatever bytes have arrived so far; a
    partial frame (short prefix or short body) is left in the
    remainder for the next call.  Raises :class:`JobProtocolError`
    on a frame that can never become valid — an oversize or
    zero-length prefix, a body that is not UTF-8 JSON, or a JSON
    payload that is not an object.
    """
    frames: List[dict] = []
    offset = 0
    view = memoryview(buffer)
    while len(view) - offset >= PREFIX_SIZE:
        (length,) = _PREFIX.unpack_from(view, offset)
        if length == 0:
            raise JobProtocolError("zero-length frame")
        if length > MAX_FRAME_SIZE:
            raise JobProtocolError(
                f"frame length {length} exceeds MAX_FRAME_SIZE "
                f"({MAX_FRAME_SIZE})"
            )
        if len(view) - offset - PREFIX_SIZE < length:
            break  # body still in flight
        body = bytes(view[offset + PREFIX_SIZE:offset + PREFIX_SIZE + length])
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise JobProtocolError(f"frame body is not JSON: {error}") from None
        if not isinstance(payload, dict):
            raise JobProtocolError(
                f"frame payload must be an object, got {type(payload).__name__}"
            )
        frames.append(payload)
        offset += PREFIX_SIZE + length
    return frames, bytes(view[offset:])


def read_frame(stream) -> Optional[dict]:
    """Blocking read of one frame from a file-like binary ``stream``.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`JobProtocolError` on EOF mid-frame or a malformed frame.
    Used by the stdio worker (``ripki worker``); the scheduler side
    uses the incremental :func:`decode_frames` under a selector.
    """
    prefix = stream.read(PREFIX_SIZE)
    if not prefix:
        return None
    if len(prefix) < PREFIX_SIZE:
        raise JobProtocolError("EOF inside frame length prefix")
    (length,) = _PREFIX.unpack(prefix)
    if length == 0 or length > MAX_FRAME_SIZE:
        raise JobProtocolError(f"invalid frame length {length}")
    body = b""
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            raise JobProtocolError(
                f"EOF after {len(body)} of {length} frame bytes"
            )
        body += chunk
    frames, rest = decode_frames(prefix + body)
    assert not rest and len(frames) == 1
    return frames[0]


# -- RunConfig over the wire --------------------------------------------------


def encode_config(config: RunConfig) -> dict:
    """A :class:`RunConfig` as primitives (progress sink stripped)."""
    retry = config.retry
    faults = config.faults
    return {
        "workers": config.workers,
        "mode": config.mode,
        "shard_size": config.shard_size,
        "job_deadline_s": config.job_deadline_s,
        "retry": {
            "max_attempts": retry.max_attempts,
            "backoff_base": retry.backoff_base,
            "backoff_multiplier": retry.backoff_multiplier,
            "backoff_max": retry.backoff_max,
            "jitter": retry.jitter,
            "stage_budget": retry.stage_budget,
        },
        "faults": None if faults is None else {
            "seed": faults.seed,
            "rates": [[kind, rate] for kind, rate in faults.rates],
            "max_consecutive": faults.max_consecutive,
        },
    }


def decode_config(wire: dict) -> RunConfig:
    """Exact inverse of :func:`encode_config` (no progress, no cache)."""
    try:
        retry = RetryPolicy(**wire["retry"])
        faults = wire["faults"]
        plan = None if faults is None else FaultPlan(
            seed=faults["seed"],
            rates=tuple((kind, rate) for kind, rate in faults["rates"]),
            max_consecutive=faults["max_consecutive"],
        )
        return RunConfig(
            workers=wire["workers"],
            mode=wire["mode"],
            shard_size=wire["shard_size"],
            job_deadline_s=wire.get("job_deadline_s"),
            retry=retry,
            faults=plan,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise JobProtocolError(f"malformed config: {error}") from None


# -- trace spans over the wire ------------------------------------------------


def encode_spans(spans) -> List[list]:
    """Spans as 7-field lists; attributes must already be JSON-safe."""
    return [
        [s.name, s.span_id, s.parent_id, s.attributes, s.start, s.end, s.error]
        for s in spans
    ]


def decode_spans(wire) -> List[Span]:
    """Exact inverse of :func:`encode_spans`."""
    try:
        return [
            Span(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                attributes=dict(attributes),
                start=start,
                end=end,
                error=error,
            )
            for name, span_id, parent_id, attributes, start, end, error in wire
        ]
    except (TypeError, ValueError) as error:
        raise JobProtocolError(f"malformed spans: {error}") from None


# -- the envelopes ------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """Parent → worker: run this contiguous slice of the ranking."""

    job_id: int
    shard_index: int
    start: int             # offset of the shard's first domain in the ranking
    count: int             # domains in the shard
    attempt: int = 0       # 0-based dispatch attempt (bumps on re-dispatch)
    observe: bool = False  # collect a metric delta + trace spans
    digests: Dict[str, str] = field(default_factory=dict)
    config: Optional[dict] = None  # encode_config() form

    def to_wire(self) -> dict:
        return {
            "type": "job",
            "job_id": self.job_id,
            "shard_index": self.shard_index,
            "start": self.start,
            "count": self.count,
            "attempt": self.attempt,
            "observe": self.observe,
            "digests": dict(self.digests),
            "config": self.config,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "JobSpec":
        if wire.get("type") != "job":
            raise JobProtocolError(
                f"expected a job frame, got {wire.get('type')!r}"
            )
        try:
            spec = cls(
                job_id=wire["job_id"],
                shard_index=wire["shard_index"],
                start=wire["start"],
                count=wire["count"],
                attempt=wire["attempt"],
                observe=bool(wire.get("observe", False)),
                digests=dict(wire["digests"]),
                config=wire.get("config"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise JobProtocolError(f"malformed job spec: {error}") from None
        if spec.start < 0 or spec.count < 1 or spec.attempt < 0:
            raise JobProtocolError(
                f"job spec out of range: start={spec.start} "
                f"count={spec.count} attempt={spec.attempt}"
            )
        return spec


@dataclass(frozen=True)
class JobResult:
    """Worker → parent: one shard outcome in wire form."""

    job_id: int
    shard_index: int
    attempt: int
    worker_id: int
    measurements: list         # encode_measurements() form
    statistics: list           # encode_statistics() form
    metrics: Optional[list]    # registry_to_wire() form
    spans: list                # encode_spans() form
    dropped_spans: int = 0
    cache_entries: Optional[dict] = None

    def to_wire(self) -> dict:
        return {
            "type": "result",
            "job_id": self.job_id,
            "shard_index": self.shard_index,
            "attempt": self.attempt,
            "worker_id": self.worker_id,
            "measurements": self.measurements,
            "statistics": self.statistics,
            "metrics": self.metrics,
            "spans": self.spans,
            "dropped_spans": self.dropped_spans,
            "cache_entries": self.cache_entries,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "JobResult":
        if wire.get("type") != "result":
            raise JobProtocolError(
                f"expected a result frame, got {wire.get('type')!r}"
            )
        try:
            return cls(
                job_id=wire["job_id"],
                shard_index=wire["shard_index"],
                attempt=wire["attempt"],
                worker_id=wire["worker_id"],
                measurements=wire["measurements"],
                statistics=wire["statistics"],
                metrics=wire.get("metrics"),
                spans=wire.get("spans") or [],
                dropped_spans=wire.get("dropped_spans", 0),
                cache_entries=wire.get("cache_entries"),
            )
        except (KeyError, TypeError) as error:
            raise JobProtocolError(f"malformed job result: {error}") from None

    @classmethod
    def from_outcome(
        cls, spec: JobSpec, worker_id: int, outcome
    ) -> "JobResult":
        """Wrap a :class:`~repro.exec.executor.ShardOutcome` for the wire."""
        return cls(
            job_id=spec.job_id,
            shard_index=outcome.index,
            attempt=spec.attempt,
            worker_id=worker_id,
            measurements=encode_measurements(outcome.measurements),
            statistics=list(encode_statistics(outcome.statistics)),
            metrics=(
                registry_to_wire(outcome.metrics)
                if outcome.metrics is not None
                else None
            ),
            spans=encode_spans(outcome.spans),
            dropped_spans=outcome.dropped_spans,
            cache_entries=outcome.cache_entries,
        )

    def to_outcome(self, shard: Shard):
        """Rebuild the :class:`~repro.exec.executor.ShardOutcome`.

        ``shard`` must be the parent's own plan entry for this index —
        its domain objects are re-attached exactly as the process-pool
        path does, preserving object identity with the serial result.
        """
        from repro.exec.executor import ShardOutcome

        if self.shard_index != shard.index:
            raise JobProtocolError(
                f"result for shard {self.shard_index} decoded against "
                f"shard {shard.index}"
            )
        try:
            measurements = decode_measurements(self.measurements, shard.domains)
            statistics = decode_statistics(self.statistics)
            registry = (
                registry_from_wire(self.metrics)
                if self.metrics is not None
                else None
            )
            spans = decode_spans(self.spans)
        except JobProtocolError:
            raise
        except Exception as error:  # any codec-shape violation
            raise JobProtocolError(
                f"undecodable result for shard {shard.index}: {error}"
            ) from None
        return ShardOutcome(
            index=shard.index,
            measurements=measurements,
            statistics=statistics,
            metrics=registry,
            spans=spans,
            dropped_spans=self.dropped_spans,
            cache_entries=self.cache_entries,
        )


def error_frame(worker_id: int, message: str, job_id: Optional[int] = None) -> dict:
    """Worker → parent: a typed refusal (digest mismatch, bad spec)."""
    return {
        "type": "error",
        "worker_id": worker_id,
        "job_id": job_id,
        "message": message,
    }


def hello_frame(worker_id: int, digests: Dict[str, str]) -> dict:
    """Worker → parent: identity + input digests, sent once on start."""
    return {"type": "hello", "worker_id": worker_id, "digests": dict(digests)}
