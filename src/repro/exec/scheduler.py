"""Pluggable shard schedulers: inproc, process pool, framed workers.

:func:`repro.exec.executor.execute_study` plans shards and merges
outcomes; *how* shards reach compute is this module's job.  Three
interchangeable backends satisfy one contract — ``run()`` returns
every shard's :class:`~repro.exec.executor.ShardOutcome` exactly once
plus a :class:`SchedulerReport` of the dispatch accounting — and all
three produce bit-identical study results because the shard runner
and the shard-order merge never change:

* :class:`InprocScheduler` — the serial loop and the thread pool;
* :class:`PoolScheduler` — the classic ``ProcessPoolExecutor`` path
  (study shipped once per worker by the pool initializer, results
  back through the pickle channel in codec wire form);
* :class:`WorkerScheduler` — N long-lived forked worker processes
  speaking length-prefixed JSON frames (:mod:`repro.exec.jobs`) over
  socket pairs, with a work-stealing queue, per-job deadlines, and
  straggler re-dispatch.

The workers backend is the distributed substrate: each worker slot
owns a contiguous block of the shard list, idle workers drain their
own block front-first and steal from the *tail* of the longest
remaining block (classic work stealing — the victim keeps its cache-
warm front).  A job unanswered past its deadline is re-dispatched to
the next idle worker with the attempt bumped; the straggler's late
answer becomes a *duplicate completion*, resolved deterministically
by shard index — first answer per shard wins, and because the same
shard produces the same bytes on any worker and any attempt, the
winner is irrelevant to the merged result.  Worker death (EOF) and
protocol garbage (quarantine) follow the same re-dispatch path with
the worker slot respawned.  If *every* slot is overdue at once —
a genuinely wedged fleet, e.g. ``--workers 1`` with a worker that
never answers — the longest-overdue worker is force-replaced so the
re-dispatched shards always find a live slot instead of the select
loop blocking forever.  Re-dispatch backoff reuses
:class:`repro.faults.RetryPolicy` in virtual time: the budget each
straggler *would* have cost is accounted in the report, never slept.

Injected scheduler faults (``worker.crash`` / ``worker.stall`` /
``worker.garbage``, see :mod:`repro.faults.plan`) are decided by the
seeded plan per ``(shard, attempt)`` and always recover within
``max_consecutive`` attempts, so the dispatch-attempt cap —
``max(retry.max_attempts, max_consecutive + 1)`` — only ever fires
on a genuinely wedged job.
"""

from __future__ import annotations

import collections
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.exec.jobs import (
    DEFAULT_JOB_DEADLINE_S,
    JobProtocolError,
    JobResult,
    JobSpec,
    decode_frames,
    encode_config,
    encode_frame,
)
from repro.exec.sharding import Shard
from repro.exec.worker import connection_worker, job_key, study_digests

SCHEDULER_BACKENDS = ("inproc", "pool", "workers")

_RECV_CHUNK = 1 << 16


class SchedulerError(ReproError):
    """The scheduler could not deliver every shard exactly once."""


@dataclass
class SchedulerReport:
    """Dispatch accounting for one scheduled run.

    Deliberately *not* part of the study result's equality or of the
    run's metric registry: how shards were scheduled is operational
    telemetry, exported only on request via :meth:`to_metrics` so a
    scheduled run's Prometheus text stays byte-identical to serial.
    """

    backend: str
    workers: int
    jobs_total: int = 0
    dispatched: int = 0
    completed: int = 0
    redispatched: int = 0
    duplicates: int = 0
    stolen: int = 0
    worker_deaths: int = 0
    quarantined: int = 0
    respawns: int = 0
    deadline_s: Optional[float] = None
    backoff_virtual_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "jobs_total": self.jobs_total,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "redispatched": self.redispatched,
            "duplicates": self.duplicates,
            "stolen": self.stolen,
            "worker_deaths": self.worker_deaths,
            "quarantined": self.quarantined,
            "respawns": self.respawns,
            "deadline_s": self.deadline_s,
            "backoff_virtual_s": self.backoff_virtual_s,
        }

    def to_metrics(self, registry) -> None:
        """Export ``ripki_jobs_*`` into ``registry`` (explicit only)."""
        counters = (
            ("ripki_jobs_total", "Shards planned for dispatch",
             self.jobs_total),
            ("ripki_jobs_dispatched_total", "Job frames dispatched",
             self.dispatched),
            ("ripki_jobs_completed_total", "Shards completed exactly once",
             self.completed),
            ("ripki_jobs_redispatched_total",
             "Re-dispatches after deadline expiry, death, or quarantine",
             self.redispatched),
            ("ripki_jobs_duplicate_results_total",
             "Late straggler answers dropped by shard index",
             self.duplicates),
            ("ripki_jobs_stolen_total",
             "Jobs stolen from another worker's queue", self.stolen),
            ("ripki_jobs_worker_deaths_total",
             "Worker connections lost mid-run", self.worker_deaths),
            ("ripki_jobs_quarantined_workers_total",
             "Workers quarantined for protocol garbage", self.quarantined),
            ("ripki_jobs_worker_respawns_total",
             "Replacement workers spawned", self.respawns),
        )
        for name, help, value in counters:
            registry.counter(name, help).inc(value)
        registry.gauge(
            "ripki_jobs_workers", "Worker slots the scheduler ran"
        ).set(self.workers)
        if self.deadline_s is not None:
            registry.gauge(
                "ripki_jobs_deadline_seconds", "Per-job dispatch deadline"
            ).set(self.deadline_s)
        registry.gauge(
            "ripki_jobs_backoff_virtual_seconds",
            "Re-dispatch backoff accounted in virtual time, never slept",
        ).set(self.backoff_virtual_s)


class Completions:
    """Deterministic exactly-once completion book, keyed by shard index.

    The first answer for a shard wins; later answers (stragglers that
    beat their replacement, or vice versa) are counted as duplicates
    and dropped.  Because any worker's answer for a shard is
    bit-identical, which copy wins cannot affect the merged result —
    this book just guarantees the merge sees each index exactly once.
    """

    def __init__(self):
        self._done: Dict[int, object] = {}
        self.duplicates = 0

    def offer(self, index: int, outcome) -> bool:
        """Record ``outcome`` for ``index``; False if already done."""
        if index in self._done:
            self.duplicates += 1
            return False
        self._done[index] = outcome
        return True

    def __contains__(self, index: int) -> bool:
        return index in self._done

    def __len__(self) -> int:
        return len(self._done)

    def outcomes(self) -> List[object]:
        return [self._done[index] for index in sorted(self._done)]


def scheduler_for(mode: str, config):
    """The scheduler backend for a resolved run mode."""
    if mode in ("serial", "thread"):
        return InprocScheduler(config, threaded=(mode == "thread"))
    if mode == "process":
        return PoolScheduler(config)
    if mode == "workers":
        return WorkerScheduler(config)
    raise SchedulerError(f"no scheduler backend for mode {mode!r}")


class InprocScheduler:
    """Serial loop or thread pool inside the calling process."""

    backend = "inproc"

    def __init__(self, config, threaded: bool = False):
        self.config = config
        self.threaded = threaded

    def run(self, study, shards, observe, ticker, session=None):
        import concurrent.futures

        from repro.exec.executor import run_shard

        config = self.config
        outcomes: List[object] = []
        if not self.threaded:
            for shard in shards:
                outcomes.append(
                    run_shard(study, shard, observe, config, session)
                )
                ticker(shard)
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=config.workers, thread_name_prefix="ripki-shard"
            ) as pool:
                futures = {
                    pool.submit(
                        run_shard, study, shard, observe, config, session
                    ): shard
                    for shard in shards
                }
                for future in concurrent.futures.as_completed(futures):
                    outcomes.append(future.result())
                    ticker(futures[future])
        report = SchedulerReport(
            backend=self.backend,
            workers=config.workers if self.threaded else 1,
            jobs_total=len(shards),
            dispatched=len(shards),
            completed=len(shards),
        )
        return outcomes, report


class PoolScheduler:
    """The classic ``ProcessPoolExecutor`` path, codec wire form back."""

    backend = "pool"

    def run(self, study, shards, observe, ticker, session=None):
        import concurrent.futures
        import sys

        from repro.exec.codec import decode_measurements, decode_statistics
        from repro.exec.executor import (
            _PICKLE_RECURSION_LIMIT,
            _init_process_worker,
            _process_shard,
            ShardOutcome,
        )

        config = self.config
        previous_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(previous_limit, _PICKLE_RECURSION_LIMIT))
        outcomes: List[object] = []
        shipped = config.without_progress() if config is not None else None
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=config.workers,
                initializer=_init_process_worker,
                initargs=(study, observe, shipped, session),
            ) as pool:
                futures = {
                    pool.submit(_process_shard, shard): shard
                    for shard in shards
                }
                for future in concurrent.futures.as_completed(futures):
                    shard = futures[future]
                    (
                        index,
                        encoded,
                        stats,
                        registry,
                        spans,
                        dropped,
                        cache_entries,
                    ) = future.result()
                    outcomes.append(
                        ShardOutcome(
                            index=index,
                            measurements=decode_measurements(
                                encoded, shard.domains
                            ),
                            statistics=decode_statistics(stats),
                            metrics=registry,
                            spans=spans,
                            dropped_spans=dropped,
                            cache_entries=cache_entries,
                        )
                    )
                    ticker(shard)
        finally:
            sys.setrecursionlimit(previous_limit)
        report = SchedulerReport(
            backend=self.backend,
            workers=config.workers,
            jobs_total=len(shards),
            dispatched=len(shards),
            completed=len(shards),
        )
        return outcomes, report

    def __init__(self, config):
        self.config = config


class _WorkerSlot:
    """Parent-side state for one worker process + its socket."""

    __slots__ = ("slot", "worker_id", "process", "conn", "buffer",
                 "job", "overdue")

    def __init__(self, slot: int, worker_id: int, process, conn):
        self.slot = slot            # queue the worker drains by default
        self.worker_id = worker_id  # unique across respawns
        self.process = process
        self.conn = conn
        self.buffer = b""
        # (shard_index, attempt, deadline, job_id) while busy.
        self.job: Optional[Tuple[int, int, float, int]] = None
        self.overdue = False


class WorkerScheduler:
    """N long-lived forked workers over framed sockets, work-stealing."""

    backend = "workers"

    def __init__(self, config):
        self.config = config

    def run(self, study, shards, observe, ticker, session=None):
        import multiprocessing
        import selectors
        import socket

        config = self.config
        count = max(1, config.workers)
        deadline_s = (
            config.job_deadline_s
            if config.job_deadline_s is not None
            else DEFAULT_JOB_DEADLINE_S
        )
        faults = config.faults
        attempt_cap = config.retry.max_attempts
        if faults is not None:
            attempt_cap = max(attempt_cap, faults.max_consecutive + 1)

        report = SchedulerReport(
            backend=self.backend,
            workers=count,
            jobs_total=len(shards),
            deadline_s=deadline_s,
        )
        if not shards:
            return [], report

        shipped = config.without_progress()
        digests = study_digests(study, config)
        wire_config = encode_config(shipped)
        by_index: Dict[int, Shard] = {shard.index: shard for shard in shards}
        offsets: Dict[int, int] = {}
        offset = 0
        for shard in shards:
            offsets[shard.index] = offset
            offset += len(shard)

        # Each slot owns a contiguous block of the shard list; the
        # urgent deque holds re-dispatches, served before any block.
        per_slot = -(-len(shards) // count)
        queues = [
            collections.deque(
                shard.index
                for shard in shards[slot * per_slot:(slot + 1) * per_slot]
            )
            for slot in range(count)
        ]
        urgent: collections.deque = collections.deque()
        attempts: Dict[int, int] = {shard.index: 0 for shard in shards}
        pending = set(by_index)
        completions = Completions()
        job_ids = itertools.count(1)
        worker_ids = itertools.count(0)

        ctx = multiprocessing.get_context("fork")
        sel = selectors.DefaultSelector()
        slots: List[_WorkerSlot] = []

        def spawn(slot_index: int) -> _WorkerSlot:
            parent_conn, child_conn = socket.socketpair()
            worker_id = next(worker_ids)
            siblings = tuple(state.conn for state in slots)
            process = ctx.Process(
                target=connection_worker,
                args=(child_conn, worker_id, study, digests, shipped,
                      session, siblings),
                daemon=True,
                name=f"ripki-worker-{worker_id}",
            )
            process.start()
            child_conn.close()
            state = _WorkerSlot(slot_index, worker_id, process, parent_conn)
            sel.register(parent_conn, selectors.EVENT_READ, state)
            return state

        def retire(state: _WorkerSlot) -> None:
            try:
                sel.unregister(state.conn)
            except (KeyError, ValueError):
                pass
            try:
                state.conn.close()
            except OSError:
                pass

        def requeue(shard_index: int, why: str) -> None:
            if shard_index not in pending or shard_index in urgent:
                return
            attempts[shard_index] += 1
            if attempts[shard_index] >= attempt_cap:
                raise SchedulerError(
                    f"shard {shard_index} exceeded {attempt_cap} dispatch "
                    f"attempts (last: {why})"
                )
            report.redispatched += 1
            report.backoff_virtual_s += config.retry.backoff_for(
                job_key(shard_index), attempts[shard_index] - 1
            )
            urgent.append(shard_index)

        def replace(state: _WorkerSlot, why: str) -> None:
            """Death/quarantine: retire the slot, requeue, respawn."""
            retire(state)
            if state.process.is_alive():
                state.process.terminate()
            state.process.join(timeout=5)
            slots.remove(state)
            if state.job is not None and not state.overdue:
                requeue(state.job[0], why)
            state.job = None
            report.respawns += 1
            slots.append(spawn(state.slot))

        def take_job(state: _WorkerSlot) -> Optional[int]:
            while urgent:
                candidate = urgent.popleft()
                if candidate in pending:
                    return candidate
            own = queues[state.slot]
            if own:
                return own.popleft()
            victim = max(queues, key=len)
            if victim:
                report.stolen += 1
                return victim.pop()
            return None

        def dispatch(state: _WorkerSlot) -> bool:
            shard_index = take_job(state)
            if shard_index is None:
                return False
            shard = by_index[shard_index]
            spec = JobSpec(
                job_id=next(job_ids),
                shard_index=shard_index,
                start=offsets[shard_index],
                count=len(shard),
                attempt=attempts[shard_index],
                observe=observe,
                digests=digests,
                config=wire_config,
            )
            try:
                state.conn.sendall(encode_frame(spec.to_wire()))
            except OSError:
                urgent.appendleft(shard_index)
                report.worker_deaths += 1
                replace(state, "send failed")
                return True
            state.job = (
                shard_index,
                spec.attempt,
                time.monotonic() + deadline_s,
                spec.job_id,
            )
            state.overdue = False
            report.dispatched += 1
            return True

        def release(state: _WorkerSlot, result: JobResult) -> None:
            if state.job is not None and state.job[3] == result.job_id:
                state.job = None
                state.overdue = False

        def complete(state: _WorkerSlot, result: JobResult) -> None:
            shard_index = result.shard_index
            if shard_index not in by_index:
                raise SchedulerError(
                    f"worker {result.worker_id} answered unknown shard "
                    f"{shard_index}"
                )
            if shard_index not in pending:
                release(state, result)
                completions.offer(shard_index, None)  # counted duplicate
                return
            # Decode before releasing the slot: if the body violates
            # the codec, the JobProtocolError must reach replace()
            # with state.job still set so the in-flight shard is
            # requeued rather than stranded in pending forever.
            outcome = result.to_outcome(by_index[shard_index])
            release(state, result)
            completions.offer(shard_index, outcome)
            pending.discard(shard_index)
            report.completed += 1
            ticker(by_index[shard_index])

        def on_frame(state: _WorkerSlot, frame: dict) -> None:
            kind = frame.get("type")
            if kind == "result":
                complete(state, JobResult.from_wire(frame))
            elif kind == "error":
                raise SchedulerError(
                    f"worker {frame.get('worker_id')} refused job "
                    f"{frame.get('job_id')}: {frame.get('message')}"
                )
            elif kind == "hello":
                pass  # stdio workers announce themselves; forked ones don't
            else:
                raise JobProtocolError(f"unexpected frame type {kind!r}")

        try:
            slots.extend(spawn(slot) for slot in range(count))
            while pending:
                for state in list(slots):
                    if state.job is None and not dispatch(state):
                        break
                busy = [
                    state.job[2]
                    for state in slots
                    if state.job is not None and not state.overdue
                ]
                if not busy:
                    # Every in-flight job is overdue (an idle slot
                    # would already have drained the urgent deque at
                    # the loop top), so select would block forever on
                    # workers that may never answer while the
                    # re-dispatched shards sit unsendable.  Break the
                    # wedge: kill the longest-overdue worker — its
                    # shard was requeued when the deadline expired —
                    # and let the respawn drain the urgent queue.
                    wedged = min(
                        (s for s in slots if s.job is not None),
                        key=lambda s: s.job[2],
                        default=None,
                    )
                    if wedged is None:
                        raise SchedulerError(
                            f"{len(pending)} shards pending with no "
                            f"in-flight job and no queued work"
                        )
                    report.worker_deaths += 1
                    replace(wedged, "wedged past deadline")
                    continue
                timeout = max(0.0, min(busy) - time.monotonic())
                for key, _events in sel.select(timeout):
                    state = key.data
                    try:
                        data = state.conn.recv(_RECV_CHUNK)
                    except OSError:
                        data = b""
                    if not data:
                        report.worker_deaths += 1
                        replace(state, "worker died")
                        continue
                    state.buffer += data
                    try:
                        frames, state.buffer = decode_frames(state.buffer)
                    except JobProtocolError:
                        report.quarantined += 1
                        replace(state, "protocol garbage")
                        continue
                    try:
                        for frame in frames:
                            on_frame(state, frame)
                    except JobProtocolError:
                        report.quarantined += 1
                        replace(state, "undecodable result")
                        continue
                now = time.monotonic()
                for state in slots:
                    if (
                        state.job is not None
                        and not state.overdue
                        and now >= state.job[2]
                    ):
                        requeue(state.job[0], "deadline expired")
                        state.overdue = True
        finally:
            for state in slots:
                try:
                    state.conn.sendall(encode_frame({"type": "shutdown"}))
                except OSError:
                    pass
                retire(state)
            for state in slots:
                state.process.join(timeout=2)
                if state.process.is_alive():
                    state.process.terminate()
                    state.process.join(timeout=2)
            sel.close()

        report.duplicates = completions.duplicates
        if len(completions) != len(shards):
            raise SchedulerError(
                f"scheduler completed {len(completions)} of "
                f"{len(shards)} shards"
            )
        return completions.outcomes(), report
