"""Sharding an Alexa-style ranking into contiguous rank chunks.

A *shard* is one contiguous slice of the ranked domain list.  Shards
are the unit of work the parallel executor hands to workers, and
contiguity is what makes the merge trivially order-preserving:
concatenating per-shard measurement lists in shard order reproduces
the serial walk exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.web.alexa import Domain

# Above this many domains per shard a straggler shard dominates the
# wall clock; below a few hundred the per-shard overhead (pickling,
# registry setup) starts to show.  The default planner aims for a few
# shards per worker inside these bounds.
MAX_SHARD_SIZE = 5_000
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class Shard:
    """One contiguous chunk of the ranking."""

    index: int                   # 0-based shard position
    domains: Tuple[Domain, ...]  # rank-ordered slice

    @property
    def start_rank(self) -> int:
        return self.domains[0].rank

    @property
    def end_rank(self) -> int:
        return self.domains[-1].rank

    def __len__(self) -> int:
        return len(self.domains)

    def __repr__(self) -> str:
        return (
            f"<Shard {self.index}: ranks "
            f"{self.start_rank}-{self.end_rank} ({len(self)} domains)>"
        )


def default_shard_size(domain_count: int, workers: int) -> int:
    """A shard size giving each worker several shards to balance load."""
    if domain_count <= 0:
        return 1
    target = math.ceil(domain_count / max(1, workers * SHARDS_PER_WORKER))
    return max(1, min(MAX_SHARD_SIZE, target))


def plan_shards(
    domains: Sequence[Domain],
    shard_size: Optional[int] = None,
    workers: int = 1,
) -> List[Shard]:
    """Split ``domains`` into contiguous shards of ``shard_size``.

    ``domains`` must already be in the order the study walks them
    (rank order); the plan never reorders.  When ``shard_size`` is
    omitted it is derived from ``workers`` via
    :func:`default_shard_size`.
    """
    if shard_size is not None and shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    size = shard_size or default_shard_size(len(domains), workers)
    shards: List[Shard] = []
    for index, start in enumerate(range(0, len(domains), size)):
        shards.append(
            Shard(index=index, domains=tuple(domains[start:start + size]))
        )
    return shards
