"""Batching ordered work lists into contiguous chunks.

A *batch* is one contiguous slice of any ordered work list; a *shard*
is the domain-specific batch the study executor hands to workers (a
slice of the ranked domain list).  Batches are the unit of parallel
dispatch everywhere — the study executor and the serving layer's
query dispatcher plan with the same function — and contiguity is what
makes every merge trivially order-preserving: concatenating per-batch
outputs in batch order reproduces the serial walk exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.web.alexa import Domain

T = TypeVar("T")

# Above this many domains per shard a straggler shard dominates the
# wall clock; below a few hundred the per-shard overhead (pickling,
# registry setup) starts to show.  The default planner aims for a few
# shards per worker inside these bounds.
MAX_SHARD_SIZE = 5_000
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class Batch(Generic[T]):
    """One contiguous chunk of an ordered work list."""

    index: int            # 0-based batch position
    items: Tuple[T, ...]  # order-preserving slice
    offset: int = 0       # index of items[0] in the original list

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return (
            f"<Batch {self.index}: items "
            f"{self.offset}-{self.offset + len(self) - 1} ({len(self)})>"
        )


@dataclass(frozen=True)
class Shard:
    """One contiguous chunk of the ranking."""

    index: int                   # 0-based shard position
    domains: Tuple[Domain, ...]  # rank-ordered slice

    @property
    def start_rank(self) -> int:
        return self.domains[0].rank

    @property
    def end_rank(self) -> int:
        return self.domains[-1].rank

    def __len__(self) -> int:
        return len(self.domains)

    def __repr__(self) -> str:
        return (
            f"<Shard {self.index}: ranks "
            f"{self.start_rank}-{self.end_rank} ({len(self)} domains)>"
        )


def default_shard_size(domain_count: int, workers: int) -> int:
    """A shard size giving each worker several shards to balance load."""
    if domain_count <= 0:
        return 1
    target = math.ceil(domain_count / max(1, workers * SHARDS_PER_WORKER))
    return max(1, min(MAX_SHARD_SIZE, target))


def plan_batches(
    items: Sequence[T],
    batch_size: Optional[int] = None,
    workers: int = 1,
) -> List[Batch[T]]:
    """Split ``items`` into contiguous batches of ``batch_size``.

    ``items`` must already be in the order the caller walks them; the
    plan never reorders.  When ``batch_size`` is omitted it is
    derived from ``workers`` via :func:`default_shard_size`, so query
    dispatch and study sharding balance load the same way.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    size = batch_size or default_shard_size(len(items), workers)
    batches: List[Batch[T]] = []
    for index, start in enumerate(range(0, len(items), size)):
        batches.append(
            Batch(
                index=index,
                items=tuple(items[start:start + size]),
                offset=start,
            )
        )
    return batches


def plan_shards(
    domains: Sequence[Domain],
    shard_size: Optional[int] = None,
    workers: int = 1,
) -> List[Shard]:
    """Split ``domains`` into contiguous shards of ``shard_size``.

    ``domains`` must already be in the order the study walks them
    (rank order); the plan never reorders.  When ``shard_size`` is
    omitted it is derived from ``workers`` via
    :func:`default_shard_size`.
    """
    return [
        Shard(index=batch.index, domains=batch.items)
        for batch in plan_batches(domains, shard_size, workers)
    ]
