"""Worker side of the job protocol: a frame-serving shard runner.

One loop serves every transport: the ``workers`` scheduler forks N
children and hands each a socket pair (the study crosses by fork
memory, never by pickle); ``ripki worker`` runs the same loop over
stdin/stdout after building its own world, so a scheduler on another
machine can drive it through any byte pipe.

Per job the worker: checks the spec's input digests against its own
(a worker holding a different world refuses with a typed error frame
instead of silently measuring the wrong population), consults the
fault plan's execution kinds (crash / stall / garbage — the seeded
schedule the scheduler's re-dispatch machinery must mask), runs the
shard through the exact :func:`repro.exec.executor.run_shard` path
every other backend uses, and replies with a :class:`JobResult`
frame.  Determinism therefore needs no new argument: the same shard
produces the same bytes no matter which worker, attempt, or backend
ran it.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.exec.jobs import (
    DEFAULT_JOB_DEADLINE_S,
    JobProtocolError,
    JobResult,
    JobSpec,
    decode_config,
    encode_frame,
    error_frame,
    hello_frame,
    read_frame,
)
from repro.exec.sharding import Shard
from repro.faults.plan import (
    WORKER_CRASH,
    WORKER_GARBAGE,
    WORKER_STALL,
)

# Exit codes distinguish injected deaths from real crashes in logs.
CRASH_EXIT = 17
GARBAGE_EXIT = 18

# How far past the deadline an injected straggler sleeps: long enough
# that the re-dispatched copy wins, short enough to keep tests quick.
# Unlike the re-dispatch backoff (virtual time, never slept), a stall
# is necessarily real wall clock — missing the deadline *is* the
# fault — so the overshoot beyond the deadline is capped at an
# absolute ceiling: with the default 30 s deadline a stall costs at
# most deadline + STALL_OVERSHOOT_MAX_S, not 75 s.  Pair
# ``unreliable-workers`` with a short ``--job-deadline`` to keep
# stalls cheap.
STALL_FACTOR = 2.5
STALL_OVERSHOOT_MAX_S = 2.0


def job_key(shard_index: int) -> str:
    """The fault-plan site key for one shard's dispatch."""
    return f"shard:{shard_index}"


def _maybe_inject(spec: JobSpec, config, writer) -> None:
    """Apply the plan's execution-kind decision for this dispatch.

    Crash and garbage never return; stall sleeps past the deadline
    and returns so the late (duplicate) answer still goes out.
    """
    faults = config.faults if config is not None else None
    if faults is None:
        return
    key = job_key(spec.shard_index)
    if faults.should_fail(WORKER_CRASH, key, spec.attempt):
        os._exit(CRASH_EXIT)
    if faults.should_fail(WORKER_GARBAGE, key, spec.attempt):
        # An impossible length prefix: decodes as ~4 GiB, far past
        # MAX_FRAME_SIZE, so the parent quarantines immediately.
        writer.write(b"\xff\xff\xff\xff" + b"garbage")
        writer.flush()
        os._exit(GARBAGE_EXIT)
    if faults.should_fail(WORKER_STALL, key, spec.attempt):
        deadline = (
            config.job_deadline_s
            if config.job_deadline_s is not None
            else DEFAULT_JOB_DEADLINE_S
        )
        time.sleep(min(
            STALL_FACTOR * deadline,
            deadline + STALL_OVERSHOOT_MAX_S,
        ))


def serve_stream(
    reader,
    writer,
    worker_id: int,
    study,
    digests: Dict[str, str],
    config=None,
    session=None,
    hello: bool = False,
) -> int:
    """Serve job frames from ``reader`` until clean EOF.

    ``config``/``session`` are the fork-inherited defaults; a spec
    carrying its own encoded config overrides the former.  Returns
    the number of jobs answered.
    """
    from repro.exec.executor import run_shard

    if hello:
        writer.write(encode_frame(hello_frame(worker_id, digests)))
        writer.flush()
    domains = list(study.ranking)
    answered = 0
    while True:
        try:
            frame = read_frame(reader)
        except JobProtocolError:
            return answered  # parent vanished mid-frame; nothing to save
        if frame is None or frame.get("type") == "shutdown":
            return answered
        try:
            spec = JobSpec.from_wire(frame)
        except JobProtocolError as error:
            writer.write(encode_frame(error_frame(worker_id, str(error))))
            writer.flush()
            continue
        mismatched = {
            key: value
            for key, value in spec.digests.items()
            if key in digests and digests[key] != value
        }
        if mismatched:
            writer.write(encode_frame(error_frame(
                worker_id,
                f"digest mismatch on {sorted(mismatched)}: "
                f"worker holds a different world",
                job_id=spec.job_id,
            )))
            writer.flush()
            continue
        if spec.start + spec.count > len(domains):
            writer.write(encode_frame(error_frame(
                worker_id,
                f"shard [{spec.start}, {spec.start + spec.count}) outside "
                f"ranking of {len(domains)}",
                job_id=spec.job_id,
            )))
            writer.flush()
            continue
        job_config = (
            decode_config(spec.config) if spec.config is not None else config
        )
        _maybe_inject(spec, job_config, writer)
        shard = Shard(
            index=spec.shard_index,
            domains=tuple(domains[spec.start:spec.start + spec.count]),
        )
        outcome = run_shard(study, shard, spec.observe, job_config, session)
        result = JobResult.from_outcome(spec, worker_id, outcome)
        writer.write(encode_frame(result.to_wire()))
        writer.flush()
        answered += 1


def study_digests(study, config) -> Dict[str, str]:
    """The snapshot-cache fingerprints of the study's inputs.

    Exactly the digest set :meth:`CacheSession.open` and the
    telemetry health card compute, so every layer describing the same
    world agrees byte for byte.
    """
    from repro.cache.fingerprint import (
        config_fingerprint,
        dump_digest,
        vrp_digest,
        vrp_items,
        zone_digest,
    )

    return {
        "zone": zone_digest(study.resolver.namespace),
        "dump": dump_digest(study.table_dump),
        "vrps": vrp_digest(vrp_items(study.payloads)),
        "config": config_fingerprint(config),
    }


def connection_worker(
    conn,
    worker_id: int,
    study,
    digests: Dict[str, str],
    config=None,
    session=None,
    close_fds=(),
) -> None:
    """Entry point for a forked scheduler worker: serve one socket.

    ``close_fds`` lists sibling sockets inherited across the fork;
    closing them here keeps EOF-based shutdown working (a socket only
    reads EOF once *every* copy of its peer end is closed).
    """
    for inherited in close_fds:
        try:
            inherited.close()
        except OSError:
            pass
    reader = conn.makefile("rb")
    writer = conn.makefile("wb")
    try:
        serve_stream(
            reader, writer, worker_id, study, digests,
            config=config, session=session,
        )
    except (BrokenPipeError, ConnectionResetError, OSError):
        pass  # parent went away; exit quietly
    finally:
        try:
            conn.close()
        except OSError:
            pass


def serve_stdio(
    study,
    config,
    worker_id: int = 0,
    reader=None,
    writer=None,
) -> int:
    """The ``ripki worker`` loop: hello frame, then jobs over stdio."""
    import sys

    reader = reader if reader is not None else sys.stdin.buffer
    writer = writer if writer is not None else sys.stdout.buffer
    digests = study_digests(study, config)
    return serve_stream(
        reader, writer, worker_id, study, digests,
        config=config, hello=True,
    )
