"""Deterministic fault injection and retry machinery (``repro.faults``).

Real RPKI measurement is dominated by partial failure: flaky
resolvers, stale or truncated route-collector dumps, dropped RTR
sessions.  This package makes those failure modes *first-class and
reproducible* so the pipeline's resilience can be exercised and
regression-tested:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded per-site
  hash schedule of injected faults, independent of sharding and
  worker count;
* :mod:`repro.faults.injectors` — proxies that wrap the real
  substrates (resolver, table dump, RTR transport) and raise typed
  :class:`InjectedFault` errors on schedule;
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (exponential
  backoff with deterministic jitter and a per-call budget) and
  :func:`call_with_retry`, the loop that turns transient faults into
  retried calls.

The pipeline-facing glue — turning retry exhaustion into per-domain
``degraded`` outcomes — lives in :mod:`repro.core.resilience`.
"""

from repro.errors import ReproError, RetryExhausted, TransientFault
from repro.faults.injectors import (
    FaultyResolver,
    FaultyTableDump,
    FaultyTransport,
    InjectedDNSFault,
    InjectedDumpFault,
    InjectedFault,
    InjectedRTRFault,
    InjectedServeFault,
)
from repro.faults.plan import (
    DNS_SERVFAIL,
    DNS_TIMEOUT,
    DNS_TRUNCATED_CHAIN,
    DUMP_CORRUPT,
    DUMP_MISSING_ROUTE,
    EXEC_KINDS,
    FAULT_KINDS,
    PROFILES,
    RTR_CACHE_RESET,
    RTR_SESSION_DROP,
    SERVE_STALE,
    SERVE_TIMEOUT,
    WORLD_CRL_SKIP,
    WORLD_KEY_ROLLOVER,
    WORLD_KINDS,
    WORLD_MANIFEST_SKIP,
    WORLD_PP_OUTAGE,
    WORLD_ROA_ISSUE,
    WORLD_ROA_WITHDRAW,
    WORKER_CRASH,
    WORKER_GARBAGE,
    WORKER_STALL,
    FaultPlan,
)
from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    AttemptCell,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "AttemptCell",
    "DEFAULT_RETRY_POLICY",
    "DNS_SERVFAIL",
    "DNS_TIMEOUT",
    "DNS_TRUNCATED_CHAIN",
    "DUMP_CORRUPT",
    "DUMP_MISSING_ROUTE",
    "EXEC_KINDS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyResolver",
    "FaultyTableDump",
    "FaultyTransport",
    "InjectedDNSFault",
    "InjectedDumpFault",
    "InjectedFault",
    "InjectedRTRFault",
    "InjectedServeFault",
    "PROFILES",
    "ReproError",
    "RetryExhausted",
    "RetryPolicy",
    "RTR_CACHE_RESET",
    "RTR_SESSION_DROP",
    "SERVE_STALE",
    "SERVE_TIMEOUT",
    "TransientFault",
    "WORLD_CRL_SKIP",
    "WORLD_KEY_ROLLOVER",
    "WORLD_KINDS",
    "WORLD_MANIFEST_SKIP",
    "WORLD_PP_OUTAGE",
    "WORLD_ROA_ISSUE",
    "WORLD_ROA_WITHDRAW",
    "WORKER_CRASH",
    "WORKER_GARBAGE",
    "WORKER_STALL",
    "call_with_retry",
]
