"""Substrate wrappers that inject the faults a plan schedules.

Each wrapper is a thin proxy over a real substrate object: it asks
the :class:`~repro.faults.plan.FaultPlan` whether the current
(kind, key, attempt) should fail, raises a typed
:class:`InjectedFault` if so, and otherwise delegates untouched.  The
current attempt number is read from a shared
:class:`~repro.faults.retry.AttemptCell`, so the injection schedule
is a pure function of the plan — wrapper instances carry no decision
state and can be created per run, per shard, or per worker without
changing the outcome.

The injected exception types are diamond subclasses: every
``InjectedDNSFault`` *is* a ``DNSError`` (so substrate-aware callers
see the failure they expect) and *is* a
:class:`~repro.errors.TransientFault` (so funnel code knows it is
retryable rather than a permanent protocol error).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.bgp.errors import BGPError
from repro.dns.errors import DNSError
from repro.errors import TransientFault
from repro.faults.plan import (
    DNS_SERVFAIL,
    DNS_TIMEOUT,
    DNS_TRUNCATED_CHAIN,
    DUMP_CORRUPT,
    DUMP_MISSING_ROUTE,
    RTR_CACHE_RESET,
    RTR_SESSION_DROP,
    FaultPlan,
)
from repro.faults.retry import AttemptCell
from repro.rpki.rtr.errors import RTRError

FaultCallback = Optional[Callable[[str], None]]


class InjectedFault(TransientFault):
    """Base of every injected failure; carries its kind and site key."""

    def __init__(self, kind: str, key: str, message: Optional[str] = None):
        super().__init__(message or f"injected {kind} at {key!r}")
        self.kind = kind
        self.key = key


class InjectedDNSFault(InjectedFault, DNSError):
    """An injected resolver failure (SERVFAIL, timeout, cut chain)."""


class InjectedDumpFault(InjectedFault, BGPError):
    """An injected table-dump failure (corrupt or missing-route read)."""


class InjectedRTRFault(InjectedFault, RTRError):
    """An injected RTR transport failure (dropped session)."""


class InjectedServeFault(InjectedFault):
    """An injected serving-layer failure (stale snapshot, missed refresh).

    Unlike the substrate faults above there is no wrapped object to
    proxy: the query service consults the plan itself, catches this
    fault on the query path, and *degrades* the answer (``stale`` or
    ``degraded`` marker) instead of letting it escape — a read-only
    index can always serve what it has.
    """


_DNS_MESSAGES = {
    DNS_SERVFAIL: "SERVFAIL from upstream",
    DNS_TIMEOUT: "query timed out",
    DNS_TRUNCATED_CHAIN: "CNAME chain truncated mid-walk",
}

_DUMP_MESSAGES = {
    DUMP_CORRUPT: "table-dump read returned corrupt entries",
    DUMP_MISSING_ROUTE: "route absent from a stale table dump",
}


class FaultyResolver:
    """A resolver proxy that injects DNS faults before delegating.

    Duck-types :class:`repro.dns.PublicResolver` for everything the
    funnel touches.
    """

    KINDS = (DNS_SERVFAIL, DNS_TIMEOUT, DNS_TRUNCATED_CHAIN)

    def __init__(
        self,
        resolver,
        plan: FaultPlan,
        attempt: Optional[AttemptCell] = None,
        on_fault: FaultCallback = None,
    ):
        self._resolver = resolver
        self._plan = plan
        self._attempt = attempt if attempt is not None else AttemptCell()
        self._on_fault = on_fault

    def resolve(self, name: str):
        for kind in self.KINDS:
            if self._plan.should_fail(kind, name, self._attempt.value):
                if self._on_fault is not None:
                    self._on_fault(kind)
                raise InjectedDNSFault(
                    kind, name, f"injected {_DNS_MESSAGES[kind]} for {name!r}"
                )
        return self._resolver.resolve(name)

    def __getattr__(self, attr):
        return getattr(self._resolver, attr)

    def __repr__(self) -> str:
        return f"<FaultyResolver over {self._resolver!r}>"


class FaultyTableDump:
    """A table-dump proxy injecting read faults on covering lookups."""

    KINDS = (DUMP_CORRUPT, DUMP_MISSING_ROUTE)

    def __init__(
        self,
        dump,
        plan: FaultPlan,
        attempt: Optional[AttemptCell] = None,
        on_fault: FaultCallback = None,
    ):
        self._dump = dump
        self._plan = plan
        self._attempt = attempt if attempt is not None else AttemptCell()
        self._on_fault = on_fault

    def covering_entries(self, target) -> List:
        key = str(target)
        for kind in self.KINDS:
            if self._plan.should_fail(kind, key, self._attempt.value):
                if self._on_fault is not None:
                    self._on_fault(kind)
                raise InjectedDumpFault(
                    kind, key, f"injected {_DUMP_MESSAGES[kind]} for {key}"
                )
        return self._dump.covering_entries(target)

    def __getattr__(self, attr):
        return getattr(self._dump, attr)

    def __len__(self) -> int:
        return len(self._dump)

    def __iter__(self):
        return iter(self._dump)

    def __repr__(self) -> str:
        return f"<FaultyTableDump over {self._dump!r}>"


class FaultyTransport:
    """An RTR transport proxy injecting session-level faults.

    Keys are per-operation sequence numbers (``label|send|N``), so
    with rate *r* each send independently drops with probability *r*
    — a flaky TCP session — and each receive may be replaced by a
    Cache Reset, modelling a cache that restarted and lost the
    in-flight response (a "Cache-Reset storm" at high rates).
    """

    def __init__(
        self,
        transport,
        plan: FaultPlan,
        label: str = "rtr",
        on_fault: FaultCallback = None,
    ):
        self._transport = transport
        self._plan = plan
        self._label = label
        self._on_fault = on_fault
        self._sent = 0
        self._received = 0

    def send(self, data: bytes) -> None:
        key = f"{self._label}|send|{self._sent}"
        self._sent += 1
        if self._plan.should_fail(RTR_SESSION_DROP, key, 0):
            if self._on_fault is not None:
                self._on_fault(RTR_SESSION_DROP)
            raise InjectedRTRFault(
                RTR_SESSION_DROP, key, f"injected session drop at {key}"
            )
        self._transport.send(data)

    def receive(self) -> bytes:
        key = f"{self._label}|recv|{self._received}"
        self._received += 1
        if self._plan.should_fail(RTR_CACHE_RESET, key, 0):
            if self._on_fault is not None:
                self._on_fault(RTR_CACHE_RESET)
            # The cache restarted: whatever was in flight is lost and
            # the router sees a Cache Reset instead.
            from repro.rpki.rtr.pdus import CacheResetPDU

            self._transport.receive()
            return CacheResetPDU().encode()
        return self._transport.receive()

    def pending(self) -> int:
        return self._transport.pending()

    def __getattr__(self, attr):
        return getattr(self._transport, attr)

    def __repr__(self) -> str:
        return f"<FaultyTransport {self._label} over {self._transport!r}>"


FaultySubstrate = Union[FaultyResolver, FaultyTableDump, FaultyTransport]
