"""Deterministic, seedable fault plans.

A :class:`FaultPlan` decides, for every (fault kind, site key)
combination, whether an injected fault fires — and for how many
consecutive attempts.  The decision is a pure function of the plan's
seed and the site key (a SHA-256 hash), with three consequences the
resilience tests lean on:

* **reproducible** — the same seed and rates replay the exact same
  fault schedule, run after run;
* **sharding-independent** — the decision never consults worker
  count, shard boundaries, or any mutable state, so serial, thread,
  and process backends inject identical faults and produce
  bit-identical :class:`~repro.core.pipeline.StudyResult`\\ s;
* **retry-aware** — a faulty site fails a bounded number of
  *consecutive* attempts (``1..max_consecutive``) and then recovers,
  so a retry policy with enough attempts heals some sites while
  others exhaust their budget and degrade.

Keys are whatever identifies the call site: the queried name for DNS,
the looked-up address for table dumps, an operation sequence tag for
RTR transports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

# The supported failure modes, one namespace per substrate.
DNS_SERVFAIL = "dns.servfail"
DNS_TIMEOUT = "dns.timeout"
DNS_TRUNCATED_CHAIN = "dns.truncated_chain"
DUMP_CORRUPT = "dump.corrupt"
DUMP_MISSING_ROUTE = "dump.missing_route"
RTR_SESSION_DROP = "rtr.session_drop"
RTR_CACHE_RESET = "rtr.cache_reset"
SERVE_STALE = "serve.stale"      # query hit a snapshot behind the world
SERVE_TIMEOUT = "serve.timeout"  # upstream refresh missed its deadline
# CA-side lifecycle events (the repro.world engine's per-step decisions;
# reusing the seeded schedule keeps a world bit-identical per seed).
WORLD_PP_OUTAGE = "world.pp_outage"          # publication point unreachable
WORLD_MANIFEST_SKIP = "world.manifest_skip"  # CA missed its manifest re-sign
WORLD_CRL_SKIP = "world.crl_skip"            # CA missed its CRL refresh
WORLD_ROA_ISSUE = "world.roa_issue"          # CA signs another prefix
WORLD_ROA_WITHDRAW = "world.roa_withdraw"    # CA withdraws a published ROA
WORLD_KEY_ROLLOVER = "world.key_rollover"    # CA starts a staged key rollover
# Execution-substrate events (the distributed scheduler's per-job
# decisions; consulted only by the ``workers`` backend, keyed by
# ``shard:<index>`` and the dispatch attempt, so the same plan leaves
# serial/thread/process runs untouched).
WORKER_CRASH = "worker.crash"      # worker process dies mid-job
WORKER_STALL = "worker.stall"      # worker blows its job deadline
WORKER_GARBAGE = "worker.garbage"  # worker emits an undecodable frame

# The measurement-side kinds; "chaos" soaks exactly these.
_MEASUREMENT_KINDS: Tuple[str, ...] = (
    DNS_SERVFAIL,
    DNS_TIMEOUT,
    DNS_TRUNCATED_CHAIN,
    DUMP_CORRUPT,
    DUMP_MISSING_ROUTE,
    RTR_SESSION_DROP,
    RTR_CACHE_RESET,
    SERVE_STALE,
    SERVE_TIMEOUT,
)

WORLD_KINDS: Tuple[str, ...] = (
    WORLD_PP_OUTAGE,
    WORLD_MANIFEST_SKIP,
    WORLD_CRL_SKIP,
    WORLD_ROA_ISSUE,
    WORLD_ROA_WITHDRAW,
    WORLD_KEY_ROLLOVER,
)

EXEC_KINDS: Tuple[str, ...] = (
    WORKER_CRASH,
    WORKER_STALL,
    WORKER_GARBAGE,
)

FAULT_KINDS: Tuple[str, ...] = _MEASUREMENT_KINDS + WORLD_KINDS + EXEC_KINDS

# Named profiles for the CLI.  "flaky" models everyday measurement
# weather (most sites recover within a retry or two); "degraded"
# models a bad day at the vantage point; "chaos" is for soak-testing
# the degradation paths themselves.
PROFILES: Dict[str, Dict[str, float]] = {
    "flaky": {
        DNS_SERVFAIL: 0.06,
        DNS_TIMEOUT: 0.04,
        DNS_TRUNCATED_CHAIN: 0.02,
        DUMP_CORRUPT: 0.03,
        DUMP_MISSING_ROUTE: 0.02,
        RTR_SESSION_DROP: 0.05,
        RTR_CACHE_RESET: 0.02,
        SERVE_STALE: 0.04,
        SERVE_TIMEOUT: 0.02,
    },
    "degraded": {
        DNS_SERVFAIL: 0.15,
        DNS_TIMEOUT: 0.10,
        DNS_TRUNCATED_CHAIN: 0.05,
        DUMP_CORRUPT: 0.08,
        DUMP_MISSING_ROUTE: 0.05,
        RTR_SESSION_DROP: 0.12,
        RTR_CACHE_RESET: 0.05,
        SERVE_STALE: 0.10,
        SERVE_TIMEOUT: 0.05,
    },
    "chaos": {kind: 0.30 for kind in _MEASUREMENT_KINDS},
    # Scheduler-substrate weather: worker processes crash, stall past
    # their deadline, or corrupt their reply stream, but the funnel
    # itself stays healthy — re-dispatch must mask every event, so a
    # run under this profile is bit-identical to a fault-free one.
    "unreliable-workers": {
        WORKER_CRASH: 0.30,
        WORKER_STALL: 0.20,
        WORKER_GARBAGE: 0.10,
    },
}


def _unit_interval(token: str) -> Tuple[float, int]:
    """(uniform [0,1) draw, independent 64-bit draw) for one token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / 2**64
    span = int.from_bytes(digest[8:16], "big")
    return unit, span


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injected faults over site keys.

    ``rates`` is stored as a sorted tuple of ``(kind, rate)`` pairs so
    plans are hashable, picklable, and order-insensitive to how the
    mapping was written; build plans through :meth:`from_rates` or
    :meth:`from_profile`.
    """

    seed: int = 0
    rates: Tuple[Tuple[str, float], ...] = ()
    max_consecutive: int = 4

    def __post_init__(self):
        if self.max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")
        for kind, rate in self.rates:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {FAULT_KINDS}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1], got {rate}")

    @classmethod
    def from_rates(
        cls,
        rates: Mapping[str, float],
        seed: int = 0,
        max_consecutive: int = 4,
    ) -> "FaultPlan":
        return cls(
            seed=seed,
            rates=tuple(sorted(rates.items())),
            max_consecutive=max_consecutive,
        )

    @classmethod
    def from_profile(cls, profile: str, seed: int = 0) -> "FaultPlan":
        """One of the named :data:`PROFILES`, bound to a seed."""
        try:
            rates = PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {profile!r}; "
                f"known: {sorted(PROFILES)}"
            ) from None
        return cls.from_rates(rates, seed=seed)

    def rate_for(self, kind: str) -> float:
        for known, rate in self.rates:
            if known == kind:
                return rate
        return 0.0

    def failures_for(self, kind: str, key: str) -> int:
        """How many consecutive attempts fail for this (kind, key).

        0 means the site is healthy for this fault kind; otherwise the
        site fails attempts ``0 .. n-1`` and succeeds from attempt
        ``n`` on.  Pure function of (seed, kind, key).
        """
        rate = self.rate_for(kind)
        if rate <= 0.0:
            return 0
        unit, span = _unit_interval(f"{self.seed}|{kind}|{key}")
        if unit >= rate:
            return 0
        return 1 + span % self.max_consecutive

    def should_fail(self, kind: str, key: str, attempt: int) -> bool:
        """Does attempt number ``attempt`` (0-based) fail for this site?"""
        return attempt < self.failures_for(kind, key)

    def active_kinds(self) -> Tuple[str, ...]:
        return tuple(kind for kind, rate in self.rates if rate > 0.0)

    def describe(self) -> str:
        parts = ", ".join(
            f"{kind}={rate:g}" for kind, rate in self.rates if rate > 0.0
        )
        return f"seed={self.seed} max_consecutive={self.max_consecutive} [{parts}]"
