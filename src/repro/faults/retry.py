"""Retry with deterministic exponential backoff.

:class:`RetryPolicy` is the frozen knob-set (max attempts, backoff
curve, per-call backoff budget) and :func:`call_with_retry` the loop
that applies it.  Two design points keep the resilience layer
bit-deterministic:

* **deterministic jitter** — the jitter factor for (key, attempt) is
  derived from a hash, not a PRNG stream, so two workers retrying the
  same site compute identical backoff sequences regardless of
  scheduling order;
* **virtual time by default** — backoff delays are *accounted*
  against the policy's budget but not slept unless the caller passes
  a ``sleeper``.  The synthetic substrates fail instantly, so real
  sleeping would only slow the simulation down and couple results to
  the wall clock; a live deployment passes ``sleeper=time.sleep``.

The loop retries on any :class:`~repro.errors.ReproError` — the one
catchable surface the unified exception hierarchy provides — and
raises :class:`~repro.errors.RetryExhausted` when attempts or budget
run out.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.errors import ReproError, RetryExhausted

T = TypeVar("T")


class AttemptCell:
    """A shared mutable attempt counter.

    The retry loop publishes the current attempt number here; fault
    injectors read it so their decisions depend on (site, attempt)
    only — never on wrapper-local state that would vary with sharding.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def __repr__(self) -> str:
        return f"<AttemptCell {self.value}>"


def _jitter_unit(token: str) -> float:
    """Uniform [0,1) derived from a hash — stable across processes."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a call degraded."""

    max_attempts: int = 3
    backoff_base: float = 0.05       # delay before the first retry, seconds
    backoff_multiplier: float = 2.0  # exponential growth per retry
    backoff_max: float = 5.0         # cap on any single delay
    jitter: float = 0.1              # +/- fraction, deterministic per (key, attempt)
    stage_budget: Optional[float] = None  # total backoff seconds per call

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.stage_budget is not None and self.stage_budget < 0:
            raise ValueError("stage_budget must be >= 0")

    def backoff_for(self, key: str, attempt: int) -> float:
        """The delay before retrying ``key`` after failed ``attempt``."""
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier**attempt,
        )
        if not self.jitter or not raw:
            return raw
        unit = _jitter_unit(f"{key}|{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def delays(self, key: str) -> List[float]:
        """Every backoff delay a full retry cycle for ``key`` would use."""
        return [self.backoff_for(key, a) for a in range(self.max_attempts - 1)]


DEFAULT_RETRY_POLICY = RetryPolicy()


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    key: str = "",
    attempt_cell: Optional[AttemptCell] = None,
    sleeper: Optional[Callable[[float], None]] = None,
    on_retry: Optional[Callable[[int, float, ReproError], None]] = None,
) -> Tuple[T, int]:
    """Run ``fn`` under ``policy``; returns ``(value, attempts_used)``.

    Retries on any :class:`ReproError`; other exceptions propagate
    unchanged.  Before each attempt the 0-based attempt number is
    written to ``attempt_cell`` (if given) so fault injectors can key
    their decisions on it.  Raises :class:`RetryExhausted` — carrying
    the key, attempt count, spent backoff budget, and last cause —
    when ``max_attempts`` or ``stage_budget`` is exhausted.
    """
    spent = 0.0
    last: Optional[ReproError] = None
    attempts = policy.max_attempts
    attempt = 0
    for attempt in range(attempts):
        if attempt_cell is not None:
            attempt_cell.value = attempt
        try:
            return fn(), attempt + 1
        except ReproError as error:
            last = error
            if attempt + 1 >= attempts:
                break
            delay = policy.backoff_for(key, attempt)
            if (
                policy.stage_budget is not None
                and spent + delay > policy.stage_budget
            ):
                break
            spent += delay
            if sleeper is not None:
                sleeper(delay)
            if on_retry is not None:
                on_retry(attempt + 1, delay, error)
    raise RetryExhausted(
        key=key, attempts=attempt + 1, cause=last, budget_spent=spent
    ) from last
