"""IP addressing primitives shared by every substrate.

This package provides from-scratch IPv4/IPv6 address and prefix types,
a binary radix trie with longest-prefix and covering-prefix lookup, and
the IANA special-purpose address registries used to discard invalid DNS
answers (paper, Section 3, step 2).
"""

from repro.net.addr import (
    Address,
    Prefix,
    parse_address,
    parse_prefix,
)
from repro.net.asn import ASN, parse_asn
from repro.errors import ReproError
from repro.net.errors import AddressError, NetError, PrefixError
from repro.net.special import (
    is_special_purpose,
    special_purpose_registry,
)
from repro.net.trie import PrefixTrie

__all__ = [
    "ASN",
    "Address",
    "AddressError",
    "NetError",
    "Prefix",
    "PrefixError",
    "PrefixTrie",
    "ReproError",
    "is_special_purpose",
    "parse_address",
    "parse_asn",
    "parse_prefix",
    "special_purpose_registry",
]
