"""IPv4/IPv6 address and prefix value types.

Both types are immutable, hashable, and totally ordered (first by
address family, then numerically).  Parsing and formatting are
implemented from scratch, including IPv6 zero compression and embedded
IPv4 notation, so the package has no dependency beyond the standard
library.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Tuple, Union

from repro.net.errors import AddressError, PrefixError

IPV4 = 4
IPV6 = 6

_BITS = {IPV4: 32, IPV6: 128}
_MAX = {IPV4: (1 << 32) - 1, IPV6: (1 << 128) - 1}


def family_bits(family: int) -> int:
    """Return the address width in bits for an address family (4 or 6)."""
    try:
        return _BITS[family]
    except KeyError:
        raise AddressError(f"unknown address family: {family!r}") from None


def _parse_ipv4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"invalid IPv4 octet in {text!r}: {part!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"IPv4 octet out of range in {text!r}: {part!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _parse_ipv6(text: str) -> int:
    if not text:
        raise AddressError("empty IPv6 address")
    # Embedded IPv4 in the last group, e.g. ::ffff:192.0.2.1
    tail_groups = []
    if "." in text:
        head, _, ipv4_part = text.rpartition(":")
        if not head:
            raise AddressError(f"invalid IPv6 address: {text!r}")
        ipv4_value = _parse_ipv4(ipv4_part)
        tail_groups = [ipv4_value >> 16, ipv4_value & 0xFFFF]
        text = head
        if text.endswith(":") and not text.endswith("::"):
            raise AddressError(f"invalid IPv6 address near {ipv4_part!r}")

    if text.count("::") > 1:
        raise AddressError(f"multiple '::' in IPv6 address: {text!r}")

    def parse_groups(chunk: str) -> list:
        if not chunk:
            return []
        groups = []
        for group in chunk.split(":"):
            if not group or len(group) > 4:
                raise AddressError(f"invalid IPv6 group: {group!r}")
            try:
                groups.append(int(group, 16))
            except ValueError:
                raise AddressError(f"invalid IPv6 group: {group!r}") from None
        return groups

    if "::" in text:
        left_text, right_text = text.split("::")
        left = parse_groups(left_text)
        right = parse_groups(right_text) + tail_groups
        missing = 8 - len(left) - len(right)
        if missing < 1:
            raise AddressError(f"IPv6 address too long: {text!r}")
        groups = left + [0] * missing + right
    else:
        groups = parse_groups(text) + tail_groups
        if len(groups) != 8:
            raise AddressError(f"IPv6 address needs 8 groups: {text!r}")

    value = 0
    for group in groups:
        value = (value << 16) | group
    return value


def _format_ipv6(value: int) -> str:
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -1, -16)]
    # Find the longest run of zero groups (length >= 2) for '::'.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(format(group, "x") for group in groups)
    head = ":".join(format(group, "x") for group in groups[:best_start])
    tail = ":".join(format(group, "x") for group in groups[best_start + best_len:])
    return f"{head}::{tail}"


@total_ordering
class Address:
    """An immutable IPv4 or IPv6 address."""

    __slots__ = ("_family", "_value")

    def __init__(self, family: int, value: int):
        bits = family_bits(family)
        if not 0 <= value <= _MAX[family]:
            raise AddressError(
                f"address value out of range for IPv{family}: {value:#x}"
            )
        self._family = family
        self._value = value
        del bits

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse an address literal, auto-detecting the family."""
        text = text.strip()
        if ":" in text:
            return cls(IPV6, _parse_ipv6(text))
        return cls(IPV4, _parse_ipv4(text))

    @property
    def family(self) -> int:
        return self._family

    @property
    def value(self) -> int:
        return self._value

    @property
    def bits(self) -> int:
        return _BITS[self._family]

    def to_prefix(self) -> "Prefix":
        """Return the host prefix (/32 or /128) for this address."""
        return Prefix(self._family, self._value, self.bits)

    def __str__(self) -> str:
        if self._family == IPV4:
            return _format_ipv4(self._value)
        return _format_ipv6(self._value)

    def __repr__(self) -> str:
        return f"Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Address):
            return NotImplemented
        return self._family == other._family and self._value == other._value

    def __lt__(self, other: "Address") -> bool:
        if not isinstance(other, Address):
            return NotImplemented
        return (self._family, self._value) < (other._family, other._value)

    def __hash__(self) -> int:
        return hash((Address, self._family, self._value))


@total_ordering
class Prefix:
    """An immutable CIDR prefix.

    The network value is canonicalised on construction: host bits below
    the prefix length must be zero, otherwise :class:`PrefixError` is
    raised.  This catches subtle data-generation bugs early.
    """

    __slots__ = ("_family", "_value", "_length")

    def __init__(self, family: int, value: int, length: int):
        bits = family_bits(family)
        if not 0 <= length <= bits:
            raise PrefixError(f"prefix length {length} out of range for IPv{family}")
        if not 0 <= value <= _MAX[family]:
            raise PrefixError(f"network value out of range: {value:#x}")
        host_bits = bits - length
        if host_bits and value & ((1 << host_bits) - 1):
            raise PrefixError(
                f"host bits set below /{length}: {value:#x} (not a canonical network)"
            )
        self._family = family
        self._value = value
        self._length = length

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` or ``x::/len`` notation."""
        text = text.strip()
        network_text, slash, length_text = text.partition("/")
        if not slash:
            raise PrefixError(f"prefix needs a '/length': {text!r}")
        address = Address.parse(network_text)
        if not length_text.isdigit():
            raise PrefixError(f"invalid prefix length: {length_text!r}")
        return cls(address.family, address.value, int(length_text))

    @classmethod
    def from_address(cls, address: Address, length: int) -> "Prefix":
        """Build the prefix of ``length`` bits containing ``address``."""
        bits = address.bits
        if not 0 <= length <= bits:
            raise PrefixError(f"prefix length {length} out of range")
        host_bits = bits - length
        network = (address.value >> host_bits) << host_bits
        return cls(address.family, network, length)

    @property
    def family(self) -> int:
        return self._family

    @property
    def value(self) -> int:
        return self._value

    @property
    def length(self) -> int:
        return self._length

    @property
    def bits(self) -> int:
        return _BITS[self._family]

    @property
    def network(self) -> Address:
        return Address(self._family, self._value)

    @property
    def broadcast_value(self) -> int:
        """Numeric value of the highest address inside the prefix."""
        host_bits = self.bits - self._length
        return self._value | ((1 << host_bits) - 1) if host_bits else self._value

    def key_bits(self) -> int:
        """Top ``length`` bits of the network, as an integer key."""
        return self._value >> (self.bits - self._length) if self._length else 0

    def contains(self, other: Union[Address, "Prefix"]) -> bool:
        """True when ``other`` (address or prefix) is inside this prefix."""
        if isinstance(other, Address):
            other = other.to_prefix()
        if other._family != self._family or other._length < self._length:
            return False
        shift = self.bits - self._length
        return (other._value >> shift) == (self._value >> shift) if self._length else True

    def covers(self, other: "Prefix") -> bool:
        """Alias of :meth:`contains` for prefixes; reads better in BGP code."""
        return self.contains(other)

    def supernet(self, length: int) -> "Prefix":
        """Return the covering prefix of the given (shorter) length."""
        if length > self._length:
            raise PrefixError(
                f"supernet length {length} longer than /{self._length}"
            )
        host_bits = self.bits - length
        return Prefix(self._family, (self._value >> host_bits) << host_bits, length)

    def subnets(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two half-length+1 subnets."""
        if self._length >= self.bits:
            raise PrefixError(f"cannot split a host prefix /{self._length}")
        child_length = self._length + 1
        low = Prefix(self._family, self._value, child_length)
        high_bit = 1 << (self.bits - child_length)
        high = Prefix(self._family, self._value | high_bit, child_length)
        return low, high

    def addresses(self, limit: int = 1 << 16) -> Iterator[Address]:
        """Iterate the addresses in the prefix (guarded by ``limit``)."""
        count = 1 << (self.bits - self._length)
        if count > limit:
            raise PrefixError(
                f"refusing to iterate {count} addresses (limit {limit})"
            )
        for offset in range(count):
            yield Address(self._family, self._value + offset)

    def nth_address(self, index: int) -> Address:
        """Return the ``index``-th address inside the prefix."""
        count = 1 << (self.bits - self._length)
        if not 0 <= index < count:
            raise PrefixError(f"address index {index} out of range for {self}")
        return Address(self._family, self._value + index)

    def __str__(self) -> str:
        return f"{self.network}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (
            self._family == other._family
            and self._value == other._value
            and self._length == other._length
        )

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._family, self._value, self._length) < (
            other._family,
            other._value,
            other._length,
        )

    def __hash__(self) -> int:
        return hash((Prefix, self._family, self._value, self._length))


def parse_address(text: str) -> Address:
    """Module-level convenience wrapper for :meth:`Address.parse`."""
    return Address.parse(text)


def parse_prefix(text: str) -> Prefix:
    """Module-level convenience wrapper for :meth:`Prefix.parse`."""
    return Prefix.parse(text)
