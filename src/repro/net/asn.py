"""Autonomous System Number utilities."""

from __future__ import annotations

from repro.net.errors import ASNError

AS_TRANS = 23456
MAX_ASN = (1 << 32) - 1

# Private-use ASN ranges (RFC 6996).
_PRIVATE_16 = (64512, 65534)
_PRIVATE_32 = (4200000000, 4294967294)


class ASN(int):
    """A 32-bit AS number.

    Subclasses :class:`int` so arithmetic, hashing, and sorting work
    naturally while construction validates the range and ``str()``
    renders the conventional ``AS64500`` form.
    """

    def __new__(cls, value: int) -> "ASN":
        value = int(value)
        if not 0 <= value <= MAX_ASN:
            raise ASNError(f"AS number out of 32-bit range: {value}")
        return super().__new__(cls, value)

    @property
    def is_private(self) -> bool:
        return (
            _PRIVATE_16[0] <= self <= _PRIVATE_16[1]
            or _PRIVATE_32[0] <= self <= _PRIVATE_32[1]
        )

    @property
    def is_reserved(self) -> bool:
        return self == 0 or self == AS_TRANS or self == MAX_ASN

    def __str__(self) -> str:
        return f"AS{int(self)}"

    def __repr__(self) -> str:
        return f"ASN({int(self)})"


def parse_asn(text: str) -> ASN:
    """Parse ``'AS64500'``, ``'as64500'``, or ``'64500'``."""
    text = text.strip()
    if text[:2].lower() == "as":
        text = text[2:]
    if not text.isdigit():
        raise ASNError(f"invalid AS number literal: {text!r}")
    return ASN(int(text))
