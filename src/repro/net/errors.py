"""Exception hierarchy for the ``repro.net`` package."""

from repro.errors import ReproError


class NetError(ReproError, ValueError):
    """Base class for addressing errors.

    Stays a :class:`ValueError` — parse failures are value errors to
    callers that never heard of the resilience layer — while also
    joining the :class:`~repro.errors.ReproError` hierarchy.
    """


class AddressError(NetError):
    """An IP address literal could not be parsed or is out of range."""


class PrefixError(NetError):
    """A prefix literal is malformed or its length is out of range."""


class ASNError(NetError):
    """An AS number is malformed or out of the 32-bit range."""
