"""Exception hierarchy for the ``repro.net`` package."""


class NetError(ValueError):
    """Base class for addressing errors."""


class AddressError(NetError):
    """An IP address literal could not be parsed or is out of range."""


class PrefixError(NetError):
    """A prefix literal is malformed or its length is out of range."""


class ASNError(NetError):
    """An AS number is malformed or out of the 32-bit range."""
