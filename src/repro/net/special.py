"""IANA special-purpose address registries.

The paper (Section 3, step 2) excludes "all special-purpose IPv4 and
IPv6 addresses reserved by the IANA" from the DNS answers.  This module
reproduces the two registries (RFC 6890 and successors) as prefix
tables and exposes :func:`is_special_purpose`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.net.addr import Address, Prefix
from repro.net.trie import PrefixTrie

# (prefix, registry name) — IANA IPv4 Special-Purpose Address Registry.
_IPV4_SPECIAL: List[Tuple[str, str]] = [
    ("0.0.0.0/8", "This host on this network (RFC 1122)"),
    ("10.0.0.0/8", "Private-Use (RFC 1918)"),
    ("100.64.0.0/10", "Shared Address Space (RFC 6598)"),
    ("127.0.0.0/8", "Loopback (RFC 1122)"),
    ("169.254.0.0/16", "Link Local (RFC 3927)"),
    ("172.16.0.0/12", "Private-Use (RFC 1918)"),
    ("192.0.0.0/24", "IETF Protocol Assignments (RFC 6890)"),
    ("192.0.2.0/24", "Documentation TEST-NET-1 (RFC 5737)"),
    ("192.88.99.0/24", "6to4 Relay Anycast (RFC 7526)"),
    ("192.168.0.0/16", "Private-Use (RFC 1918)"),
    ("198.18.0.0/15", "Benchmarking (RFC 2544)"),
    ("198.51.100.0/24", "Documentation TEST-NET-2 (RFC 5737)"),
    ("203.0.113.0/24", "Documentation TEST-NET-3 (RFC 5737)"),
    ("224.0.0.0/4", "Multicast (RFC 5771)"),
    ("240.0.0.0/4", "Reserved (RFC 1112)"),
    ("255.255.255.255/32", "Limited Broadcast (RFC 8190)"),
]

# IANA IPv6 Special-Purpose Address Registry.
_IPV6_SPECIAL: List[Tuple[str, str]] = [
    ("::/128", "Unspecified Address (RFC 4291)"),
    ("::1/128", "Loopback Address (RFC 4291)"),
    ("::ffff:0:0/96", "IPv4-mapped Address (RFC 4291)"),
    ("64:ff9b::/96", "IPv4-IPv6 Translation (RFC 6052)"),
    ("100::/64", "Discard-Only Address Block (RFC 6666)"),
    ("2001::/23", "IETF Protocol Assignments (RFC 2928)"),
    ("2001:2::/48", "Benchmarking (RFC 5180)"),
    ("2001:db8::/32", "Documentation (RFC 3849)"),
    ("2001:10::/28", "ORCHID (RFC 4843)"),
    ("2002::/16", "6to4 (RFC 3056)"),
    ("fc00::/7", "Unique-Local (RFC 4193)"),
    ("fe80::/10", "Link-Local Unicast (RFC 4291)"),
    ("ff00::/8", "Multicast (RFC 4291)"),
]

_registry: Optional[PrefixTrie] = None


def special_purpose_registry() -> PrefixTrie:
    """Return the (lazily built, shared) special-purpose prefix trie.

    Values are the registry entry names, so callers can report *why*
    an address was rejected.
    """
    global _registry
    if _registry is None:
        trie: PrefixTrie = PrefixTrie()
        for text, name in _IPV4_SPECIAL + _IPV6_SPECIAL:
            trie.insert(Prefix.parse(text), name)
        _registry = trie
    return _registry


def is_special_purpose(target: Union[Address, Prefix, str]) -> bool:
    """True when the address (or any part of the prefix) is reserved.

    Accepts an :class:`Address`, a :class:`Prefix`, or a string literal
    of either.  A prefix counts as special when its *network* address
    falls inside a registry entry, which is the conservative choice for
    filtering DNS answers.
    """
    if isinstance(target, str):
        target = Prefix.parse(target) if "/" in target else Address.parse(target)
    if isinstance(target, Prefix):
        target = target.network
    return bool(special_purpose_registry().covering(target))


def special_purpose_reason(target: Union[Address, str]) -> Optional[str]:
    """Registry entry name covering the address, or None."""
    if isinstance(target, str):
        target = Address.parse(target)
    matches = special_purpose_registry().covering(target)
    return matches[-1][1] if matches else None
