"""Binary radix trie over CIDR prefixes.

The trie stores one value set per exact prefix and supports the three
lookups every substrate needs:

* :meth:`PrefixTrie.lookup_exact` — value(s) stored at a prefix,
* :meth:`PrefixTrie.lookup_longest` — longest-prefix match for an
  address (BGP forwarding, RFC 6811 VRP matching),
* :meth:`PrefixTrie.covering` — *all* covering prefixes of an address
  or prefix, shortest first (paper Section 3, step 3: "we extract all
  covering prefixes").

One trie instance handles a single address family; :class:`PrefixTrie`
multiplexes IPv4 and IPv6 internally so callers never care.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar, Union

from repro.net.addr import Address, Prefix
from repro.obs.runtime import metrics

V = TypeVar("V")

_LOOKUP_HELP = "PrefixTrie lookups by operation"
_MATCH_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


class _Node(Generic[V]):
    __slots__ = ("children", "values")

    def __init__(self):
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.values: Optional[List[V]] = None


class _FamilyTrie(Generic[V]):
    """Radix trie for a single address family."""

    __slots__ = ("_root", "_bits", "_size")

    def __init__(self, bits: int):
        self._root: _Node[V] = _Node()
        self._bits = bits
        self._size = 0

    def _bit(self, value: int, depth: int) -> int:
        return (value >> (self._bits - 1 - depth)) & 1

    def insert(self, prefix: Prefix, value: V) -> None:
        node = self._root
        for depth in range(prefix.length):
            bit = self._bit(prefix.value, depth)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if node.values is None:
            node.values = []
            self._size += 1
        node.values.append(value)

    def remove(self, prefix: Prefix, value: V) -> bool:
        node = self._root
        path = []
        for depth in range(prefix.length):
            bit = self._bit(prefix.value, depth)
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.values or value not in node.values:
            return False
        node.values.remove(value)
        if not node.values:
            node.values = None
            self._size -= 1
            # Prune now-empty leaf chain.
            for parent, bit in reversed(path):
                child = parent.children[bit]
                if child.values is None and child.children == [None, None]:
                    parent.children[bit] = None
                else:
                    break
        return True

    def exact(self, prefix: Prefix) -> List[V]:
        node = self._root
        for depth in range(prefix.length):
            child = node.children[self._bit(prefix.value, depth)]
            if child is None:
                return []
            node = child
        return list(node.values) if node.values else []

    def walk_covering(self, value: int, max_depth: int) -> Iterator[Tuple[int, List[V]]]:
        """Yield ``(length, values)`` for every stored prefix covering
        the top ``max_depth`` bits of ``value``, shortest first."""
        node = self._root
        if node.values:
            yield 0, list(node.values)
        for depth in range(max_depth):
            node = node.children[self._bit(value, depth)]
            if node is None:
                return
            if node.values:
                yield depth + 1, list(node.values)

    def iter_items(self, family: int) -> Iterator[Tuple[Prefix, V]]:
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, value, depth = stack.pop()
            if node.values is not None:
                prefix = Prefix(family, value << (self._bits - depth), depth)
                for item in node.values:
                    yield prefix, item
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (value << 1) | bit, depth + 1))

    def __len__(self) -> int:
        return self._size


class PrefixTrie(Generic[V]):
    """Dual-stack radix trie mapping prefixes to lists of values."""

    def __init__(self):
        self._tries = {4: _FamilyTrie[V](32), 6: _FamilyTrie[V](128)}
        self._count = 0

    def insert(self, prefix: Prefix, value: V) -> None:
        """Associate ``value`` with ``prefix`` (duplicates allowed)."""
        self._tries[prefix.family].insert(prefix, value)
        self._count += 1

    def remove(self, prefix: Prefix, value: V) -> bool:
        """Remove one ``(prefix, value)`` association; True on success."""
        removed = self._tries[prefix.family].remove(prefix, value)
        if removed:
            self._count -= 1
        return removed

    def lookup_exact(self, prefix: Prefix) -> List[V]:
        """Values stored at exactly ``prefix`` (empty list if none)."""
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_trie_lookups_total", _LOOKUP_HELP, labelnames=("op",)
            ).labels(op="exact").inc()
        return self._tries[prefix.family].exact(prefix)

    def _covering(self, target: Union[Address, Prefix]) -> List[Tuple[Prefix, V]]:
        """Uninstrumented covering walk shared by the public lookups."""
        if isinstance(target, Address):
            target = target.to_prefix()
        trie = self._tries[target.family]
        results: List[Tuple[Prefix, V]] = []
        for length, values in trie.walk_covering(target.value, target.length):
            prefix = target.supernet(length)
            for value in values:
                results.append((prefix, value))
        return results

    def _record_lookup(self, op: str, results: List[Tuple[Prefix, V]]) -> None:
        """Count one logical lookup: op counter, matches, miss."""
        counters = metrics()
        if not counters.enabled:
            return
        counters.counter(
            "ripki_trie_lookups_total", _LOOKUP_HELP, labelnames=("op",)
        ).labels(op=op).inc()
        counters.histogram(
            "ripki_trie_covering_matches",
            "Covering prefixes found per lookup",
            buckets=_MATCH_BUCKETS,
        ).observe(len(results))
        if not results:
            counters.counter(
                "ripki_trie_misses_total",
                "Lookups finding no covering prefix",
            ).inc()

    def covering(self, target: Union[Address, Prefix]) -> List[Tuple[Prefix, V]]:
        """All stored prefixes covering ``target``, shortest first."""
        results = self._covering(target)
        self._record_lookup("covering", results)
        return results

    def lookup_longest(
        self, target: Union[Address, Prefix]
    ) -> Optional[Tuple[Prefix, List[V]]]:
        """Longest-prefix match; None when nothing covers ``target``."""
        matches = self._covering(target)
        self._record_lookup("longest", matches)
        if not matches:
            return None
        longest = matches[-1][0]
        values = [value for prefix, value in matches if prefix == longest]
        return longest, values

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate every stored ``(prefix, value)`` pair."""
        for family, trie in self._tries.items():
            yield from trie.iter_items(family)

    def prefixes(self) -> Iterator[Prefix]:
        """Iterate distinct stored prefixes."""
        seen = set()
        for prefix, _value in self.items():
            if prefix not in seen:
                seen.add(prefix)
                yield prefix

    def __contains__(self, prefix: Prefix) -> bool:
        return bool(self.lookup_exact(prefix))

    def __len__(self) -> int:
        """Number of stored associations (not distinct prefixes)."""
        return self._count

    def __repr__(self) -> str:
        distinct = len(self._tries[4]) + len(self._tries[6])
        return f"<PrefixTrie {self._count} entries over {distinct} prefixes>"
