"""Observability for the measurement pipeline (``repro.obs``).

Four instruments, one switchboard:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry with
  Prometheus-text and JSON exposition,
* :mod:`repro.obs.tracing` — nested spans over the monotonic clock
  with an in-memory collector and per-name aggregation,
* :mod:`repro.obs.progress` — callback-based rate/ETA reporting for
  long runs,
* :mod:`repro.obs.logging` — structured key=value logging behind the
  ``REPRO_LOG_LEVEL`` knob,
* :mod:`repro.obs.runtime` — the process-wide enable/disable switch
  (null implementations by default, so instrumentation is free when
  nobody is watching),
* :mod:`repro.obs.report` — timing tables and JSON summaries.
"""

from repro.obs.logging import get_logger, kv, reset_logging
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    merge_registries,
    registry_from_wire,
    registry_to_wire,
)
from repro.obs.progress import (
    CaptureProgress,
    ProgressEvent,
    ProgressReporter,
    stderr_renderer,
)
from repro.obs.report import (
    cache_report,
    degradation_report,
    serve_report,
    stage_timing_report,
    timing_summary,
    timing_table,
    write_timing_summary,
)
from repro.obs.runtime import (
    disable,
    enable,
    metrics,
    observability_enabled,
    scope,
    thread_scope,
    tracer,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanStats,
    TraceCollector,
)

__all__ = [
    "CaptureProgress",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ProgressEvent",
    "ProgressReporter",
    "Span",
    "SpanStats",
    "TraceCollector",
    "cache_report",
    "degradation_report",
    "disable",
    "enable",
    "get_logger",
    "kv",
    "merge_registries",
    "metrics",
    "observability_enabled",
    "registry_from_wire",
    "registry_to_wire",
    "reset_logging",
    "scope",
    "serve_report",
    "stage_timing_report",
    "thread_scope",
    "stderr_renderer",
    "timing_summary",
    "timing_table",
    "tracer",
    "write_timing_summary",
]
