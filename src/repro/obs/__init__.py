"""Observability for the measurement pipeline (``repro.obs``).

Four instruments, one switchboard:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry with
  Prometheus-text and JSON exposition,
* :mod:`repro.obs.tracing` — nested spans over the monotonic clock
  with an in-memory collector and per-name aggregation,
* :mod:`repro.obs.progress` — callback-based rate/ETA reporting for
  long runs,
* :mod:`repro.obs.logging` — structured key=value logging behind the
  ``REPRO_LOG_LEVEL`` knob,
* :mod:`repro.obs.runtime` — the process-wide enable/disable switch
  (null implementations by default, so instrumentation is free when
  nobody is watching),
* :mod:`repro.obs.report` — timing tables and JSON summaries,
* :mod:`repro.obs.window` — sliding-window histograms/rates and the
  SLO tracker (live "last N seconds" views over a long-running
  service, deterministic under an injected clock),
* :mod:`repro.obs.http` — the stdlib telemetry daemon exposing
  ``/metrics``, ``/health``, ``/ready``, and ``/snapshot``,
* :mod:`repro.obs.profile` — cProfile harness emitting folded
  flamegraph stacks and top-N cumulative tables.
"""

from repro.obs.http import HealthSource, TelemetryServer
from repro.obs.logging import get_logger, kv, reset_logging
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    merge_registries,
    registry_from_snapshot,
    registry_from_wire,
    registry_to_wire,
)
from repro.obs.profile import (
    ProfileCapture,
    ProfileEntry,
    ProfileReport,
    profile_scope,
)
from repro.obs.progress import (
    CaptureProgress,
    ProgressEvent,
    ProgressReporter,
    stderr_renderer,
)
from repro.obs.report import (
    cache_report,
    degradation_report,
    profile_report,
    rov_report,
    rtrd_report,
    scheduler_report,
    serve_report,
    stage_timing_report,
    timing_summary,
    timing_table,
    world_report,
    write_timing_summary,
)
from repro.obs.runtime import (
    disable,
    enable,
    metrics,
    observability_enabled,
    scope,
    thread_scope,
    tracer,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanStats,
    TraceCollector,
)
from repro.obs.window import (
    EXPORTED_QUANTILES,
    RollingRate,
    SLOStatus,
    SLOTarget,
    SLOTracker,
    WindowedHistogram,
    estimate_quantiles,
    quantile_from_buckets,
)

__all__ = [
    "CaptureProgress",
    "Counter",
    "DEFAULT_BUCKETS",
    "EXPORTED_QUANTILES",
    "Gauge",
    "HealthSource",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ProfileCapture",
    "ProfileEntry",
    "ProfileReport",
    "ProgressEvent",
    "ProgressReporter",
    "RollingRate",
    "SLOStatus",
    "SLOTarget",
    "SLOTracker",
    "Span",
    "SpanStats",
    "TelemetryServer",
    "TraceCollector",
    "WindowedHistogram",
    "cache_report",
    "degradation_report",
    "disable",
    "enable",
    "estimate_quantiles",
    "get_logger",
    "kv",
    "merge_registries",
    "metrics",
    "observability_enabled",
    "profile_report",
    "profile_scope",
    "quantile_from_buckets",
    "registry_from_snapshot",
    "registry_from_wire",
    "registry_to_wire",
    "reset_logging",
    "rtrd_report",
    "scheduler_report",
    "scope",
    "serve_report",
    "stage_timing_report",
    "thread_scope",
    "stderr_renderer",
    "timing_summary",
    "timing_table",
    "tracer",
    "rov_report",
    "world_report",
    "write_timing_summary",
]
