"""Live telemetry exposition over HTTP (stdlib only).

A long-running validator is only as trustworthy as its live
introspection — the paper's core finding is that deployed RPKI
pipelines degrade *silently*.  :class:`TelemetryServer` is the
always-on window: a daemon-threaded :class:`ThreadingHTTPServer`
serving four read-only endpoints over the process's observability
state:

* ``GET /metrics`` — Prometheus text exposition, byte-identical to
  what :meth:`MetricsRegistry.write_prometheus` writes for the same
  registry state (same renderer, same UTF-8 bytes);
* ``GET /health`` — always-200 JSON: uptime, the build/config
  digests shared with the snapshot-cache fingerprints, staleness,
  and the age of the last refresh;
* ``GET /ready`` — 200 when serving fresh state, 503 when the
  :class:`HealthSource` reports stale or not-yet-serving (the same
  staleness signal :meth:`ServingIndex.stale_against` computes);
* ``GET /snapshot`` — the registry's JSON ``snapshot()``.

The server holds no state of its own: the registry is read at scrape
time (default: whatever :func:`repro.obs.runtime.metrics` resolves
to), and the :class:`HealthSource` is a small mutable card its owner
— a :class:`QueryService` wrapper, a ``ContinuousStudy`` loop, the
CLI — stamps as the world changes.  Scrapes never block the serving
path: rendering reads plain ints/floats under the GIL, and counters
only ever increase, so a concurrent scrape sees a monotone (possibly
slightly behind) view, never a torn one.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs import runtime

Clock = Callable[[], float]


class HealthSource:
    """The mutable health card a telemetry server reads.

    Owners stamp it as state changes: :meth:`set_digests` after an
    index build (the same zone/dump/vrps fingerprints the snapshot
    cache keys artifacts by, plus the config fingerprint),
    :meth:`mark_refresh` after every (re)build, :meth:`set_staleness`
    with a callable probing the current world (e.g. ``lambda:
    index.stale_against(study)``).  Reads never raise: a staleness
    probe that throws reports stale (a broken probe is not evidence
    of freshness).
    """

    def __init__(self, clock: Optional[Clock] = None):
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._started = self._clock()
        self._lock = threading.Lock()
        self._digests: Dict[str, str] = {}
        self._last_refresh: Optional[float] = None
        self._staleness: Optional[Callable[[], bool]] = None
        self._serving = False
        self._detail: Dict[str, object] = {}

    # -- owner-side stamps ---------------------------------------------------

    def set_digests(self, digests: Dict[str, str]) -> None:
        with self._lock:
            self._digests = dict(digests)

    def set_staleness(self, probe: Optional[Callable[[], bool]]) -> None:
        with self._lock:
            self._staleness = probe

    def mark_refresh(self) -> None:
        """Stamp 'the served state was (re)built now'."""
        with self._lock:
            self._last_refresh = self._clock()
            self._serving = True

    def set_detail(self, **detail: object) -> None:
        """Attach free-form JSON-able fields (domain count, mode...)."""
        with self._lock:
            self._detail.update(detail)

    # -- scrape-side reads ---------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return self._clock() - self._started

    @property
    def last_refresh_age_s(self) -> Optional[float]:
        with self._lock:
            stamp = self._last_refresh
        if stamp is None:
            return None
        return self._clock() - stamp

    def stale(self) -> bool:
        with self._lock:
            probe = self._staleness
        if probe is None:
            return False
        try:
            return bool(probe())
        except Exception:
            return True

    def ready(self) -> bool:
        """Serving, and not stale."""
        with self._lock:
            serving = self._serving
        return serving and not self.stale()

    def to_json(self) -> Dict[str, object]:
        with self._lock:
            digests = dict(self._digests)
            detail = dict(self._detail)
            serving = self._serving
        age = self.last_refresh_age_s
        stale = self.stale()
        return {
            "uptime_s": round(self.uptime_s, 3),
            "serving": serving,
            "stale": stale,
            "ready": serving and not stale,
            "digests": digests,
            "last_refresh_age_s": (
                round(age, 3) if age is not None else None
            ),
            "detail": detail,
        }


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints; everything else is 404."""

    server_version = "ripki-telemetry/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            body = self._registry().render_prometheus().encode("utf-8")
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/snapshot":
            self._json(200, self._registry().snapshot())
        elif path == "/health":
            self._json(200, self._health().to_json())
        elif path == "/ready":
            health = self._health()
            ready = health.ready()
            self._json(
                200 if ready else 503,
                {"ready": ready, "stale": health.stale()},
            )
        else:
            self._json(404, {"error": f"unknown path {path!r}"})

    def _registry(self):
        return self.server.telemetry.registry  # type: ignore[attr-defined]

    def _health(self) -> HealthSource:
        return self.server.telemetry.health  # type: ignore[attr-defined]

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload: Dict[str, object]) -> None:
        # No sort_keys: payloads are already deterministically ordered,
        # and a snapshot's per-series label order *is* the metric's
        # labelnames order — re-sorting would break
        # ``registry_from_snapshot``'s render-identical reconstruction.
        body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
        self._reply(status, body, "application/json")

    def log_message(self, format: str, *args: object) -> None:
        # Scrapes are high-frequency; stderr chatter stays off.
        pass


class TelemetryServer:
    """The exposition daemon: bind, serve in a thread, stop cleanly.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports
    the bound one.  ``registry=None`` resolves the process-wide
    registry *at scrape time* through :func:`repro.obs.runtime.metrics`,
    so a CLI that calls :func:`repro.obs.enable` after constructing
    the server still exposes the right instruments.  Usable as a
    context manager.
    """

    def __init__(
        self,
        registry=None,
        health: Optional[HealthSource] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._registry = registry
        self.health = health if health is not None else HealthSource()
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def registry(self):
        if self._registry is not None:
            return self._registry
        return runtime.metrics()

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _TelemetryHandler
        )
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="ripki-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<TelemetryServer {self.url} {state}>"
