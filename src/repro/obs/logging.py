"""Structured logging for the reproduction.

One configurator, one format.  Every module asks for its logger via
``get_logger(__name__)`` and logs key=value pairs::

    log.info("rtr sync", extra=kv(serial=12, vrps=48_201))
    # 2015-11-16T12:00:00 INFO repro.rpki.rtr: rtr sync serial=12 vrps=48201

The root level comes from the ``REPRO_LOG_LEVEL`` environment
variable (default ``WARNING`` so library use stays silent); handlers
are installed exactly once on the ``repro`` root logger.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any, Dict, Optional

ENV_LEVEL = "REPRO_LOG_LEVEL"
DEFAULT_LEVEL = "WARNING"
ROOT_NAME = "repro"

_FIELDS_KEY = "repro_fields"


def kv(**fields: Any) -> Dict[str, Dict[str, Any]]:
    """Wrap structured fields for a logging call's ``extra=``."""
    return {_FIELDS_KEY: fields}


class KeyValueFormatter(logging.Formatter):
    """``timestamp LEVEL logger: message key=value ...`` lines."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record)} {record.levelname} "
            f"{record.name}: {record.getMessage()}"
        )
        fields = getattr(record, _FIELDS_KEY, None)
        if fields:
            pairs = " ".join(
                f"{key}={_render(value)}" for key, value in fields.items()
            )
            base = f"{base} {pairs}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def _render(value: Any) -> str:
    text = str(value)
    if " " in text or "=" in text or not text:
        return repr(text)
    return text


def configured_level() -> int:
    """The level named by ``REPRO_LOG_LEVEL`` (default WARNING)."""
    name = os.environ.get(ENV_LEVEL, DEFAULT_LEVEL).upper()
    level = logging.getLevelName(name)
    if not isinstance(level, int):
        return logging.WARNING
    return level


def get_logger(name: str = ROOT_NAME, stream=None) -> logging.Logger:
    """The structured logger for ``name``, configuring the root once.

    All loggers hang off the ``repro`` root, so the single handler and
    the ``REPRO_LOG_LEVEL`` knob govern the whole package.
    """
    root = logging.getLogger(ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(KeyValueFormatter())
        root.addHandler(handler)
        root.propagate = False
    root.setLevel(configured_level())
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def reset_logging() -> None:
    """Drop installed handlers (test isolation helper)."""
    root = logging.getLogger(ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
        handler.close()
