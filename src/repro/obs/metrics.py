"""Dependency-free metrics registry (Prometheus-style, deterministic).

Three instrument kinds cover everything the measurement pipeline
needs:

* :class:`Counter` — monotonically increasing totals (domains
  measured, PDUs decoded, cache hits),
* :class:`Gauge` — point-in-time values (VRP table size, current
  serial),
* :class:`Histogram` — distributions over *fixed* bucket boundaries
  so two runs over the same world produce byte-identical snapshots.

Metrics support labels (``counter.labels(form="www").inc()``); every
(name, label-set) pair is one time series.  The registry renders both
Prometheus text exposition format and a JSON snapshot, and sorts all
series deterministically.

A :class:`NullRegistry` provides the zero-cost-by-default mode: every
instrument it hands out is a shared no-op singleton, so instrumented
hot paths pay only an attribute call when observability is disabled.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

# Seconds-scale latency buckets: wide enough for a 1M-domain run,
# fine enough to separate a trie lookup from a DNS chain walk.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_RESERVED_LABELS = frozenset({"le"})


class MetricError(ValueError):
    """Raised on metric misuse (type clash, bad labels)."""


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _label_key(
    labelnames: Sequence[str], labels: Mapping[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Common child bookkeeping for labelled instruments."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        bad = _RESERVED_LABELS & set(self.labelnames)
        if bad:
            raise MetricError(f"reserved label name(s): {sorted(bad)}")
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}

    def labels(self, **labels: str) -> "_Metric":
        """The child series for one concrete label assignment."""
        if not self.labelnames:
            raise MetricError(f"{self.name} takes no labels")
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help)
            self._children[key] = child
        return child

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise MetricError(
                f"{self.name} has labels {self.labelnames}; call .labels() first"
            )

    def series(self) -> List[Tuple[Tuple[str, ...], "_Metric"]]:
        """Every concrete child, sorted by label values."""
        if not self.labelnames:
            return [((), self)]
        return sorted(self._children.items())


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value: float = 0

    def inc(self, amount: Number = 1) -> None:
        self._require_leaf()
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        self._value += amount

    def _absorb(self, other: "Counter") -> None:
        self._value += other._value

    @property
    def value(self) -> Number:
        self._require_leaf()
        return self._value


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value: float = 0

    def set(self, value: Number) -> None:
        self._require_leaf()
        self._value = value

    def inc(self, amount: Number = 1) -> None:
        self._require_leaf()
        self._value += amount

    def dec(self, amount: Number = 1) -> None:
        self._require_leaf()
        self._value -= amount

    def _absorb(self, other: "Gauge") -> None:
        # Gauges merge additively: shard-local table sizes / depths
        # sum to the whole; point-in-time gauges should be set after
        # the merge by whoever owns them.
        self._value += other._value

    @property
    def value(self) -> Number:
        self._require_leaf()
        return self._value


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise MetricError(f"histogram {self.name} needs >= 1 bucket")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum: float = 0.0
        self._count = 0

    def labels(self, **labels: str) -> "Histogram":
        if not self.labelnames:
            raise MetricError(f"{self.name} takes no labels")
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.name, self.help, buckets=self.buckets)
            self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: Number) -> None:
        self._require_leaf()
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def _absorb(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise MetricError(
                f"histogram {self.name} bucket mismatch: "
                f"{other.buckets} != {self.buckets}"
            )
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._sum += other._sum
        self._count += other._count

    @property
    def count(self) -> int:
        self._require_leaf()
        return self._count

    @property
    def sum(self) -> float:
        self._require_leaf()
        return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        self._require_leaf()
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()

    def labels(self, **labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    @property
    def value(self) -> Number:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A named collection of instruments with deterministic exposition."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"metric {name!r} re-registered as a different "
                    f"{cls.kind}/{sorted(labelnames)}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)  # type: ignore

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)  # type: ignore

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )  # type: ignore

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold every series of ``other`` into this registry.

        Counters and gauges add their values, histograms add their
        bucket counts/sums; series present only in ``other`` are
        created (including zero-valued ones, so pre-registered funnel
        series survive the merge).  A name registered with a
        different kind, label set, or bucket layout raises
        :class:`MetricError`.  Returns ``self`` so merges chain.
        """
        for name in other.names():
            theirs = other.get(name)
            if isinstance(theirs, Histogram):
                mine = self.histogram(
                    name, theirs.help, theirs.labelnames, buckets=theirs.buckets
                )
            elif isinstance(theirs, Counter):
                mine = self.counter(name, theirs.help, theirs.labelnames)
            elif isinstance(theirs, Gauge):
                mine = self.gauge(name, theirs.help, theirs.labelnames)
            else:
                raise MetricError(
                    f"cannot merge metric {name!r} of kind {theirs.kind!r}"
                )
            for key, child in theirs.series():
                target = mine
                if theirs.labelnames:
                    target = mine.labels(**dict(zip(theirs.labelnames, key)))
                target._absorb(child)
        return self

    # -- exposition --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dict: deterministic, label sets as sorted keys."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            series: List[Dict[str, object]] = []
            for key, child in metric.series():
                labels = dict(zip(metric.labelnames, key))
                if isinstance(child, Histogram):
                    series.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                [bound, count]
                                for bound, count in child.bucket_counts()
                            ],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[name] = {"type": metric.kind, "help": metric.help, "series": series}
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key, child in metric.series():
                labels = dict(zip(metric.labelnames, key))
                if isinstance(child, Histogram):
                    for bound, count in child.bucket_counts():
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        lines.append(
                            f"{name}_bucket{_labels({**labels, 'le': le})} {count}"
                        )
                    lines.append(f"{name}_sum{_labels(labels)} {_fmt(child.sum)}")
                    lines.append(f"{name}_count{_labels(labels)} {child.count}")
                else:
                    lines.append(f"{name}{_labels(labels)} {_fmt(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path) -> int:
        """Write the text exposition to ``path``; returns byte count."""
        text = self.render_prometheus()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(text.encode("utf-8"))


class NullRegistry:
    """Zero-cost registry: hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {}

    def render_prometheus(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()

AnyRegistry = Union[MetricsRegistry, NullRegistry]


def registry_to_wire(registry: AnyRegistry) -> List[list]:
    """Flatten a registry to JSON-able primitives, exactly.

    The snapshot cache stores the metric *delta* a pipeline stage
    produced alongside the stage's artifact, so a cache hit can replay
    the exact counter ticks the recomputation would have made.  Unlike
    :meth:`MetricsRegistry.snapshot` this form keeps label names and
    histogram internals (raw per-bucket counts, not cumulative ones),
    so ``registry_from_wire`` rebuilds a registry that merges and
    renders identically — including labelled metrics with zero
    children, which the snapshot form would lose.
    """
    out: List[list] = []
    for name in registry.names():
        metric = registry.get(name)
        buckets = list(metric.buckets) if isinstance(metric, Histogram) else None
        series: List[list] = []
        for key, child in metric.series():
            if isinstance(child, Histogram):
                payload = [list(child._counts), child._sum, child._count]
            else:
                payload = child._value
            series.append([list(key), payload])
        out.append(
            [name, metric.kind, metric.help, list(metric.labelnames),
             buckets, series]
        )
    return out


def registry_from_wire(wire: Iterable[list]) -> MetricsRegistry:
    """Rebuild a registry from :func:`registry_to_wire` output."""
    registry = MetricsRegistry()
    for name, kind, help, labelnames, buckets, series in wire:
        if kind == "histogram":
            metric = registry.histogram(
                name, help, labelnames, buckets=buckets
            )
        elif kind == "counter":
            metric = registry.counter(name, help, labelnames)
        elif kind == "gauge":
            metric = registry.gauge(name, help, labelnames)
        else:
            raise MetricError(f"unknown wire metric kind {kind!r}")
        for key, payload in series:
            child = (
                metric.labels(**dict(zip(labelnames, key)))
                if labelnames
                else metric
            )
            if kind == "histogram":
                counts, total, count = payload
                child._counts = list(counts)
                child._sum = total
                child._count = count
            else:
                child._value = payload
    return registry


def registry_from_snapshot(snapshot: Mapping[str, dict]) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.snapshot` output.

    The reconstruction renders byte-identical Prometheus text to the
    source registry: label names come back in the snapshot's dict
    order (which preserves the source's label order), histogram
    bounds are recovered from the per-series bucket lists, and the
    cumulative bucket counts are de-accumulated into raw ones.  The
    only information the snapshot form lacks — the label *names* of a
    labelled metric with zero children, and the bucket layout of a
    histogram with zero series — cannot affect rendering, because
    neither produces any series lines.
    """
    registry = MetricsRegistry()
    for name, family in snapshot.items():
        kind = family["type"]
        help = family.get("help", "")
        series = family.get("series", [])
        labelnames: Tuple[str, ...] = ()
        if series:
            labelnames = tuple(series[0]["labels"])
        else:
            # Unlabelled metrics always carry their one implicit
            # series, so an empty list can only mean "labelled, no
            # children yet".  The actual label names are unknowable
            # and irrelevant — any non-empty tuple reproduces the
            # series-less rendering (HELP/TYPE lines only).
            labelnames = ("label",)
        if kind == "histogram":
            if not series:
                # Bounds equally unknowable and irrelevant.
                registry.histogram(name, help, labelnames)
                continue
            bounds = tuple(
                bound for bound, _count in series[0]["buckets"][:-1]
            )
            metric = registry.histogram(
                name, help, labelnames, buckets=bounds
            )
        elif kind == "counter":
            metric = registry.counter(name, help, labelnames)
        elif kind == "gauge":
            metric = registry.gauge(name, help, labelnames)
        else:
            raise MetricError(f"unknown snapshot metric kind {kind!r}")
        for entry in series:
            child = (
                metric.labels(**entry["labels"]) if labelnames else metric
            )
            if kind == "histogram":
                cumulative = [count for _bound, count in entry["buckets"]]
                raw = [
                    count - (cumulative[index - 1] if index else 0)
                    for index, count in enumerate(cumulative)
                ]
                child._counts = raw
                child._sum = entry["sum"]
                child._count = entry["count"]
            else:
                child._value = entry["value"]
    return registry


def merge_registries(
    registries: Iterable[MetricsRegistry],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Merge ``registries`` (in order) into one registry.

    ``into`` is the target (a fresh registry when omitted); the
    sources are left untouched.
    """
    target = into if into is not None else MetricsRegistry()
    for registry in registries:
        target.merge(registry)
    return target


def _fmt(value: Number) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )
