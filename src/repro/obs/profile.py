"""Deterministic cProfile harness with flamegraph-ready output.

The ROADMAP's perf items need evidence, not vibes: every benchmark
(and any pipeline stage or serve batch) can run under
:func:`profile_scope`, which wraps :mod:`cProfile` and yields a
:class:`ProfileCapture` whose report exposes

* **collapsed-stack ("folded") lines** — ``caller;callee <µs>``
  edges plus ``func <µs>`` self-time lines, the format flamegraph
  tooling (``flamegraph.pl``, speedscope, inferno) loads directly.
  cProfile records caller→callee edges rather than full stacks, so
  the folded output is the two-level projection of the call graph —
  enough to see where cumulative time pools and which edges feed it;
* **a top-N cumulative table** — rendered by
  :func:`repro.obs.report.profile_report` in the report layer.

Determinism: function labels are ``module:qualname`` with absolute
paths stripped, values are integer microseconds, and lines are
sorted, so two profiles of the same workload differ only in the
timing numbers — diffs stay readable and artifacts are stable to
sort order.
"""

from __future__ import annotations

import cProfile
import pstats
import re
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Tuple

# CPython names some built-ins after the object's address
# ("<built-in method __new__ of type object at 0x7f...>"); strip the
# address so folded output is identical across runs.
_ADDRESS = re.compile(r" at 0x[0-9a-f]+", re.IGNORECASE)


def _label(func: Tuple[str, int, str]) -> str:
    """``module:qualname`` label for a pstats function key."""
    filename, lineno, name = func
    if filename in ("~", ""):
        return f"<built-in>:{_ADDRESS.sub('', name)}"
    stem = PurePath(filename).name
    return f"{stem}:{name}"


@dataclass(frozen=True)
class ProfileEntry:
    """One profiled function's aggregate."""

    label: str
    calls: int
    self_s: float
    cumulative_s: float


class ProfileReport:
    """The analyzable result of one :func:`profile_scope` run."""

    def __init__(
        self,
        entries: List[ProfileEntry],
        edges: Dict[Tuple[str, str], float],
    ):
        # Cumulative-time descending, label as the deterministic tiebreak.
        self.entries = sorted(
            entries, key=lambda e: (-e.cumulative_s, e.label)
        )
        self._edges = edges

    @classmethod
    def from_profile(cls, profiler: cProfile.Profile) -> "ProfileReport":
        stats = pstats.Stats(profiler)
        entries: List[ProfileEntry] = []
        edges: Dict[Tuple[str, str], float] = {}
        for func, (cc, nc, tt, ct, callers) in stats.stats.items():
            label = _label(func)
            entries.append(
                ProfileEntry(
                    label=label, calls=int(nc),
                    self_s=tt, cumulative_s=ct,
                )
            )
            for caller, caller_value in callers.items():
                # Caller rows are (cc, nc, tt, ct) tuples: ct is the
                # cumulative time this callee spent under that caller.
                edge_ct = caller_value[3]
                key = (_label(caller), label)
                edges[key] = edges.get(key, 0.0) + edge_ct
        return cls(entries, edges)

    def folded_lines(self) -> List[str]:
        """Collapsed-stack lines, sorted; values in integer µs.

        Self-time roots come out as single-frame stacks and
        caller→callee edges as two-frame stacks; zero-µs lines are
        dropped (they carry no flame area).
        """
        lines: List[str] = []
        for entry in self.entries:
            micros = int(entry.self_s * 1_000_000)
            if micros > 0:
                lines.append(f"{entry.label} {micros}")
        for (caller, callee), seconds in self._edges.items():
            micros = int(seconds * 1_000_000)
            if micros > 0:
                lines.append(f"{caller};{callee} {micros}")
        return sorted(lines)

    def write_folded(self, path) -> int:
        """Write the folded stacks to ``path``; returns the line count."""
        lines = self.folded_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def top(self, n: int = 15) -> List[ProfileEntry]:
        """The ``n`` heaviest functions by cumulative time."""
        return self.entries[:n]

    def total_seconds(self) -> float:
        """Total profiled self-time (sums to the wall time measured)."""
        return sum(entry.self_s for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class ProfileCapture:
    """The handle :func:`profile_scope` yields; ``report`` is set on
    scope exit."""

    def __init__(self):
        self.report: Optional[ProfileReport] = None


@contextmanager
def profile_scope() -> Iterator[ProfileCapture]:
    """Profile the enclosed block with cProfile.

    ::

        with profile_scope() as capture:
            study.run()
        capture.report.write_folded("BENCH_run.folded")

    The report is built even when the block raises, so a failing
    benchmark still leaves its profile artifact behind.
    """
    capture = ProfileCapture()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield capture
    finally:
        profiler.disable()
        capture.report = ProfileReport.from_profile(profiler)
