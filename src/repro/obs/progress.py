"""Rate/ETA progress reporting for long measurement runs.

The paper's study walks 1M domains; a run that long needs a liveness
signal.  :class:`ProgressReporter` is callback-based: the CLI renders
events to stderr, tests capture them in a list, and the pipeline
itself stays renderer-agnostic.

Cadence is controlled two ways and an event fires when *either*
triggers: ``every`` (a tick-count stride, deterministic for tests)
and ``min_interval`` (wall seconds, keeps terminals readable).  The
final event is always delivered via :meth:`done` with
``finished=True`` so renderers can print a closing newline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class ProgressEvent:
    """One progress observation."""

    count: int
    total: int
    elapsed: float
    rate: float           # items per second since start
    eta: Optional[float]  # seconds remaining; None when unknowable
    finished: bool = False

    @property
    def fraction(self) -> float:
        return self.count / self.total if self.total else 0.0

    def render(self) -> str:
        """A one-line human rendering (used by the CLI)."""
        percent = f"{self.fraction * 100:5.1f}%"
        rate = f"{self.rate:,.0f}/s" if self.rate else "-/s"
        if self.finished:
            return (
                f"measured {self.count:,}/{self.total:,} domains "
                f"({percent}) in {self.elapsed:.1f}s [{rate}]"
            )
        eta = f"{self.eta:.0f}s" if self.eta is not None else "?"
        return (
            f"measuring {self.count:,}/{self.total:,} domains "
            f"({percent}) [{rate}, eta {eta}]"
        )


ProgressCallback = Callable[[ProgressEvent], None]


class ProgressReporter:
    """Counts ticks and emits throttled :class:`ProgressEvent`\\ s.

    Thread-safe: shard workers may call :meth:`tick` concurrently
    (every mutation happens under one lock), and batched ticks —
    ``tick(n)`` with ``n > 1``, as a completed shard reports — fire
    the stride cadence whenever the count *crosses* a multiple of
    ``every``, not only when it lands exactly on one.
    """

    def __init__(
        self,
        total: int,
        callback: ProgressCallback,
        every: int = 0,
        min_interval: float = 1.0,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if total < 0:
            raise ValueError("total must be >= 0")
        self.total = total
        self.count = 0
        self._callback = callback
        self._every = max(0, every)
        self._min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_emit = self._started
        self._last_bucket = 0
        self._emitted = 0
        self._finished = False
        self._lock = threading.Lock()

    def tick(self, n: int = 1) -> None:
        """Record ``n`` completed items; emit if the cadence says so."""
        with self._lock:
            self.count += n
            now = self._clock()
            due_by_stride = (
                self._every and self.count // self._every > self._last_bucket
            )
            due_by_time = (
                self._min_interval >= 0
                and now - self._last_emit >= self._min_interval
            )
            if due_by_stride or due_by_time:
                self._emit(now, finished=False)

    def done(self) -> None:
        """Emit the final event (idempotent)."""
        with self._lock:
            if self._finished:
                return
            self._finished = True
            self._emit(self._clock(), finished=True)

    @property
    def emitted(self) -> int:
        """Number of events delivered so far."""
        return self._emitted

    def _emit(self, now: float, finished: bool) -> None:
        elapsed = now - self._started
        rate = self.count / elapsed if elapsed > 0 else 0.0
        remaining = self.total - self.count
        eta: Optional[float] = None
        if rate > 0 and remaining >= 0:
            eta = remaining / rate
        self._last_emit = now
        if self._every:
            self._last_bucket = self.count // self._every
        self._emitted += 1
        self._callback(
            ProgressEvent(
                count=self.count,
                total=self.total,
                elapsed=elapsed,
                rate=rate,
                eta=eta,
                finished=finished,
            )
        )


class CaptureProgress:
    """A callback that stores every event (for tests and tooling)."""

    def __init__(self):
        self.events: List[ProgressEvent] = []

    def __call__(self, event: ProgressEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


def stderr_renderer(stream=None) -> ProgressCallback:
    """A callback that repaints one status line on ``stream``."""
    import sys

    out = stream if stream is not None else sys.stderr

    def _render(event: ProgressEvent) -> None:
        line = event.render()
        end = "\n" if event.finished else ""
        out.write("\r" + line.ljust(68) + end)
        out.flush()

    return _render
