"""Human-facing renderings of collected observability data.

The CLI's closing per-stage timing table and the benchmark harness's
``BENCH_obs.json`` summary both come from here, so every consumer
formats trace aggregates the same way.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping

from repro.analysis.tables import TextTable
from repro.obs.tracing import SpanStats, TraceCollector


def timing_table(stats: Mapping[str, SpanStats]) -> str:
    """Render per-span-name aggregates with the shared TextTable."""
    table = TextTable(
        ["span", "count", "total s", "mean ms", "min ms", "max ms", "errors"]
    )
    for name in sorted(stats):
        entry = stats[name]
        minimum = 0.0 if entry.count == 0 else entry.min
        table.add_row(
            name,
            entry.count,
            f"{entry.total:.3f}",
            f"{entry.mean * 1000:.3f}",
            f"{minimum * 1000:.3f}",
            f"{entry.max * 1000:.3f}",
            entry.errors,
        )
    return table.render()


def stage_timing_report(collector: TraceCollector) -> str:
    """The CLI's closing table over every span the run recorded."""
    stats = collector.aggregate()
    if not stats:
        return "(no spans recorded)"
    lines = [timing_table(stats)]
    if collector.dropped:
        lines.append(f"({collector.dropped} spans dropped past retention limit)")
    return "\n".join(lines)


def degradation_report(
    degraded_domains: int,
    retries_total: int,
    faults_by_kind: Mapping[str, int],
    domain_count: int = 0,
) -> str:
    """Render the resilience outcome of a fault-injected run.

    Takes plain values rather than a ``StudyStatistics`` so this
    module keeps its import surface (analysis + tracing) free of the
    pipeline.
    """
    table = TextTable(["fault kind", "injected"])
    for kind in sorted(faults_by_kind):
        table.add_row(kind, faults_by_kind[kind])
    table.add_row("total", sum(faults_by_kind.values()))
    share = (
        f" ({degraded_domains / domain_count:.1%} of {domain_count})"
        if domain_count
        else ""
    )
    lines = [
        table.render(),
        f"retries spent: {retries_total}",
        f"degraded domains: {degraded_domains}{share}",
    ]
    return "\n".join(lines)


def cache_report(
    hits: Mapping[str, int],
    misses: Mapping[str, int],
    invalidated: Mapping[str, int],
) -> str:
    """Render the snapshot-cache outcome of a cache-backed run.

    Takes the three by-stage mappings as plain values (same rationale
    as :func:`degradation_report`).  Hit/miss rows use the funnel's
    stage keys; invalidation rows use the store's stage names, so the
    union of all three key sets is shown.
    """
    table = TextTable(["stage", "hits", "misses", "invalidated"])
    stages = sorted(set(hits) | set(misses) | set(invalidated))
    for stage in stages:
        table.add_row(
            stage,
            hits.get(stage, 0),
            misses.get(stage, 0),
            invalidated.get(stage, 0),
        )
    table.add_row(
        "total",
        sum(hits.values()),
        sum(misses.values()),
        sum(invalidated.values()),
    )
    served = sum(hits.values())
    worked = sum(misses.values())
    total = served + worked
    rate = f"{served / total:.1%}" if total else "n/a"
    return "\n".join([table.render(), f"hit rate: {rate}"])


def serve_report(summary: Mapping[str, object]) -> str:
    """Render a query-service run summary as latency/verdict tables.

    ``summary`` is the plain-dict shape of
    :func:`repro.serve.service.summarize_responses` (same rationale
    as :func:`degradation_report`: this module takes values, not
    pipeline objects).
    """
    table = TextTable(["query kind", "count", "p50 ms", "p99 ms"])
    by_kind = summary.get("by_kind", {})
    for kind in sorted(by_kind):
        entry = by_kind[kind]
        table.add_row(
            kind,
            entry["count"],
            f"{entry['p50_ms']:.3f}",
            f"{entry['p99_ms']:.3f}",
        )
    lines = [table.render()]
    verdicts = summary.get("verdicts", {})
    if verdicts:
        verdict_table = TextTable(["verdict", "answers"])
        for state in sorted(verdicts):
            verdict_table.add_row(state, verdicts[state])
        verdict_table.add_row("total", sum(verdicts.values()))
        lines.append(verdict_table.render())
    degraded = summary.get("degraded", {})
    marked = sum(degraded.values()) if degraded else 0
    queries = summary.get("queries", 0)
    share = f" ({marked / queries:.1%} of {queries})" if queries else ""
    markers = ", ".join(
        f"{marker}={count}" for marker, count in sorted(degraded.items())
    )
    lines.append(
        f"degraded answers: {marked}{share}"
        + (f" [{markers}]" if markers else "")
    )
    if "qps" in summary:
        lines.append(
            f"throughput: {summary['qps']} queries/s "
            f"over {summary.get('elapsed_s', 0)}s"
        )
    return "\n".join(lines)


def rtrd_report(summary: Mapping[str, object]) -> str:
    """Render an RTR daemon run summary as session/push tables.

    ``summary`` is the plain-dict shape of
    :func:`repro.rtrd.daemon.summarize_publishes` (same rationale as
    :func:`serve_report`: this module takes values, not daemons).
    """
    sessions = TextTable(["sessions", "synchronized", "quarantined", "serial"])
    sessions.add_row(
        summary.get("sessions", 0),
        summary.get("synchronized", 0),
        summary.get("quarantined", 0),
        summary.get("serial", 0),
    )
    pushes = TextTable(
        ["publishes", "advanced", "no-op", "p50 ms", "p99 ms"]
    )
    pushes.add_row(
        summary.get("publishes", 0),
        summary.get("advanced", 0),
        summary.get("noop", 0),
        f"{summary.get('push_p50_ms', 0.0):.3f}",
        f"{summary.get('push_p99_ms', 0.0):.3f}",
    )
    lines = [sessions.render(), pushes.render()]
    pushed = summary.get("delta_bytes", 0) + summary.get("snapshot_bytes", 0)
    ratio = summary.get("delta_saving_ratio", 0.0)
    lines.append(
        f"pushed bytes: {pushed} "
        f"(diff {summary.get('delta_bytes', 0)}, "
        f"snapshot {summary.get('snapshot_bytes', 0)}); "
        f"delta saving ratio: {ratio}x vs full re-snapshot"
    )
    return "\n".join(lines)


def world_report(summary: Mapping[str, object]) -> str:
    """Render a world-engine run summary as run/event tables.

    ``summary`` is the plain-dict shape of
    :meth:`repro.world.WorldSummary.to_dict` (same rationale as
    :func:`serve_report`: this module takes values, not engines).
    """
    run = TextTable(
        ["profile", "seed", "steps", "CAs", "final VRPs",
         "+VRPs", "-VRPs", "stale obs", "dropped obs"]
    )
    run.add_row(
        summary.get("profile", "?"),
        summary.get("seed", 0),
        summary.get("steps", 0),
        summary.get("authorities", 0),
        summary.get("final_vrps", 0),
        summary.get("vrps_added_total", 0),
        summary.get("vrps_removed_total", 0),
        summary.get("stale_point_observations", 0),
        summary.get("dropped_point_observations", 0),
    )
    lines = [run.render()]
    events = summary.get("events_by_kind", {})
    if events:
        table = TextTable(["event kind", "count"])
        for kind in sorted(events):
            table.add_row(kind, events[kind])
        table.add_row("total", sum(events.values()))
        lines.append(table.render())
    deltas = summary.get("delta_sizes", [])
    if deltas:
        lines.append(
            f"per-step VRP delta: mean "
            f"{sum(deltas) / len(deltas):.2f}, max {max(deltas)} "
            f"({len(deltas)} steps)"
        )
    digest = summary.get("ledger_digest")
    if digest:
        lines.append(f"ledger digest: {digest}")
    return "\n".join(lines)


def rov_report(summary: Mapping[str, object], top: int = 10) -> str:
    """Render an ROV campaign + what-if sweep as verdict/delta tables.

    ``summary`` is the plain-dict payload ``ripki rov`` assembles
    (experiment ``RovReport.to_dict()`` plus a list of
    ``ExposureDelta.to_dict()`` rows) — values, not engines.
    """
    lines = []
    experiment = summary.get("experiment") or {}
    if experiment:
        histogram = experiment.get("histogram", {})
        table = TextTable(["verdict", "ASes"])
        for verdict in sorted(histogram):
            table.add_row(verdict, histogram[verdict])
        lines.append(table.render())
        annotations = experiment.get("annotations", {})
        if annotations:
            from repro.rov.annotation import ANNOTATION_NAMES

            table = TextTable(["code", "annotation", "routes"])
            for code in sorted(annotations, key=int):
                table.add_row(
                    code,
                    ANNOTATION_NAMES.get(int(code), "?"),
                    annotations[code],
                )
            lines.append(table.render())
        lines.append(
            f"campaign: {experiment.get('rounds', 0)} rounds, "
            f"{experiment.get('vantage_observations', 0)} vantage "
            f"observations, snippet {experiment.get('snippet', '?')}"
        )
        lines.append(f"verdict digest: {experiment.get('digest', '?')}")
    futures = summary.get("futures") or []
    if futures:
        # Largest hijack-exposure improvements first: the rows that
        # answer "which adoption step buys the most protection?".
        ranked = sorted(
            futures,
            key=lambda row: row["deltas"]["hijack_capture_mean"],
        )
        table = TextTable(
            ["future", "sign", "enforce", "d valid", "d invalid",
             "d rpki share", "d capture", "d blocked"]
        )
        for row in ranked[:top]:
            deltas = row["deltas"]
            table.add_row(
                row["future"],
                row["signing_orgs"],
                row["enforcing_count"],
                f"{deltas['valid_fraction']:+.4f}",
                f"{deltas['invalid_fraction']:+.4f}",
                f"{deltas['rpki_enabled_share']:+.4f}",
                f"{deltas['hijack_capture_mean']:+.4f}",
                f"{deltas['hijack_blocked_share']:+.4f}",
            )
        lines.append(table.render())
        if len(futures) > top:
            lines.append(
                f"({len(futures) - top} more futures not shown)"
            )
    return "\n".join(lines)


def profile_report(report, top: int = 15) -> str:
    """Render a :class:`~repro.obs.profile.ProfileReport` top-N table.

    Cumulative-time order — the flamegraph's widest frames first —
    with self time alongside so leaf hotspots stand out too.
    """
    table = TextTable(
        ["function", "calls", "self ms", "cumulative ms"]
    )
    for entry in report.top(top):
        table.add_row(
            entry.label,
            entry.calls,
            f"{entry.self_s * 1000:.3f}",
            f"{entry.cumulative_s * 1000:.3f}",
        )
    lines = [table.render()]
    lines.append(
        f"({len(report)} functions profiled, "
        f"{report.total_seconds():.3f}s total self time)"
    )
    return "\n".join(lines)


def scheduler_report(summary: Mapping[str, object]) -> str:
    """Render a scheduler run summary as a dispatch-accounting table.

    ``summary`` is the plain-dict shape of
    :meth:`repro.exec.scheduler.SchedulerReport.to_dict` (same
    rationale as :func:`degradation_report`: this module takes
    values, not pipeline objects).
    """
    table = TextTable(["scheduler", "value"])
    table.add_row("backend", summary.get("backend", "?"))
    table.add_row("workers", summary.get("workers", 0))
    table.add_row("jobs", summary.get("jobs_total", 0))
    table.add_row("dispatched", summary.get("dispatched", 0))
    table.add_row("completed", summary.get("completed", 0))
    table.add_row("re-dispatched", summary.get("redispatched", 0))
    table.add_row("duplicate results", summary.get("duplicates", 0))
    table.add_row("jobs stolen", summary.get("stolen", 0))
    table.add_row("worker deaths", summary.get("worker_deaths", 0))
    table.add_row("quarantined", summary.get("quarantined", 0))
    table.add_row("respawns", summary.get("respawns", 0))
    deadline = summary.get("deadline_s")
    if deadline is not None:
        table.add_row("job deadline", f"{deadline:g}s")
    backoff = summary.get("backoff_virtual_s", 0.0) or 0.0
    table.add_row("virtual backoff", f"{backoff:.3f}s")
    return table.render()


def timing_summary(stats: Mapping[str, SpanStats]) -> Dict[str, object]:
    """JSON-ready aggregate (the BENCH_obs.json payload)."""
    return {
        name: {
            "count": entry.count,
            "total_s": round(entry.total, 6),
            "mean_s": round(entry.mean, 6),
            "min_s": round(0.0 if entry.count == 0 else entry.min, 6),
            "max_s": round(entry.max, 6),
            "errors": entry.errors,
        }
        for name, entry in sorted(stats.items())
    }


def write_timing_summary(stats: Mapping[str, SpanStats], path) -> int:
    """Write :func:`timing_summary` as JSON; returns the entry count."""
    summary = timing_summary(stats)
    with open(path, "w") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(summary)
