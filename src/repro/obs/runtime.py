"""Process-wide observability switchboard.

Instrumented hot paths (pipeline stages, resolver, trie, RTR) fetch
the active registry/tracer through :func:`metrics` and :func:`tracer`
at call time.  Both default to the shared null implementations, so a
library user or benchmark that never enables observability pays one
dict-free function call per instrumented site and nothing else — the
"zero-cost-by-default" contract the benchmarks rely on.

The CLI (or a test) turns collection on around a run::

    registry, collector = enable()
    try:
        result = study.run()
    finally:
        disable()

:class:`scope` does the same as a context manager.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.tracing import NULL_TRACER, NullTracer, TraceCollector

RegistryLike = Union[MetricsRegistry, NullRegistry]
TracerLike = Union[TraceCollector, NullTracer]

_registry: RegistryLike = NULL_REGISTRY
_tracer: TracerLike = NULL_TRACER


def metrics() -> RegistryLike:
    """The active metrics registry (null when disabled)."""
    return _registry


def tracer() -> TracerLike:
    """The active trace collector (null when disabled)."""
    return _tracer


def observability_enabled() -> bool:
    return _registry.enabled or _tracer.enabled


def enable(
    registry: Optional[RegistryLike] = None,
    trace_collector: Optional[TracerLike] = None,
) -> Tuple[RegistryLike, TracerLike]:
    """Install (or create) a live registry and tracer; returns both."""
    global _registry, _tracer
    _registry = registry if registry is not None else MetricsRegistry()
    _tracer = trace_collector if trace_collector is not None else TraceCollector()
    return _registry, _tracer


def disable() -> None:
    """Restore the zero-cost null implementations."""
    global _registry, _tracer
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER


class scope:
    """``with scope() as (registry, tracer): ...`` — scoped enable."""

    def __init__(
        self,
        registry: Optional[RegistryLike] = None,
        trace_collector: Optional[TracerLike] = None,
    ):
        self._registry = registry
        self._tracer = trace_collector
        self._previous: Optional[Tuple[RegistryLike, TracerLike]] = None

    def __enter__(self) -> Tuple[RegistryLike, TracerLike]:
        self._previous = (_registry, _tracer)
        return enable(self._registry, self._tracer)

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _registry, _tracer
        assert self._previous is not None
        _registry, _tracer = self._previous
        return False
