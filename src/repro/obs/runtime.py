"""Process-wide observability switchboard.

Instrumented hot paths (pipeline stages, resolver, trie, RTR) fetch
the active registry/tracer through :func:`metrics` and :func:`tracer`
at call time.  Both default to the shared null implementations, so a
library user or benchmark that never enables observability pays one
dict-free function call per instrumented site and nothing else — the
"zero-cost-by-default" contract the benchmarks rely on.

The CLI (or a test) turns collection on around a run::

    registry, collector = enable()
    try:
        result = study.run()
    finally:
        disable()

:class:`scope` does the same as a context manager.

The process-wide pair can be overridden *per thread* with
:class:`thread_scope`: the sharded study executor gives every shard
worker its own registry/tracer so concurrent shards never contend on
(or interleave into) one instrument, then merges the per-shard
registries back into the process-wide one.  :func:`metrics` and
:func:`tracer` check the thread-local slot first; the common
single-threaded path pays one extra ``getattr`` with a default.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple, Union

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.tracing import NULL_TRACER, NullTracer, TraceCollector

RegistryLike = Union[MetricsRegistry, NullRegistry]
TracerLike = Union[TraceCollector, NullTracer]

_registry: RegistryLike = NULL_REGISTRY
_tracer: TracerLike = NULL_TRACER

_local = threading.local()


def metrics() -> RegistryLike:
    """The active metrics registry (null when disabled)."""
    override = getattr(_local, "registry", None)
    return override if override is not None else _registry


def tracer() -> TracerLike:
    """The active trace collector (null when disabled)."""
    override = getattr(_local, "tracer", None)
    return override if override is not None else _tracer


def observability_enabled() -> bool:
    return metrics().enabled or tracer().enabled


def enable(
    registry: Optional[RegistryLike] = None,
    trace_collector: Optional[TracerLike] = None,
) -> Tuple[RegistryLike, TracerLike]:
    """Install (or create) a live registry and tracer; returns both."""
    global _registry, _tracer
    _registry = registry if registry is not None else MetricsRegistry()
    _tracer = trace_collector if trace_collector is not None else TraceCollector()
    return _registry, _tracer


def disable() -> None:
    """Restore the zero-cost null implementations."""
    global _registry, _tracer
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER


class scope:
    """``with scope() as (registry, tracer): ...`` — scoped enable."""

    def __init__(
        self,
        registry: Optional[RegistryLike] = None,
        trace_collector: Optional[TracerLike] = None,
    ):
        self._registry = registry
        self._tracer = trace_collector
        self._previous: Optional[Tuple[RegistryLike, TracerLike]] = None

    def __enter__(self) -> Tuple[RegistryLike, TracerLike]:
        self._previous = (_registry, _tracer)
        return enable(self._registry, self._tracer)

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _registry, _tracer
        assert self._previous is not None
        _registry, _tracer = self._previous
        return False


class thread_scope:
    """Thread-local override of the active registry/tracer.

    ``with thread_scope(registry, collector): ...`` routes every
    :func:`metrics`/:func:`tracer` call *from the current thread* to
    the given pair, leaving other threads (and the process-wide
    default) untouched.  Overrides nest; ``None`` slots fall back to
    the null implementations so a worker can opt out of collection
    entirely regardless of the process-wide state.
    """

    def __init__(
        self,
        registry: Optional[RegistryLike] = None,
        trace_collector: Optional[TracerLike] = None,
    ):
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._tracer = (
            trace_collector if trace_collector is not None else NULL_TRACER
        )
        self._previous: Optional[Tuple[object, object]] = None

    def __enter__(self) -> Tuple[RegistryLike, TracerLike]:
        self._previous = (
            getattr(_local, "registry", None),
            getattr(_local, "tracer", None),
        )
        _local.registry = self._registry
        _local.tracer = self._tracer
        return self._registry, self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._previous is not None
        _local.registry, _local.tracer = self._previous
        return False
