"""Lightweight span/trace primitives for the measurement pipeline.

A *span* is one timed unit of work (``dns.resolve`` for one name,
``study.run`` for the whole funnel).  Spans nest: entering a span
inside another records the parent/child relationship, so a trace dump
reconstructs the funnel's call tree.  Durations come from the
monotonic clock (:func:`time.perf_counter`), never wall time.

Usage::

    tracer = TraceCollector()
    with tracer.span("stage.dns", domain="example.org"):
        ...

The collector keeps finished spans in memory (bounded; overflow is
counted, not silently dropped) and can dump JSON or aggregate
per-name statistics for the CLI's closing timing table.

:class:`NullTracer` is the zero-cost default: its ``span()`` returns
a shared no-op context manager, so disabled tracing costs one method
call and no allocation beyond the kwargs dict.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

DEFAULT_MAX_SPANS = 250_000


@dataclass
class Span:
    """One finished (or in-flight) timed operation."""

    name: str
    span_id: int
    parent_id: Optional[int]
    attributes: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    end: Optional[float] = None
    error: Optional[str] = None

    @property
    def duration(self) -> float:
        """Seconds elapsed; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": self.attributes,
            "start": self.start,
            "duration": self.duration,
            "error": self.error,
        }


@dataclass
class SpanStats:
    """Aggregate timing for one span name."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    errors: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def add(self, span: Span) -> None:
        self.count += 1
        duration = span.duration
        self.total += duration
        self.min = min(self.min, duration)
        self.max = max(self.max, duration)
        if span.error is not None:
            self.errors += 1


class _ActiveSpan:
    """Context manager binding one span to a collector's stack."""

    __slots__ = ("_collector", "_span")

    def __init__(self, collector: "TraceCollector", span: Span):
        self._collector = collector
        self._span = span

    def __enter__(self) -> Span:
        self._collector._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.error = f"{exc_type.__name__}: {exc}"
        self._collector._pop(self._span)
        return False  # never swallow


class TraceCollector:
    """In-memory trace sink with bounded retention and aggregation."""

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        self._max_spans = max_spans
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        self.dropped = 0

    def span(self, name: str, /, **attributes: object) -> _ActiveSpan:
        """Start a child span of whatever span is currently open."""
        parent = self._stack[-1].span_id if self._stack else None
        record = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent,
            attributes=attributes,
        )
        return _ActiveSpan(self, record)

    # -- stack plumbing (called by _ActiveSpan) ----------------------------

    def _push(self, span: Span) -> None:
        span.start = time.perf_counter()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Pop back to (and including) this span even if inner spans
        # leaked — an exception may have unwound past them.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if len(self._spans) < self._max_spans:
            self._spans.append(span)
        else:
            self.dropped += 1

    # -- merging -----------------------------------------------------------

    def absorb(
        self,
        spans: "Iterable[Span]",
        parent_id: Optional[int] = None,
        dropped: int = 0,
    ) -> int:
        """Graft foreign spans (e.g. a shard worker's) into this trace.

        Every span is re-identified from this collector's id sequence
        so ids never collide; parent/child links *within* the batch
        are preserved, and spans whose parent is not part of the batch
        are re-rooted under ``parent_id`` (usually the merging run's
        own span).  ``dropped`` carries the source collector's
        overflow count forward.  Returns the number of spans kept.
        """
        # Spans arrive in completion order (children before their
        # parents), so assign every new id first, then link.
        batch = list(spans)
        id_map: Dict[int, int] = {
            span.span_id: next(self._ids) for span in batch
        }
        kept = 0
        for span in batch:
            grafted = Span(
                name=span.name,
                span_id=id_map[span.span_id],
                parent_id=(
                    id_map.get(span.parent_id, parent_id)
                    if span.parent_id is not None
                    else parent_id
                ),
                attributes=dict(span.attributes),
                start=span.start,
                end=span.end,
                error=span.error,
            )
            if len(self._spans) < self._max_spans:
                self._spans.append(grafted)
                kept += 1
            else:
                self.dropped += 1
        self.dropped += dropped
        return kept

    # -- access ------------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans (optionally filtered by name), oldest first."""
        if name is None:
            return list(self._spans)
        return [span for span in self._spans if span.name == name]

    def names(self) -> List[str]:
        return sorted({span.name for span in self._spans})

    def aggregate(self) -> Dict[str, SpanStats]:
        """Per-name count/total/min/max/mean, keyed by span name."""
        stats: Dict[str, SpanStats] = {}
        for span in self._spans:
            entry = stats.get(span.name)
            if entry is None:
                entry = stats[span.name] = SpanStats(name=span.name)
            entry.add(span)
        return dict(sorted(stats.items()))

    def to_json(self) -> Dict[str, object]:
        return {
            "spans": [span.to_dict() for span in self._spans],
            "dropped": self.dropped,
        }

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON (Perfetto / ``chrome://tracing``).

        Every finished span becomes one complete ("X") event with
        microsecond timestamps relative to the earliest span, so
        cross-shard grafted traces open as one aligned timeline.
        ``span_id``/``parent_id`` ride along in ``args`` — the
        parent/child structure :meth:`absorb` preserves survives the
        export verbatim.  Open spans (no end yet) are skipped.
        """
        finished = [span for span in self._spans if span.end is not None]
        origin = min((span.start for span in finished), default=0.0)
        events: List[Dict[str, object]] = []
        for span in finished:
            args: Dict[str, object] = dict(span.attributes)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.error is not None:
                args["error"] = span.error
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start - origin) * 1_000_000, 3),
                    "dur": round(span.duration * 1_000_000, 3),
                    "pid": 1,
                    "tid": 1,
                    "cat": "ripki",
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write :meth:`to_chrome_trace`; returns the event count."""
        trace = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=1)
            handle.write("\n")
        return len(trace["traceEvents"])

    def dump(self, path) -> int:
        """Write the trace as JSON; returns the span count written."""
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=1)
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return f"<TraceCollector {len(self._spans)} spans, {self.dropped} dropped>"


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-cost tracer: ``span()`` is a constant-return method."""

    enabled = False
    dropped = 0

    def span(self, name: str, /, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def absorb(self, spans, parent_id=None, dropped: int = 0) -> int:
        return 0

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def names(self) -> List[str]:
        return []

    def aggregate(self) -> Dict[str, SpanStats]:
        return {}

    def to_json(self) -> Dict[str, object]:
        return {"spans": [], "dropped": 0}

    def to_chrome_trace(self) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
