"""Sliding-window instruments and SLO tracking.

The registry's :class:`~repro.obs.metrics.Histogram` accumulates
forever — the right shape for an end-of-run exposition, the wrong one
for a long-running service where "p99 over the last minute" is the
question.  This module adds the windowed layer:

* :func:`quantile_from_buckets` — the *one* bucket-based quantile
  estimator every consumer shares (windowed instruments, the serve
  summary table, the SLO gauges), so a report and a Prometheus series
  can never disagree about what "p99" means;
* :class:`WindowedHistogram` — a ring of per-slice bucket frames over
  fixed bounds; observations land in the current slice, expired
  slices are dropped as the clock advances, and quantiles are
  estimated from the surviving bucket counts;
* :class:`RollingRate` — events per second over the same ring layout;
* :class:`SLOTracker` — declared latency/error objectives evaluated
  over windows, exporting compliance and error-budget-remaining
  gauges into a :class:`~repro.obs.metrics.MetricsRegistry`.

Every class takes an injectable ``clock`` (monotonic seconds).  Under
the virtual-time machinery the clock is a counter the test advances,
so a seeded run pins the *exact* window contents — which slice each
observation landed in, which slices expired, and therefore the exact
quantile/compliance/budget gauges exported.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, MetricError, Number

Clock = Callable[[], float]

# Gauge names the tracker exports (label "slo" selects the objective).
SLO_LATENCY_METRIC = "ripki_slo_latency_window_seconds"
SLO_COMPLIANCE_METRIC = "ripki_slo_compliance_ratio"
SLO_BUDGET_METRIC = "ripki_slo_error_budget_remaining_ratio"
SLO_EVENTS_METRIC = "ripki_slo_window_events"
SLO_TARGET_METRIC = "ripki_slo_target_ratio"

_SLO_HELP = {
    SLO_LATENCY_METRIC:
        "Windowed latency quantile estimate, by objective and quantile",
    SLO_COMPLIANCE_METRIC:
        "Fraction of windowed events meeting the objective",
    SLO_BUDGET_METRIC:
        "Fraction of the windowed error budget still unspent",
    SLO_EVENTS_METRIC: "Events currently inside the objective's window",
    SLO_TARGET_METRIC: "Declared target fraction of the objective",
}

EXPORTED_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def quantile_from_buckets(
    bounds: Sequence[float],
    cumulative: Sequence[int],
    q: float,
) -> float:
    """Estimate the ``q``-quantile (0..1) from cumulative bucket counts.

    ``bounds`` are the finite upper bucket bounds (sorted ascending);
    ``cumulative`` has one more entry than ``bounds`` — the final
    entry is the +Inf bucket's cumulative count (the total).  The
    estimator is the Prometheus ``histogram_quantile`` rule: find the
    bucket the target rank falls in and interpolate linearly inside
    it (lower edge 0 for the first bucket); a rank landing in the
    +Inf bucket clamps to the highest finite bound.  Empty data
    estimates 0.0.
    """
    if len(cumulative) != len(bounds) + 1:
        raise MetricError(
            f"expected {len(bounds) + 1} cumulative counts, "
            f"got {len(cumulative)}"
        )
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in 0..1, got {q}")
    total = cumulative[-1]
    if total <= 0:
        return 0.0
    rank = q * total
    for index, bound in enumerate(bounds):
        count = cumulative[index]
        if count >= rank:
            lower = bounds[index - 1] if index else 0.0
            below = cumulative[index - 1] if index else 0
            in_bucket = count - below
            if in_bucket <= 0:
                return bound
            fraction = (rank - below) / in_bucket
            return lower + (bound - lower) * fraction
    return bounds[-1] if bounds else 0.0


def estimate_quantiles(
    values: Sequence[float],
    qs: Sequence[float],
    bounds: Sequence[float] = DEFAULT_BUCKETS,
) -> List[float]:
    """Bucket the raw ``values`` and estimate each quantile in ``qs``.

    This is the offline twin of :meth:`WindowedHistogram.quantile`:
    the values pass through the same fixed bounds and the same
    estimator, so a post-hoc summary (``summarize_responses``) agrees
    with the live windowed gauges bucket for bucket.
    """
    ordered = tuple(sorted(bounds))
    counts = [0] * (len(ordered) + 1)
    for value in values:
        for index, bound in enumerate(ordered):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    cumulative: List[int] = []
    running = 0
    for count in counts:
        running += count
        cumulative.append(running)
    return [quantile_from_buckets(ordered, cumulative, q) for q in qs]


class WindowedHistogram:
    """Bucketed observations over a sliding window of time slices.

    The window is a ring of ``slices`` frames, each covering
    ``window_s / slices`` seconds of the injected clock.  An
    observation lands in the frame the clock currently points at;
    advancing the clock past a frame's span clears it.  Quantiles,
    counts, and sums are computed over the surviving frames only, so
    the instrument answers "over the last ``window_s`` seconds"
    within one slice of resolution.
    """

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        window_s: float = 60.0,
        slices: int = 6,
        clock: Optional[Clock] = None,
    ):
        if window_s <= 0:
            raise MetricError("window_s must be > 0")
        if slices < 1:
            raise MetricError("slices must be >= 1")
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricError("windowed histogram needs >= 1 bucket")
        self.window_s = float(window_s)
        self.slices = slices
        self._slice_s = self.window_s / slices
        self._clock: Clock = clock if clock is not None else time.monotonic
        width = len(self.buckets) + 1
        self._frames: List[List[int]] = [[0] * width for _ in range(slices)]
        self._sums: List[float] = [0.0] * slices
        self._epochs: List[int] = [-1] * slices

    def _slot(self) -> int:
        """Advance to the clock's current slice, expiring stale frames."""
        epoch = int(self._clock() / self._slice_s)
        slot = epoch % self.slices
        if self._epochs[slot] != epoch:
            self._frames[slot] = [0] * (len(self.buckets) + 1)
            self._sums[slot] = 0.0
            self._epochs[slot] = epoch
        # Frames whose epoch fell out of the window are ignored at
        # read time (cheaper than eagerly sweeping every slot here).
        return slot

    def observe(self, value: Number) -> None:
        slot = self._slot()
        frame = self._frames[slot]
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                frame[index] += 1
                break
        else:
            frame[-1] += 1
        self._sums[slot] += value

    def _live_slots(self) -> List[int]:
        epoch = int(self._clock() / self._slice_s)
        floor = epoch - self.slices + 1
        return [
            slot
            for slot in range(self.slices)
            if floor <= self._epochs[slot] <= epoch
        ]

    def raw_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts over the live window."""
        totals = [0] * (len(self.buckets) + 1)
        for slot in self._live_slots():
            for index, count in enumerate(self._frames[slot]):
                totals[index] += count
        return totals

    def cumulative_counts(self) -> List[int]:
        out: List[int] = []
        running = 0
        for count in self.raw_counts():
            running += count
            out.append(running)
        return out

    @property
    def count(self) -> int:
        return sum(self.raw_counts())

    @property
    def sum(self) -> float:
        return sum(self._sums[slot] for slot in self._live_slots())

    def quantile(self, q: float) -> float:
        """Windowed ``q``-quantile via :func:`quantile_from_buckets`."""
        return quantile_from_buckets(
            self.buckets, self.cumulative_counts(), q
        )


class RollingRate:
    """Events per second over a sliding window (same ring layout)."""

    def __init__(
        self,
        window_s: float = 60.0,
        slices: int = 6,
        clock: Optional[Clock] = None,
    ):
        if window_s <= 0:
            raise MetricError("window_s must be > 0")
        if slices < 1:
            raise MetricError("slices must be >= 1")
        self.window_s = float(window_s)
        self.slices = slices
        self._slice_s = self.window_s / slices
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._counts: List[float] = [0.0] * slices
        self._epochs: List[int] = [-1] * slices

    def tick(self, amount: Number = 1) -> None:
        epoch = int(self._clock() / self._slice_s)
        slot = epoch % self.slices
        if self._epochs[slot] != epoch:
            self._counts[slot] = 0.0
            self._epochs[slot] = epoch
        self._counts[slot] += amount

    def events(self) -> float:
        """Events currently inside the window."""
        epoch = int(self._clock() / self._slice_s)
        floor = epoch - self.slices + 1
        return sum(
            self._counts[slot]
            for slot in range(self.slices)
            if floor <= self._epochs[slot] <= epoch
        )

    def rate(self) -> float:
        """Windowed mean events/second."""
        return self.events() / self.window_s


@dataclass(frozen=True)
class SLOTarget:
    """One declared objective: a latency deadline met some fraction
    of the time (error events always count against the budget)."""

    name: str
    threshold_s: float = 0.1
    target: float = 0.99
    window_s: float = 60.0

    def __post_init__(self):
        if self.threshold_s <= 0:
            raise MetricError("threshold_s must be > 0")
        if not 0.0 < self.target < 1.0:
            raise MetricError("target must be strictly inside (0, 1)")
        if self.window_s <= 0:
            raise MetricError("window_s must be > 0")


@dataclass
class SLOStatus:
    """Point-in-time evaluation of one objective's window."""

    target: SLOTarget
    total: int = 0
    good: int = 0
    quantiles: Dict[str, float] = field(default_factory=dict)

    @property
    def compliance(self) -> float:
        """Fraction of windowed events meeting the objective (1.0
        when the window is empty — no evidence of violation)."""
        if not self.total:
            return 1.0
        return self.good / self.total

    @property
    def budget_remaining(self) -> float:
        """Share of the allowed-error budget still unspent, clamped
        to [0, 1].  A 99% target tolerates 1% bad events; spending
        half of that leaves 0.5 here."""
        allowed = 1.0 - self.target.target
        if not self.total or allowed <= 0:
            return 1.0
        bad_fraction = (self.total - self.good) / self.total
        remaining = 1.0 - bad_fraction / allowed
        return min(1.0, max(0.0, remaining))


class SLOTracker:
    """Windowed objective accounting with registry export.

    Objectives are declared up front (or auto-declared on first
    observation with the defaults); every :meth:`observe` feeds the
    objective's windowed histogram and its good/total counters.
    :meth:`export` writes point-in-time gauges into a registry —
    nothing in the registry moves between exports, which is what
    keeps a ``/metrics`` scrape after a run byte-identical to the
    ``--metrics-out`` file written from the same state.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        slices: int = 6,
    ):
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._buckets = tuple(sorted(buckets))
        self._slices = slices
        self._targets: Dict[str, SLOTarget] = {}
        self._latency: Dict[str, WindowedHistogram] = {}
        self._good: Dict[str, RollingRate] = {}
        self._total: Dict[str, RollingRate] = {}
        # One tracker may be fed from many serving threads; the lock
        # keeps window frames exact (the instruments themselves are
        # lock-free for single-threaded use).
        self._lock = threading.Lock()

    def declare(
        self,
        name: str,
        threshold_s: float = 0.1,
        target: float = 0.99,
        window_s: float = 60.0,
    ) -> SLOTarget:
        """Register (or re-fetch) an objective; idempotent on re-declare
        with identical parameters."""
        declared = SLOTarget(
            name=name,
            threshold_s=threshold_s,
            target=target,
            window_s=window_s,
        )
        existing = self._targets.get(name)
        if existing is not None:
            if existing != declared:
                raise MetricError(
                    f"SLO {name!r} re-declared with different parameters"
                )
            return existing
        self._targets[name] = declared
        self._latency[name] = WindowedHistogram(
            buckets=self._buckets,
            window_s=window_s,
            slices=self._slices,
            clock=self._clock,
        )
        self._good[name] = RollingRate(
            window_s=window_s, slices=self._slices, clock=self._clock
        )
        self._total[name] = RollingRate(
            window_s=window_s, slices=self._slices, clock=self._clock
        )
        return declared

    def observe(self, name: str, latency_s: float, ok: bool = True) -> None:
        """Record one event: its latency, and whether it succeeded.

        An event is *good* when it succeeded and met the objective's
        latency deadline.
        """
        with self._lock:
            target = self._targets.get(name)
            if target is None:
                target = self.declare(name)
            self._latency[name].observe(latency_s)
            self._total[name].tick()
            if ok and latency_s <= target.threshold_s:
                self._good[name].tick()

    def names(self) -> List[str]:
        return sorted(self._targets)

    def status(self, name: str) -> SLOStatus:
        target = self._targets[name]
        histogram = self._latency[name]
        return SLOStatus(
            target=target,
            total=int(self._total[name].events()),
            good=int(self._good[name].events()),
            quantiles={
                label: histogram.quantile(q)
                for label, q in EXPORTED_QUANTILES
            },
        )

    def statuses(self) -> Dict[str, SLOStatus]:
        return {name: self.status(name) for name in self.names()}

    def export(self, registry) -> None:
        """Write every objective's gauges into ``registry``."""
        latency = registry.gauge(
            SLO_LATENCY_METRIC,
            _SLO_HELP[SLO_LATENCY_METRIC],
            labelnames=("slo", "quantile"),
        )
        compliance = registry.gauge(
            SLO_COMPLIANCE_METRIC,
            _SLO_HELP[SLO_COMPLIANCE_METRIC],
            labelnames=("slo",),
        )
        budget = registry.gauge(
            SLO_BUDGET_METRIC,
            _SLO_HELP[SLO_BUDGET_METRIC],
            labelnames=("slo",),
        )
        events = registry.gauge(
            SLO_EVENTS_METRIC,
            _SLO_HELP[SLO_EVENTS_METRIC],
            labelnames=("slo",),
        )
        declared = registry.gauge(
            SLO_TARGET_METRIC,
            _SLO_HELP[SLO_TARGET_METRIC],
            labelnames=("slo",),
        )
        for name in self.names():
            status = self.status(name)
            for label, value in sorted(status.quantiles.items()):
                latency.labels(slo=name, quantile=label).set(round(value, 9))
            compliance.labels(slo=name).set(round(status.compliance, 9))
            budget.labels(slo=name).set(round(status.budget_remaining, 9))
            events.labels(slo=name).set(status.total)
            declared.labels(slo=name).set(status.target.target)
