"""Internet Routing Registry substrate (RPSL-style records).

Section 4.2 derives CDN AS numbers by "keyword spotting on common AS
assignment lists".  Those lists are WHOIS/IRR databases of ``aut-num``
objects.  This package provides the object model, an RPSL-style text
format with a parser, a queryable database, and the generator that
fills it from a built ecosystem — so the keyword-spotting step runs
over the same kind of artifact the paper used.
"""

from repro.registry.database import RegistryDatabase
from repro.registry.generate import registry_for_origins, registry_for_world
from repro.registry.objects import AutNum, RPSLError

__all__ = [
    "AutNum",
    "RPSLError",
    "RegistryDatabase",
    "registry_for_origins",
    "registry_for_world",
]
