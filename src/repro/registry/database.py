"""A queryable registry database with a flat-file form."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.net import ASN
from repro.registry.objects import AutNum, RPSLError


class RegistryDatabase:
    """All aut-num objects of the (synthetic) Internet."""

    def __init__(self, objects: Iterable[AutNum] = ()):
        self._by_asn: Dict[ASN, AutNum] = {}
        for obj in objects:
            self.add(obj)

    def add(self, obj: AutNum) -> None:
        if obj.asn in self._by_asn:
            raise RPSLError(f"duplicate aut-num for {obj.asn}")
        self._by_asn[obj.asn] = obj

    def lookup(self, asn: Union[int, ASN]) -> Optional[AutNum]:
        return self._by_asn.get(ASN(asn))

    def search_keyword(self, keyword: str) -> List[AutNum]:
        """Case-insensitive substring search (the spotting primitive)."""
        needle = keyword.upper()
        return sorted(
            (obj for obj in self._by_asn.values()
             if needle in obj.searchable_text()),
            key=lambda obj: int(obj.asn),
        )

    def by_source(self, source: str) -> List[AutNum]:
        return sorted(
            (obj for obj in self._by_asn.values() if obj.source == source),
            key=lambda obj: int(obj.asn),
        )

    def __iter__(self) -> Iterator[AutNum]:
        return iter(sorted(self._by_asn.values(), key=lambda o: int(o.asn)))

    def __len__(self) -> int:
        return len(self._by_asn)

    def __contains__(self, asn: Union[int, ASN]) -> bool:
        return ASN(asn) in self._by_asn

    # -- flat-file form ------------------------------------------------------

    def to_file(self, path: Union[str, Path]) -> int:
        """Write a WHOIS-style flat file (objects separated by blank
        lines); returns the object count."""
        path = Path(path)
        with path.open("w") as handle:
            handle.write("% Synthetic AS assignment list\n\n")
            for obj in self:
                handle.write(obj.to_rpsl())
                handle.write("\n")
        return len(self)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "RegistryDatabase":
        path = Path(path)
        database = cls()
        block: List[str] = []
        with path.open() as handle:
            for line in handle:
                if line.strip() == "":
                    if block:
                        database.add(AutNum.from_rpsl("".join(block)))
                        block = []
                    continue
                if line.startswith("%"):
                    continue
                block.append(line)
        if block:
            database.add(AutNum.from_rpsl("".join(block)))
        return database

    def __repr__(self) -> str:
        return f"<RegistryDatabase {len(self._by_asn)} aut-num objects>"
