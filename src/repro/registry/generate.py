"""Registry generation from a built ecosystem."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.registry.database import RegistryDatabase
from repro.registry.objects import AutNum
from repro.web.organisations import OrgKind

_ORG_SUFFIX = {
    OrgKind.TIER1: "Global Backbone",
    OrgKind.TRANSIT: "Transit Networks",
    OrgKind.EYEBALL: "Broadband",
    OrgKind.HOSTER: "Hosting",
    OrgKind.CDN: "Content Delivery",
}


def registry_for_world(world) -> RegistryDatabase:
    """Generate one aut-num per AS, in the allocating RIR's source.

    The ``as-name``/``descr`` strings carry the organisation name, so
    CDN keyword spotting works exactly as on real assignment lists.
    """
    database = RegistryDatabase()
    for org in world.organisations:
        descr = f"{org.name} {_ORG_SUFFIX.get(org.kind, '')}".strip()
        for asn in org.asns:
            database.add(
                AutNum(
                    asn=asn,
                    as_name=org.registry_names[asn],
                    descr=descr,
                    org=f"ORG-{org.name.upper()[:8]}-{org.rir}",
                    source=org.rir,
                )
            )
    return database


def registry_for_origins(
    origins: Iterable, source: str = "RIPE"
) -> RegistryDatabase:
    """Generate one aut-num per origin AS of a stepped world.

    The world engine's actors hold prefixes signed for origin ASes
    (:meth:`repro.world.WorldEngine.origin_asns`); this registers each
    of them so audit-style lookups resolve during a world run.  Names
    are derived from the AS number alone, keeping the rows a pure
    function of the origin set.
    """
    database = RegistryDatabase()
    for asn in sorted(origins, key=int):
        database.add(
            AutNum(
                asn=asn,
                as_name=f"AS{int(asn)}-NET",
                descr=f"World engine origin AS{int(asn)}",
                org=f"ORG-WORLD-{int(asn)}",
                source=source,
            )
        )
    return database


def spot_cdn_ases_in_registry(
    database: RegistryDatabase, operators=None
) -> Dict[str, List]:
    """Section 4.2 keyword spotting straight over the registry."""
    from repro.web.cdn import CDN_CATALOGUE

    operators = list(operators) if operators is not None else list(CDN_CATALOGUE)
    spotted: Dict[str, List] = {}
    claimed = set()
    for operator in operators:
        matches = [
            obj.asn
            for obj in database.search_keyword(operator.keyword())
            if obj.asn not in claimed
        ]
        claimed.update(matches)
        spotted[operator.name] = matches
    return spotted
