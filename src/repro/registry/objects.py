"""RPSL-style registry objects.

Only the ``aut-num`` class is modelled — it is what AS assignment
lists are made of.  The text form follows RPSL conventions::

    aut-num:    AS20940
    as-name:    AKAMAI-ASN1
    descr:      Akamai International B.V.
    org:        ORG-AT1-RIPE
    source:     RIPE
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net import ASN, parse_asn


class RPSLError(ValueError):
    """A registry object or its text form is malformed."""


_REQUIRED = ("aut-num", "as-name", "source")


@dataclass(frozen=True)
class AutNum:
    """One aut-num object."""

    asn: ASN
    as_name: str
    descr: str = ""
    org: str = ""
    source: str = "RIPE"

    def __post_init__(self):
        if not self.as_name:
            raise RPSLError("as-name must not be empty")
        if any(ch.isspace() for ch in self.as_name):
            raise RPSLError(f"as-name must be a single token: {self.as_name!r}")

    def searchable_text(self) -> str:
        """The string keyword spotting scans."""
        return f"{self.as_name} {self.descr} {self.org}".upper()

    def to_rpsl(self) -> str:
        lines = [
            f"aut-num:    AS{int(self.asn)}",
            f"as-name:    {self.as_name}",
        ]
        if self.descr:
            lines.append(f"descr:      {self.descr}")
        if self.org:
            lines.append(f"org:        {self.org}")
        lines.append(f"source:     {self.source}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_rpsl(cls, text: str) -> "AutNum":
        fields: Dict[str, str] = {}
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            key, colon, value = line.partition(":")
            if not colon:
                raise RPSLError(f"malformed RPSL line: {raw_line!r}")
            key = key.strip().lower()
            # First occurrence wins (RPSL allows repeated descr lines;
            # we join them below instead).
            value = value.strip()
            if key == "descr" and "descr" in fields:
                fields["descr"] += " " + value
            else:
                fields.setdefault(key, value)
        for required in _REQUIRED:
            if required not in fields:
                raise RPSLError(f"missing {required!r} attribute")
        try:
            asn = parse_asn(fields["aut-num"])
        except ValueError as exc:
            raise RPSLError(f"bad aut-num: {fields['aut-num']!r}") from exc
        return cls(
            asn=asn,
            as_name=fields["as-name"],
            descr=fields.get("descr", ""),
            org=fields.get("org", ""),
            source=fields["source"],
        )

    def __str__(self) -> str:
        return f"AS{int(self.asn)} ({self.as_name})"
