"""ROV adoption inference and what-if counterfactuals.

Two halves, one question — who filters invalid routes, and what would
change if more networks did?

* :mod:`repro.rov.experiment` infers per-AS ROV enforcement from
  controlled anchor/experiment announcement pairs (Reuter et al.'s
  methodology over the synthetic topology).
* :mod:`repro.rov.whatif` scores seeded adoption futures — "these
  organisations sign, those ASes enforce" — against the paper's
  Fig. 2 / Fig. 4 web-exposure funnel plus replayed prefix hijacks.
"""

from repro.rov.annotation import (
    ANNOTATION_INVALID_AS_SET,
    ANNOTATION_INVALID_ASN,
    ANNOTATION_INVALID_BOTH,
    ANNOTATION_INVALID_LENGTH,
    ANNOTATION_NAMES,
    ANNOTATION_UNKNOWN,
    ANNOTATION_VALID,
    annotate_route,
)
from repro.rov.experiment import (
    DEFAULT_ENFORCEMENT_RATES,
    EXPERIMENT_RANGE,
    ROV_MODES,
    ASVerdict,
    ExperimentRound,
    ExperimentSpec,
    RovExperimentRunner,
    RovReport,
    Verdict,
    build_round,
    experiment_prefix_pair,
    run_round,
    seeded_enforcers,
    topology_digest,
)
from repro.rov.futures import (
    NAMED_FUTURES,
    AdoptionFuture,
    future_census,
    named_future,
    named_futures,
    sample_futures,
)
from repro.rov.whatif import (
    WHATIF_MODES,
    ExposureDelta,
    ExposureSnapshot,
    WhatIfEngine,
    whatif,
)

__all__ = [
    "ANNOTATION_INVALID_AS_SET",
    "ANNOTATION_INVALID_ASN",
    "ANNOTATION_INVALID_BOTH",
    "ANNOTATION_INVALID_LENGTH",
    "ANNOTATION_NAMES",
    "ANNOTATION_UNKNOWN",
    "ANNOTATION_VALID",
    "annotate_route",
    "DEFAULT_ENFORCEMENT_RATES",
    "EXPERIMENT_RANGE",
    "ROV_MODES",
    "ASVerdict",
    "ExperimentRound",
    "ExperimentSpec",
    "RovExperimentRunner",
    "RovReport",
    "Verdict",
    "build_round",
    "experiment_prefix_pair",
    "run_round",
    "seeded_enforcers",
    "topology_digest",
    "NAMED_FUTURES",
    "AdoptionFuture",
    "future_census",
    "named_future",
    "named_futures",
    "sample_futures",
    "WHATIF_MODES",
    "ExposureDelta",
    "ExposureSnapshot",
    "WhatIfEngine",
    "whatif",
]
