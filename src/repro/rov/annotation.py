"""The 0-5 route-validity annotation scheme.

The ``rov-measurement-code`` methodology (SNIPPETS.md, Snippet 2)
annotates every observed route with a small integer describing *why*
it validated the way it did — not just valid/invalid/unknown but which
RFC 6811 clause an invalid tripped over:

====  ==========================================================
code  meaning
====  ==========================================================
0     valid — some covering VRP fully matches
1     unknown — no covering VRP (NOT_FOUND)
2     invalid — covered but origin unverifiable (AS_SET origin)
3     invalid, wrong origin ASN (length would have been fine)
4     invalid, too-specific announcement (origin ASN matches a
      covering VRP but its maxLength is exceeded)
5     invalid, both wrong ASN and exceeded maxLength
====  ==========================================================

The refinement matters for inference: a wrong-ASN invalid (3) is what
a hijack looks like, while a maxLength invalid (4) is what operator
misconfiguration looks like, and enforcing ASes drop both.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.net import ASN, Prefix
from repro.rpki.vrp import ValidatedPayloads

ANNOTATION_VALID = 0
ANNOTATION_UNKNOWN = 1
ANNOTATION_INVALID_AS_SET = 2
ANNOTATION_INVALID_ASN = 3
ANNOTATION_INVALID_LENGTH = 4
ANNOTATION_INVALID_BOTH = 5

ANNOTATION_NAMES = {
    ANNOTATION_VALID: "valid",
    ANNOTATION_UNKNOWN: "unknown",
    ANNOTATION_INVALID_AS_SET: "invalid_as_set",
    ANNOTATION_INVALID_ASN: "invalid_wrong_asn",
    ANNOTATION_INVALID_LENGTH: "invalid_wrong_length",
    ANNOTATION_INVALID_BOTH: "invalid_both",
}


def annotate_route(
    payloads: ValidatedPayloads,
    prefix: Prefix,
    origin: Optional[Union[int, ASN]],
) -> int:
    """Annotate one (prefix, origin) route observation.

    ``origin`` is None for AS_SET originations (the origin cannot be
    verified, RFC 6811 treats covered announcements as invalid).
    """
    covering = payloads.covering_vrps(prefix)
    if not covering:
        return ANNOTATION_UNKNOWN
    if origin is None:
        return ANNOTATION_INVALID_AS_SET
    asn_matches = False
    length_fits = False
    for vrp in covering:
        asn_ok = int(vrp.asn) == int(origin)
        length_ok = prefix.length <= vrp.max_length
        if asn_ok and length_ok:
            return ANNOTATION_VALID
        asn_matches = asn_matches or asn_ok
        length_fits = length_fits or length_ok
    if asn_matches:
        return ANNOTATION_INVALID_LENGTH
    if length_fits:
        return ANNOTATION_INVALID_ASN
    return ANNOTATION_INVALID_BOTH
