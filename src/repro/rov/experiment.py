"""Controlled ROV adoption-inference experiments.

Reuter et al.'s methodology, replayed over the synthetic topology: a
runner announces seeded *anchor*/*experiment* prefix pairs from chosen
origin ASes — the anchor carries a matching ROA (valid), the
experiment prefix carries a deliberately conflicting one (invalid,
wrong origin ASN and/or exceeded maxLength) — propagates both, and
compares what a seeded vantage-point set observes:

* a vantage that carries the *invalid* route proves every AS on that
  path (except the origin) forwards invalids: **non-enforcing**;
* a vantage that carries the anchor route but lost the invalid proves
  at least one AS among {vantage} + anchor-path interior dropped it.
  Subtracting every AS seen on *any* invalid path this round leaves
  the *candidate* set; a singleton pinpoints an **enforcing** AS.

The elimination is sound because the two announcements are identical
except for the prefix value: absent enforcement the invalid converges
to exactly the anchor's routing state, so any divergence is caused by
enforcers — and an enforcer never appears on an invalid path, so it
can never be eliminated from its own candidate set.

ASes with neither kind of evidence are **inconclusive** — precisely
the ones the sampled vantage sets never covered decisively.

Every run is deterministic per ``(seed, topology digest, experiment
spec)``: round inputs derive from a :class:`DeterministicRNG` forked
from those three values, per-round evidence is merged by commutative
integer sums, so serial, threaded, and process-pool dispatch produce
bit-identical reports (pinned by ``RovReport.digest``).
"""

from __future__ import annotations

import enum
import hashlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bgp.messages import Announcement
from repro.bgp.propagation import PropagationEngine
from repro.bgp.topology import ASRole, ASTopology
from repro.crypto import DeterministicRNG
from repro.net import ASN, Prefix
from repro.rov.annotation import ANNOTATION_VALID, annotate_route
from repro.rpki.vrp import VRP, ValidatedPayloads

# RFC 2544 benchmarking range: guaranteed disjoint from the RIR pools
# the ecosystem allocates from, so experiment announcements never
# collide with production prefixes.
EXPERIMENT_RANGE = Prefix.parse("198.18.0.0/15")
_MAX_ROUNDS = 256  # (2 ** (24 - 15)) / 2 anchor/experiment /24 pairs

ROV_MODES = ("auto", "serial", "thread", "process")


def experiment_prefix_pair(index: int) -> Tuple[Prefix, Prefix]:
    """The (anchor, experiment) /24 pair for one round."""
    if not 0 <= index < _MAX_ROUNDS:
        raise ValueError(f"round index {index} outside [0, {_MAX_ROUNDS})")
    base = EXPERIMENT_RANGE.value
    anchor = Prefix(4, base + ((2 * index) << 8), 24)
    experiment = Prefix(4, base + ((2 * index + 1) << 8), 24)
    return anchor, experiment


def topology_digest(topology: ASTopology) -> str:
    """SHA-256 over the canonical node and edge lists.

    Sorted by ASN so two topologies describing the same graph hash
    identically regardless of construction (insertion) order.
    """
    digest = hashlib.sha256()
    for node in sorted(topology.ases(), key=lambda n: int(n.asn)):
        digest.update(
            f"N|{int(node.asn)}|{node.name}|{node.role.value}|"
            f"{node.organisation}\n".encode()
        )
    for asn in sorted(topology.asns(), key=int):
        neighbors = topology.neighbors(asn)
        for neighbor in sorted(neighbors, key=int):
            digest.update(
                f"E|{int(asn)}|{int(neighbor)}|"
                f"{neighbors[neighbor].name}\n".encode()
            )
    return digest.hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """Shape of one measurement campaign."""

    rounds: int = 64
    vantage_count: int = 12
    seed: int = 2015
    # Every Nth round announces a maxLength-violating experiment
    # prefix instead of a wrong-origin one (0 disables).
    wrong_length_every: int = 4
    # Every Nth round violates both clauses at once (0 disables).
    both_every: int = 10

    def __post_init__(self):
        if not 1 <= self.rounds <= _MAX_ROUNDS:
            raise ValueError(f"rounds must be within [1, {_MAX_ROUNDS}]")
        if self.vantage_count < 1:
            raise ValueError("vantage_count must be positive")

    def describe(self) -> str:
        return (
            f"rounds={self.rounds}|vantages={self.vantage_count}"
            f"|seed={self.seed}|wl={self.wrong_length_every}"
            f"|both={self.both_every}"
        )


class Verdict(enum.Enum):
    ENFORCING = "enforcing"
    NON_ENFORCING = "non_enforcing"
    INCONCLUSIVE = "inconclusive"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ASVerdict:
    """Classification of one AS with its supporting evidence."""

    asn: ASN
    verdict: Verdict
    confidence: float
    invalid_observations: int   # rounds this AS appeared on an invalid path
    pinpoint_observations: int  # rounds a singleton candidate blamed it
    suspect_observations: int   # rounds it appeared in any candidate set
    anchor_observations: int    # rounds it appeared on an anchor path

    def row(self) -> Tuple[int, str, str, int, int, int, int]:
        return (
            int(self.asn),
            self.verdict.value,
            f"{self.confidence:.6f}",
            self.invalid_observations,
            self.pinpoint_observations,
            self.suspect_observations,
            self.anchor_observations,
        )


# Canonical per-round evidence: asn -> (invalid, pinpoint, suspect, anchor)
RoundEvidence = Dict[int, Tuple[int, int, int, int]]


@dataclass(frozen=True)
class RoundResult:
    """One round's canonical, merge-ready outcome."""

    index: int
    origin: int
    annotation_rows: Tuple[Tuple[int, int], ...]  # (code, count)
    evidence: Tuple[Tuple[int, int, int, int, int], ...]  # (asn, i, p, s, a)
    vantage_observations: int


@dataclass
class RovReport:
    """The campaign's verdicts plus everything needed to replay it."""

    verdicts: Dict[ASN, ASVerdict]
    annotations: Dict[int, int]
    rounds: int
    vantage_observations: int
    topology_digest: str
    spec: ExperimentSpec
    enforcing_input: int = 0
    conflicts: int = 0

    def histogram(self) -> Dict[str, int]:
        counts = {verdict.value: 0 for verdict in Verdict}
        for entry in self.verdicts.values():
            counts[entry.verdict.value] += 1
        return counts

    def classified(self, verdict: Verdict) -> List[ASN]:
        return sorted(
            asn for asn, entry in self.verdicts.items()
            if entry.verdict is verdict
        )

    @property
    def digest(self) -> str:
        """Replay digest over every verdict row (CI pins this)."""
        digest = hashlib.sha256()
        digest.update(self.topology_digest.encode())
        digest.update(self.spec.describe().encode())
        for asn in sorted(self.verdicts, key=int):
            digest.update("|".join(
                str(part) for part in self.verdicts[asn].row()
            ).encode())
            digest.update(b"\n")
        for code in sorted(self.annotations):
            digest.update(f"A|{code}|{self.annotations[code]}\n".encode())
        return digest.hexdigest()

    def false_positives(self, true_enforcing: Iterable[ASN]) -> List[ASN]:
        """Conclusive verdicts contradicting a known ground truth."""
        truth = {ASN(a) for a in true_enforcing}
        wrong: List[ASN] = []
        for asn, entry in sorted(self.verdicts.items(), key=lambda kv: int(kv[0])):
            if entry.verdict is Verdict.ENFORCING and asn not in truth:
                wrong.append(asn)
            elif entry.verdict is Verdict.NON_ENFORCING and asn in truth:
                wrong.append(asn)
        return wrong

    def snippet_line(
        self, true_enforcing: Optional[Iterable[ASN]] = None
    ) -> str:
        """The Snippet 2 summary format: ``<#vantage points>|<#non-rov
        AS>|<#rov candidates>|<#rov enforcers>|<#false positives>``."""
        histogram = self.histogram()
        candidates = sum(
            1 for entry in self.verdicts.values()
            if entry.suspect_observations > 0
            and entry.verdict is not Verdict.NON_ENFORCING
        )
        false_count = (
            len(self.false_positives(true_enforcing))
            if true_enforcing is not None
            else 0
        )
        return (
            f"{self.vantage_observations}"
            f"|{histogram[Verdict.NON_ENFORCING.value]}"
            f"|{candidates}"
            f"|{histogram[Verdict.ENFORCING.value]}"
            f"|{false_count}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "digest": self.digest,
            "topology_digest": self.topology_digest,
            "spec": self.spec.describe(),
            "rounds": self.rounds,
            "vantage_observations": self.vantage_observations,
            "enforcing_input": self.enforcing_input,
            "conflicts": self.conflicts,
            "histogram": self.histogram(),
            "annotations": {
                str(code): count
                for code, count in sorted(self.annotations.items())
            },
            "snippet": self.snippet_line(),
            "verdicts": [
                list(self.verdicts[asn].row())
                for asn in sorted(self.verdicts, key=int)
            ],
        }


@dataclass(frozen=True)
class ExperimentRound:
    """The seeded inputs of one round (pure function of the spec)."""

    index: int
    origin: ASN
    vantages: Tuple[ASN, ...]
    anchor: Prefix
    experiment: Prefix
    vrps: Tuple[VRP, ...]


def build_round(
    topology: ASTopology,
    spec: ExperimentSpec,
    digest: str,
    index: int,
) -> ExperimentRound:
    """Derive one round's inputs from ``(seed, topology digest, spec)``."""
    rng = DeterministicRNG(
        f"rov:{digest}:{spec.seed}:{spec.describe()}"
    ).fork(f"round:{index}")
    asns = sorted(topology.asns(), key=int)
    origin = rng.choice(asns)
    pool = [asn for asn in asns if asn != origin]
    vantages = tuple(rng.sample(pool, min(spec.vantage_count, len(pool))))
    anchor, experiment = experiment_prefix_pair(index)

    wrong_origin = ASN(64496 + index)  # documentation range, never in-topology
    both = spec.both_every and index % spec.both_every == spec.both_every - 1
    wrong_length = (
        not both
        and spec.wrong_length_every
        and index % spec.wrong_length_every == spec.wrong_length_every - 1
    )
    vrps = [VRP(anchor, anchor.length, origin, trust_anchor="rov-anchor")]
    if both:
        cover = experiment.supernet(experiment.length - 1)
        vrps.append(VRP(cover, cover.length, wrong_origin, "rov-experiment"))
    elif wrong_length:
        cover = experiment.supernet(experiment.length - 1)
        vrps.append(VRP(cover, cover.length, origin, "rov-experiment"))
    else:
        vrps.append(VRP(experiment, experiment.length, wrong_origin,
                        "rov-experiment"))
    return ExperimentRound(
        index=index,
        origin=origin,
        vantages=vantages,
        anchor=anchor,
        experiment=experiment,
        vrps=tuple(vrps),
    )


def run_round(
    engine: PropagationEngine,
    round_input: ExperimentRound,
    enforcing: FrozenSet[ASN],
) -> RoundResult:
    """Propagate one anchor/experiment pair and extract the evidence."""
    payloads = ValidatedPayloads(round_input.vrps)
    origin = round_input.origin
    state = engine.propagate(
        [
            Announcement(prefix=round_input.anchor, origin=origin),
            Announcement(prefix=round_input.experiment, origin=origin),
        ],
        payloads=payloads,
        enforcing=enforcing,
        record_ases=set(round_input.vantages),
    )

    annotations: Dict[int, int] = {}
    invalid_ases: set = set()
    anchor_paths: Dict[ASN, Tuple[ASN, ...]] = {}
    observations = 0
    for vantage in round_input.vantages:
        anchor_entry = state.route_at(vantage, round_input.anchor)
        invalid_entry = state.route_at(vantage, round_input.experiment)
        if anchor_entry is not None:
            observations += 1
            anchor_paths[vantage] = tuple(anchor_entry.path)
            code = annotate_route(
                payloads, round_input.anchor, anchor_entry.origin
            )
            annotations[code] = annotations.get(code, 0) + 1
        if invalid_entry is not None:
            observations += 1
            invalid_ases.update(
                asn for asn in invalid_entry.path if asn != origin
            )
            code = annotate_route(
                payloads, round_input.experiment, invalid_entry.origin
            )
            annotations[code] = annotations.get(code, 0) + 1

    invalid_set = frozenset(invalid_ases)
    suspects: set = set()
    pinpointed: set = set()
    anchor_seen: set = set()
    for vantage, path in anchor_paths.items():
        anchor_seen.update(asn for asn in path if asn != origin)
        if state.route_at(vantage, round_input.experiment) is not None:
            continue
        # Anchor arrived, invalid vanished: somebody in {vantage} +
        # path interior dropped it.  Remove everyone proven
        # non-enforcing this round; a singleton is a pinpoint.
        candidates = frozenset(path) - {origin} - invalid_set
        if not candidates:
            continue
        suspects.update(candidates)
        if len(candidates) == 1:
            pinpointed.update(candidates)

    evidence: List[Tuple[int, int, int, int, int]] = []
    for asn in sorted(invalid_set | suspects | anchor_seen, key=int):
        evidence.append((
            int(asn),
            1 if asn in invalid_set else 0,
            1 if asn in pinpointed else 0,
            1 if asn in suspects else 0,
            1 if asn in anchor_seen else 0,
        ))
    return RoundResult(
        index=round_input.index,
        origin=int(origin),
        annotation_rows=tuple(sorted(annotations.items())),
        evidence=tuple(evidence),
        vantage_observations=observations,
    )


def _run_shard(
    payload: Tuple[ASTopology, Tuple[int, ...], ExperimentSpec, str,
                   Tuple[int, ...]],
) -> List[RoundResult]:
    """Process-pool entry point: run a contiguous slice of rounds."""
    topology, enforcing_rows, spec, digest, indices = payload
    enforcing = frozenset(ASN(a) for a in enforcing_rows)
    engine = PropagationEngine(topology)
    return [
        run_round(engine, build_round(topology, spec, digest, index), enforcing)
        for index in indices
    ]


DEFAULT_ENFORCEMENT_RATES: Dict[ASRole, float] = {
    ASRole.TIER1: 0.40,
    ASRole.TRANSIT: 0.30,
    ASRole.EYEBALL: 0.15,
    ASRole.HOSTER: 0.10,
    ASRole.CDN: 0.25,
    ASRole.STUB: 0.05,
}


def seeded_enforcers(
    topology: ASTopology,
    seed: Union[int, str] = 2015,
    rates: Optional[Dict[ASRole, float]] = None,
    scale: float = 1.0,
) -> FrozenSet[ASN]:
    """A deterministic ground-truth ROV deployment.

    Each AS enforces with a role-dependent probability drawn from a
    per-AS RNG fork, so the outcome for one AS never depends on
    iteration order or on how many other ASes exist.
    """
    rates = rates or DEFAULT_ENFORCEMENT_RATES
    root = DeterministicRNG(f"rov-deployment:{seed}")
    chosen = []
    for node in topology.ases():
        rate = min(1.0, rates.get(node.role, 0.0) * scale)
        if root.fork(f"as:{int(node.asn)}").random() < rate:
            chosen.append(node.asn)
    return frozenset(chosen)


class RovExperimentRunner:
    """Runs a campaign and classifies every AS of the topology."""

    def __init__(
        self,
        topology: ASTopology,
        enforcing: Iterable[Union[int, ASN]],
        spec: Optional[ExperimentSpec] = None,
    ):
        self._topology = topology
        self._enforcing = frozenset(ASN(a) for a in enforcing)
        self._spec = spec or ExperimentSpec()
        self._digest = topology_digest(topology)

    @property
    def spec(self) -> ExperimentSpec:
        return self._spec

    @property
    def topology_digest(self) -> str:
        return self._digest

    def rounds(self) -> List[ExperimentRound]:
        """The seeded inputs of every round (for oracles and tests)."""
        return [
            build_round(self._topology, self._spec, self._digest, index)
            for index in range(self._spec.rounds)
        ]

    def run(self, mode: str = "auto", workers: int = 1) -> RovReport:
        if mode not in ROV_MODES:
            raise ValueError(f"unknown mode {mode!r} (one of {ROV_MODES})")
        indices = list(range(self._spec.rounds))
        if mode == "auto":
            mode = "serial" if workers <= 1 else "process"
        if mode == "serial" or workers <= 1:
            results = _run_shard(
                (self._topology, self._enforcing_rows(), self._spec,
                 self._digest, tuple(indices))
            )
        else:
            shards = self._shards(indices, workers)
            payloads = [
                (self._topology, self._enforcing_rows(), self._spec,
                 self._digest, shard)
                for shard in shards
            ]
            pool_cls = (
                ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
            )
            with pool_cls(max_workers=workers) as pool:
                shard_results = list(pool.map(_run_shard, payloads))
            results = [result for shard in shard_results for result in shard]
        report = self._aggregate(results)
        self._record_metrics(report)
        return report

    # -- internals --------------------------------------------------------

    def _enforcing_rows(self) -> Tuple[int, ...]:
        return tuple(sorted(int(asn) for asn in self._enforcing))

    @staticmethod
    def _shards(indices: Sequence[int], workers: int) -> List[Tuple[int, ...]]:
        shard_count = max(1, min(len(indices), workers * 4))
        size = (len(indices) + shard_count - 1) // shard_count
        return [
            tuple(indices[start:start + size])
            for start in range(0, len(indices), size)
        ]

    def _aggregate(self, results: List[RoundResult]) -> RovReport:
        totals: Dict[int, List[int]] = {}
        annotations: Dict[int, int] = {}
        observations = 0
        for result in results:
            observations += result.vantage_observations
            for code, count in result.annotation_rows:
                annotations[code] = annotations.get(code, 0) + count
            for asn, invalid, pinpoint, suspect, anchor in result.evidence:
                entry = totals.setdefault(asn, [0, 0, 0, 0])
                entry[0] += invalid
                entry[1] += pinpoint
                entry[2] += suspect
                entry[3] += anchor

        verdicts: Dict[ASN, ASVerdict] = {}
        conflicts = 0
        for asn in sorted(self._topology.asns(), key=int):
            invalid, pinpoint, suspect, anchor = totals.get(int(asn), (0, 0, 0, 0))
            if invalid and pinpoint:
                conflicts += 1
            if pinpoint:
                verdict = Verdict.ENFORCING
                confidence = 1.0 - 0.5 ** pinpoint
            elif invalid:
                verdict = Verdict.NON_ENFORCING
                confidence = 1.0 - 0.5 ** invalid
            else:
                verdict = Verdict.INCONCLUSIVE
                confidence = 0.0
            verdicts[asn] = ASVerdict(
                asn=asn,
                verdict=verdict,
                confidence=confidence,
                invalid_observations=invalid,
                pinpoint_observations=pinpoint,
                suspect_observations=suspect,
                anchor_observations=anchor,
            )
        return RovReport(
            verdicts=verdicts,
            annotations=annotations,
            rounds=len(results),
            vantage_observations=observations,
            topology_digest=self._digest,
            spec=self._spec,
            enforcing_input=len(self._enforcing),
            conflicts=conflicts,
        )

    def _record_metrics(self, report: RovReport) -> None:
        from repro.obs import runtime

        registry = runtime.metrics()
        if not getattr(registry, "enabled", False):
            return
        registry.counter(
            "ripki_rov_experiments_total",
            "ROV anchor/experiment rounds executed",
        ).inc(report.rounds)
        verdict_counter = registry.counter(
            "ripki_rov_verdicts_total",
            "AS classifications by verdict",
            labelnames=("verdict",),
        )
        for verdict, count in report.histogram().items():
            verdict_counter.labels(verdict=verdict).inc(count)
        annotation_counter = registry.counter(
            "ripki_rov_annotations_total",
            "Observed routes by 0-5 validity annotation",
            labelnames=("code",),
        )
        for code, count in sorted(report.annotations.items()):
            annotation_counter.labels(code=str(code)).inc(count)
        registry.counter(
            "ripki_rov_vantage_observations_total",
            "Vantage-point route observations collected",
        ).inc(report.vantage_observations)
