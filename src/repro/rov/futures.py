"""Seeded adoption futures.

An :class:`AdoptionFuture` is one hypothetical deployment step the
counterfactual engine evaluates: a set of organisations that start
signing ROAs for all their prefixes plus a set of ASes that start
enforcing ROV.  Three named futures pin the scenarios the paper's
discussion keeps returning to, and :func:`sample_futures` generates
hundreds of seeded intermediate ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.bgp.topology import ASRole
from repro.crypto import DeterministicRNG
from repro.net import ASN
from repro.rov.experiment import seeded_enforcers
from repro.web.organisations import OrgKind

NAMED_FUTURES = ("cdn-top5-sign", "tier1-enforce", "full-rov")


@dataclass(frozen=True)
class AdoptionFuture:
    """One hypothetical (sign, enforce) deployment step."""

    name: str
    sign: Tuple[str, ...] = ()     # organisation names issuing ROAs
    enforce: Tuple[ASN, ...] = ()  # ASes enforcing origin validation

    def __post_init__(self):
        object.__setattr__(self, "sign", tuple(sorted(self.sign)))
        object.__setattr__(
            self, "enforce",
            tuple(sorted((ASN(a) for a in self.enforce), key=int)),
        )

    def label(self) -> str:
        """Canonical identity string (seeds per-future randomness)."""
        orgs = ",".join(self.sign)
        asns = ",".join(str(int(a)) for a in self.enforce)
        return f"{self.name}|sign:{orgs}|enforce:{asns}"

    @property
    def is_baseline(self) -> bool:
        return not self.sign and not self.enforce


def named_future(world, name: str) -> AdoptionFuture:
    """One of the three pinned scenarios over a built ecosystem."""
    if name == "cdn-top5-sign":
        cdns = [
            org.name for org in world.organisations
            if org.kind is OrgKind.CDN
        ]
        return AdoptionFuture(name=name, sign=tuple(cdns[:5]))
    if name == "tier1-enforce":
        tier1 = tuple(
            node.asn for node in world.topology.by_role(ASRole.TIER1)
        )
        return AdoptionFuture(name=name, enforce=tier1)
    if name == "full-rov":
        return AdoptionFuture(
            name=name,
            sign=tuple(org.name for org in world.organisations),
            enforce=tuple(world.topology.asns()),
        )
    raise ValueError(f"unknown future {name!r} (one of {NAMED_FUTURES})")


def named_futures(world) -> List[AdoptionFuture]:
    return [named_future(world, name) for name in NAMED_FUTURES]


def sample_futures(
    world, count: int, seed: Union[int, str] = 2015
) -> List[AdoptionFuture]:
    """``count`` seeded adoption futures of increasing ambition.

    Each future signs a random subset of organisations and enforces a
    role-weighted random AS subset whose aggressiveness grows with the
    future index, so a sweep spans "one hoster signs" through "most of
    the core filters".
    """
    org_names = sorted(org.name for org in world.organisations)
    futures: List[AdoptionFuture] = []
    for index in range(count):
        rng = DeterministicRNG(f"rov-future:{seed}").fork(f"sample:{index}")
        ambition = (index + 1) / max(1, count)
        sign_count = rng.randint(0, max(1, int(len(org_names) * ambition * 0.5)))
        sign = tuple(rng.sample(org_names, min(sign_count, len(org_names))))
        enforce = seeded_enforcers(
            world.topology,
            seed=f"{seed}:future:{index}",
            scale=ambition * rng.random() * 2.0,
        )
        futures.append(AdoptionFuture(
            name=f"future-{index:03d}",
            sign=sign,
            enforce=tuple(enforce),
        ))
    return futures


def future_census(futures: List[AdoptionFuture]) -> Dict[str, float]:
    """Summary statistics over a future sweep (for reports)."""
    if not futures:
        return {"futures": 0, "mean_signing": 0.0, "mean_enforcing": 0.0}
    return {
        "futures": len(futures),
        "mean_signing": sum(len(f.sign) for f in futures) / len(futures),
        "mean_enforcing": sum(len(f.enforce) for f in futures) / len(futures),
    }
