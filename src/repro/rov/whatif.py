"""The what-if counterfactual engine.

``whatif(ecosystem, sign=[...], enforce=[...])`` answers the question
the paper's tragic finding begs: *if* these organisations signed ROAs
and *if* those ASes enforced ROV, how would the web ecosystem's
exposure change?

The engine runs the measurement funnel **once** to fix the per-domain
(prefix, origin) pairs — the routing-derived inputs of Figs. 2 and 4 —
then evaluates each :class:`~repro.rov.futures.AdoptionFuture` by

1. augmenting the validated payloads with synthetic ROAs for every
   signing organisation (generous maxLength, matching the adoption
   model's operator behaviour),
2. re-validating every pair to recompute the Fig. 2 state fractions
   and Fig. 4 RPKI-enabled shares, and
3. replaying a fixed, seeded sample of prefix hijacks against the
   future's enforcing set to measure control-plane exposure (mean
   attacker capture and the share of fully blocked hijacks).

The hijack sample is drawn once per engine, so every future is scored
against the *same* attacks — a paired comparison.  All computation is
pure arithmetic over seeded inputs: a fixed seed yields bit-identical
:class:`ExposureDelta` lists across serial, thread, and process
dispatch.  The engine deliberately keeps no reference to the built
ecosystem, so it pickles cheaply into process pools.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bgp.hijack import HijackScenario
from repro.bgp.messages import Announcement
from repro.bgp.topology import ASTopology
from repro.crypto import DeterministicRNG
from repro.net import ASN, Prefix
from repro.rov.futures import AdoptionFuture
from repro.rpki.vrp import VRP, OriginValidation, ValidatedPayloads

WHATIF_MODES = ("auto", "serial", "thread", "process")

_DELTA_FIELDS = (
    "valid_fraction",
    "invalid_fraction",
    "not_found_fraction",
    "rpki_enabled_share",
    "rpki_enabled_cdn_share",
    "hijack_capture_mean",
    "hijack_blocked_share",
)


@dataclass(frozen=True)
class ExposureSnapshot:
    """Fig. 2 / Fig. 4-style outcome under one payload+enforcement mix."""

    domains: int
    usable_domains: int
    pair_count: int
    valid_fraction: float
    invalid_fraction: float
    not_found_fraction: float
    rpki_enabled_share: float
    rpki_enabled_cdn_share: float
    hijack_attempts: int
    hijack_capture_mean: float
    hijack_blocked_share: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "domains": self.domains,
            "usable_domains": self.usable_domains,
            "pair_count": self.pair_count,
            "valid_fraction": round(self.valid_fraction, 9),
            "invalid_fraction": round(self.invalid_fraction, 9),
            "not_found_fraction": round(self.not_found_fraction, 9),
            "rpki_enabled_share": round(self.rpki_enabled_share, 9),
            "rpki_enabled_cdn_share": round(self.rpki_enabled_cdn_share, 9),
            "hijack_attempts": self.hijack_attempts,
            "hijack_capture_mean": round(self.hijack_capture_mean, 9),
            "hijack_blocked_share": round(self.hijack_blocked_share, 9),
        }


@dataclass(frozen=True)
class ExposureDelta:
    """How one adoption future shifts the baseline outcome."""

    future: str
    signing_orgs: int
    enforcing_count: int
    baseline: ExposureSnapshot
    outcome: ExposureSnapshot

    def deltas(self) -> Dict[str, float]:
        return {
            name: getattr(self.outcome, name) - getattr(self.baseline, name)
            for name in _DELTA_FIELDS
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "future": self.future,
            "signing_orgs": self.signing_orgs,
            "enforcing_count": self.enforcing_count,
            "outcome": self.outcome.to_dict(),
            "deltas": {
                name: round(value, 9)
                for name, value in sorted(self.deltas().items())
            },
        }


@dataclass(frozen=True)
class _DomainRow:
    """The funnel outcome the engine keeps per domain."""

    rank: int
    usable: bool
    is_cdn: bool
    pairs: Tuple[Tuple[Prefix, ASN], ...]


@dataclass(frozen=True)
class _HijackCase:
    victim_prefix: Prefix
    victim_origin: ASN
    attacker: ASN


def _whatif_shard(
    payload: Tuple["WhatIfEngine", Tuple[AdoptionFuture, ...]],
) -> List[ExposureDelta]:
    """Process-pool entry point: score a slice of futures."""
    engine, futures = payload
    return [engine.run(future) for future in futures]


class WhatIfEngine:
    """Scores adoption futures against one funnel baseline."""

    def __init__(
        self,
        world,
        *,
        hijack_samples: int = 20,
        seed: Union[int, str] = 2015,
        result=None,
    ):
        if result is None:
            from repro.core import MeasurementStudy

            result = MeasurementStudy.from_ecosystem(world).run()
        self._topology: ASTopology = world.topology
        self._base_vrps: Tuple[VRP, ...] = tuple(world.payloads())
        self._org_prefixes: Dict[str, Tuple[Tuple[Prefix, ASN], ...]] = {
            org.name: tuple(sorted(org.prefixes.items()))
            for org in world.organisations
        }
        self._rows: Tuple[_DomainRow, ...] = tuple(
            _DomainRow(
                rank=measurement.rank,
                usable=measurement.usable,
                is_cdn=measurement.is_cdn(),
                pairs=tuple(
                    (pair.prefix, pair.origin)
                    for pair in measurement.combined_pairs()
                ),
            )
            for measurement in result.by_rank()
        )
        self._seed = seed
        self._cases = self._draw_hijack_cases(hijack_samples)
        self._baseline: Optional[ExposureSnapshot] = None

    # -- public API -------------------------------------------------------

    def baseline(
        self, base_payloads: Optional[ValidatedPayloads] = None
    ) -> ExposureSnapshot:
        if base_payloads is not None:
            return self._snapshot(base_payloads, frozenset())
        if self._baseline is None:
            self._baseline = self._snapshot(
                ValidatedPayloads(self._base_vrps), frozenset()
            )
        return self._baseline

    def run(
        self,
        future: AdoptionFuture,
        base_payloads: Optional[ValidatedPayloads] = None,
    ) -> ExposureDelta:
        """Score one future against the (optionally overridden) baseline.

        ``base_payloads`` couples the engine to an evolving world: pass
        a :class:`~repro.world.engine.WorldStep`'s payloads to evaluate
        the future against that step's VRP set instead of the built
        ecosystem's.
        """
        payloads = self._augmented(future, base_payloads)
        outcome = self._snapshot(payloads, frozenset(future.enforce))
        delta = ExposureDelta(
            future=future.name,
            signing_orgs=len(future.sign),
            enforcing_count=len(future.enforce),
            baseline=self.baseline(base_payloads),
            outcome=outcome,
        )
        self._record_metrics(delta)
        return delta

    def run_futures(
        self,
        futures: Sequence[AdoptionFuture],
        mode: str = "auto",
        workers: int = 1,
    ) -> List[ExposureDelta]:
        """Score a sweep; results are in input order for every backend."""
        if mode not in WHATIF_MODES:
            raise ValueError(f"unknown mode {mode!r} (one of {WHATIF_MODES})")
        if mode == "auto":
            mode = "serial" if workers <= 1 else "process"
        if mode == "serial" or workers <= 1 or len(futures) <= 1:
            return [self.run(future) for future in futures]
        self.baseline()  # compute once so shards inherit it
        shard_count = max(1, min(len(futures), workers * 2))
        size = (len(futures) + shard_count - 1) // shard_count
        shards = [
            tuple(futures[start:start + size])
            for start in range(0, len(futures), size)
        ]
        pool_cls = ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            results = list(pool.map(_whatif_shard, [(self, s) for s in shards]))
        return [delta for shard in results for delta in shard]

    def trajectory(
        self,
        steps: Iterable,
        future: AdoptionFuture,
    ) -> List[ExposureDelta]:
        """Optional world coupling: score ``future`` against each
        :class:`~repro.world.engine.WorldStep`'s observed VRP set, so
        an adoption future can be tracked across CA churn, outages,
        and rollovers."""
        return [self.run(future, base_payloads=step.payloads) for step in steps]

    # -- internals --------------------------------------------------------

    def _draw_hijack_cases(self, samples: int) -> Tuple[_HijackCase, ...]:
        pairs = sorted({
            pair for row in self._rows if row.usable for pair in row.pairs
        })
        asns = sorted(self._topology.asns(), key=int)
        if not pairs or len(asns) < 2:
            return ()
        rng = DeterministicRNG(f"rov-whatif:{self._seed}")
        cases = []
        for index in range(samples):
            case_rng = rng.fork(f"case:{index}")
            prefix, origin = case_rng.choice(pairs)
            attacker = case_rng.choice([a for a in asns if a != origin])
            cases.append(_HijackCase(prefix, origin, attacker))
        return tuple(cases)

    def _augmented(
        self,
        future: AdoptionFuture,
        base_payloads: Optional[ValidatedPayloads],
    ) -> ValidatedPayloads:
        base = (
            tuple(base_payloads)
            if base_payloads is not None
            else self._base_vrps
        )
        if not future.sign:
            return ValidatedPayloads(base)
        existing = {(vrp.prefix, int(vrp.asn)) for vrp in base}
        synthetic: List[VRP] = []
        for org_name in future.sign:
            for prefix, origin in self._org_prefixes.get(org_name, ()):
                if (prefix, int(origin)) in existing:
                    continue
                # Generous maxLength, like the adoption model: keeps
                # announced more-specifics valid (/24 v4, /48 v6).
                max_length = max(
                    prefix.length, 24 if prefix.family == 4 else 48
                )
                synthetic.append(
                    VRP(prefix, max_length, origin, trust_anchor="whatif")
                )
        return ValidatedPayloads(base + tuple(synthetic))

    def _snapshot(
        self,
        payloads: ValidatedPayloads,
        enforcing: FrozenSet[ASN],
    ) -> ExposureSnapshot:
        state_cache: Dict[Tuple[Prefix, ASN], OriginValidation] = {}

        def validate(prefix: Prefix, origin: ASN) -> OriginValidation:
            key = (prefix, origin)
            if key not in state_cache:
                state_cache[key] = payloads.validate_origin(prefix, origin)
            return state_cache[key]

        usable = 0
        pair_count = 0
        valid_sum = invalid_sum = notfound_sum = 0.0
        enabled = 0
        cdn_usable = 0
        cdn_enabled = 0
        for row in self._rows:
            if not row.usable or not row.pairs:
                continue
            usable += 1
            pair_count += len(row.pairs)
            states = [validate(prefix, origin) for prefix, origin in row.pairs]
            total = len(states)
            valid = sum(1 for s in states if s is OriginValidation.VALID)
            invalid = sum(1 for s in states if s is OriginValidation.INVALID)
            valid_sum += valid / total
            invalid_sum += invalid / total
            notfound_sum += (total - valid - invalid) / total
            row_enabled = any(s is not OriginValidation.NOT_FOUND for s in states)
            if row_enabled:
                enabled += 1
            if row.is_cdn:
                cdn_usable += 1
                if row_enabled:
                    cdn_enabled += 1

        scenario = HijackScenario(self._topology)
        captures: List[float] = []
        blocked = 0
        for case in self._cases:
            outcome = scenario.run(
                Announcement(prefix=case.victim_prefix,
                             origin=case.victim_origin),
                case.attacker,
                payloads=payloads,
                enforcing=enforcing,
            )
            captures.append(outcome.capture_fraction)
            # Blocked: nobody beyond the attacker's own AS routes to it.
            if not (outcome.attacker_captured - {case.attacker}):
                blocked += 1

        return ExposureSnapshot(
            domains=len(self._rows),
            usable_domains=usable,
            pair_count=pair_count,
            valid_fraction=valid_sum / usable if usable else 0.0,
            invalid_fraction=invalid_sum / usable if usable else 0.0,
            not_found_fraction=notfound_sum / usable if usable else 0.0,
            rpki_enabled_share=enabled / usable if usable else 0.0,
            rpki_enabled_cdn_share=(
                cdn_enabled / cdn_usable if cdn_usable else 0.0
            ),
            hijack_attempts=len(self._cases),
            hijack_capture_mean=(
                sum(captures) / len(captures) if captures else 0.0
            ),
            hijack_blocked_share=(
                blocked / len(self._cases) if self._cases else 0.0
            ),
        )

    def _record_metrics(self, delta: ExposureDelta) -> None:
        from repro.obs import runtime

        registry = runtime.metrics()
        if not getattr(registry, "enabled", False):
            return
        registry.counter(
            "ripki_rov_futures_total",
            "Adoption futures scored by the what-if engine",
        ).inc()
        registry.counter(
            "ripki_rov_hijack_replays_total",
            "Seeded hijack scenarios replayed for exposure scoring",
        ).inc(delta.outcome.hijack_attempts)

    # Pickling: everything the engine keeps is plain data, but the
    # memoized baseline travels along so process shards never recompute
    # it (and can never diverge from the parent's).
    def __getstate__(self):
        self.baseline()
        return self.__dict__

    def __repr__(self) -> str:
        return (
            f"<WhatIfEngine {len(self._rows)} domains, "
            f"{len(self._base_vrps)} base VRPs, "
            f"{len(self._cases)} hijack cases>"
        )


def whatif(
    world,
    sign: Sequence[str] = (),
    enforce: Sequence[Union[int, ASN]] = (),
    *,
    name: str = "adhoc",
    hijack_samples: int = 20,
    seed: Union[int, str] = 2015,
    engine: Optional[WhatIfEngine] = None,
    result=None,
) -> ExposureDelta:
    """One-shot counterfactual: ``whatif(world, sign=[...], enforce=[...])``.

    Builds (or reuses) a :class:`WhatIfEngine` and scores a single
    future.  Pass ``engine=`` when sweeping many futures so the funnel
    runs once.
    """
    engine = engine or WhatIfEngine(
        world, hijack_samples=hijack_samples, seed=seed, result=result
    )
    future = AdoptionFuture(
        name=name,
        sign=tuple(sign),
        enforce=tuple(ASN(a) for a in enforce),
    )
    return engine.run(future)
