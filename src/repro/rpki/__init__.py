"""Resource Public Key Infrastructure (RPKI) substrate.

Implements the machinery of RFC 6480 and friends that the paper's
measurement step (4) depends on:

* RFC 3779-style number-resource sets on certificates
  (:mod:`repro.rpki.resources`),
* resource certificates and CA hierarchies (:mod:`repro.rpki.cert`),
* Route Origin Authorizations with embedded EE certificates,
  RFC 6482 (:mod:`repro.rpki.roa`),
* CRLs and manifests (:mod:`repro.rpki.crl`,
  :mod:`repro.rpki.manifest`),
* publication points and repositories (:mod:`repro.rpki.repository`),
* trust anchor locators (:mod:`repro.rpki.tal`),
* a relying-party validator that cryptographically validates the tree
  and emits Validated ROA Payloads (:mod:`repro.rpki.validator`),
* RFC 6811 prefix origin validation (:mod:`repro.rpki.vrp`).
"""

from repro.errors import ReproError
from repro.rpki.cert import CertificateAuthority, ResourceCertificate
from repro.rpki.crl import CertificateRevocationList
from repro.rpki.errors import RPKIError, ValidationError
from repro.rpki.manifest import Manifest
from repro.rpki.repository import PublicationPoint, Repository
from repro.rpki.resources import ASNRange, ResourceSet
from repro.rpki.roa import ROA, ROAPrefix
from repro.rpki.tal import TrustAnchorLocator
from repro.rpki.validator import RelyingParty, ValidationReport
from repro.rpki.vrp import VRP, OriginValidation, ValidatedPayloads

__all__ = [
    "ASNRange",
    "CertificateAuthority",
    "CertificateRevocationList",
    "Manifest",
    "OriginValidation",
    "PublicationPoint",
    "ROA",
    "ROAPrefix",
    "RPKIError",
    "ReproError",
    "RelyingParty",
    "Repository",
    "ResourceCertificate",
    "ResourceSet",
    "TrustAnchorLocator",
    "VRP",
    "ValidatedPayloads",
    "ValidationError",
    "ValidationReport",
]
