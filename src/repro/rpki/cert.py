"""Resource certificates and certificate authorities.

A :class:`ResourceCertificate` is the RPKI analogue of an RFC 6487
X.509 certificate: a subject key, an RFC 3779 resource extension, a
validity window, and a signature by the issuer.  A
:class:`CertificateAuthority` owns a key pair and its certificate and
can issue child CA certificates, end-entity (EE) certificates, ROAs,
CRLs, and manifests into its publication point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto import DeterministicRNG, KeyPair, PublicKey, generate_keypair
from repro.crypto.digest import canonical_bytes
from repro.crypto.rsa import DEFAULT_KEY_BITS, sign, verify
from repro.net import ASN, Prefix
from repro.rpki.errors import IssuanceError
from repro.rpki.resources import ResourceSet

# Default validity window (arbitrary simulated time units; the
# ecosystem uses "days since epoch").
DEFAULT_VALIDITY = 365.0


@dataclass(frozen=True)
class ResourceCertificate:
    """A signed resource certificate.

    ``issuer_fingerprint`` refers to the issuer's *public key*
    fingerprint (AKI); self-signed trust-anchor certificates carry
    their own fingerprint there.
    """

    subject: str
    serial: int
    public_key: PublicKey
    resources: ResourceSet
    not_before: float
    not_after: float
    issuer_fingerprint: str
    is_ca: bool
    signature: int

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding; any field change invalidates it."""
        return canonical_bytes(
            {
                "subject": self.subject,
                "serial": self.serial,
                "public_key": self.public_key.to_dict(),
                "resources": self.resources.to_dict(),
                "not_before": self.not_before,
                "not_after": self.not_after,
                "issuer": self.issuer_fingerprint,
                "is_ca": self.is_ca,
            }
        )

    def fingerprint(self) -> str:
        """Subject key identifier (fingerprint of the public key)."""
        return self.public_key.fingerprint()

    def is_self_signed(self) -> bool:
        return self.issuer_fingerprint == self.fingerprint()

    def verify_signature(self, issuer_key: PublicKey) -> bool:
        return verify(self.tbs_bytes(), self.signature, issuer_key)

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    def __repr__(self) -> str:
        kind = "CA" if self.is_ca else "EE"
        return f"<{kind} cert {self.subject!r} serial={self.serial}>"


def _sign_certificate(
    subject: str,
    serial: int,
    public_key: PublicKey,
    resources: ResourceSet,
    not_before: float,
    not_after: float,
    issuer_fingerprint: str,
    is_ca: bool,
    issuer_keypair: KeyPair,
) -> ResourceCertificate:
    unsigned = ResourceCertificate(
        subject=subject,
        serial=serial,
        public_key=public_key,
        resources=resources,
        not_before=not_before,
        not_after=not_after,
        issuer_fingerprint=issuer_fingerprint,
        is_ca=is_ca,
        signature=0,
    )
    signature = sign(unsigned.tbs_bytes(), issuer_keypair)
    return ResourceCertificate(
        subject=subject,
        serial=serial,
        public_key=public_key,
        resources=resources,
        not_before=not_before,
        not_after=not_after,
        issuer_fingerprint=issuer_fingerprint,
        is_ca=is_ca,
        signature=signature,
    )


class CertificateAuthority:
    """A certification authority in the RPKI hierarchy.

    Use :meth:`create_trust_anchor` for the five RIR roots and
    :meth:`issue_child_ca` to delegate resources downwards.  ROA
    issuance (:meth:`issue_roa`) creates a one-time EE key pair and an
    EE certificate whose resources are exactly the ROA's prefixes, as
    RFC 6482 requires.
    """

    def __init__(
        self,
        name: str,
        keypair: KeyPair,
        certificate: ResourceCertificate,
        rng: DeterministicRNG,
        key_bits: int = DEFAULT_KEY_BITS,
    ):
        self.name = name
        self.keypair = keypair
        self.certificate = certificate
        self._rng = rng
        self._key_bits = key_bits
        self._serials = itertools.count(1)
        self.revoked_serials: set = set()
        self.children: List["CertificateAuthority"] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def create_trust_anchor(
        cls,
        name: str,
        rng: DeterministicRNG,
        resources: Optional[ResourceSet] = None,
        not_before: float = 0.0,
        not_after: float = DEFAULT_VALIDITY * 10,
        key_bits: int = DEFAULT_KEY_BITS,
    ) -> "CertificateAuthority":
        """Create a self-signed root CA (an RIR trust anchor)."""
        if resources is None:
            resources = ResourceSet.all_resources()
        keypair = generate_keypair(rng.fork(f"ta-key:{name}"), bits=key_bits)
        certificate = _sign_certificate(
            subject=name,
            serial=0,
            public_key=keypair.public,
            resources=resources,
            not_before=not_before,
            not_after=not_after,
            issuer_fingerprint=keypair.public.fingerprint(),
            is_ca=True,
            issuer_keypair=keypair,
        )
        return cls(name, keypair, certificate, rng.fork(f"ta:{name}"), key_bits)

    def issue_child_ca(
        self,
        name: str,
        resources: ResourceSet,
        not_before: Optional[float] = None,
        not_after: Optional[float] = None,
    ) -> "CertificateAuthority":
        """Delegate ``resources`` to a new child CA.

        Raises :class:`IssuanceError` when the resources are not a
        subset of this CA's holdings (a well-behaved CA never
        over-claims on purpose; the validator still checks).
        """
        if not self.certificate.resources.covers(resources):
            raise IssuanceError(
                f"{self.name} does not hold all of {resources} "
                f"requested by child {name!r}"
            )
        keypair = generate_keypair(
            self._rng.fork(f"ca-key:{name}"), bits=self._key_bits
        )
        certificate = _sign_certificate(
            subject=name,
            serial=next(self._serials),
            public_key=keypair.public,
            resources=resources,
            not_before=self.certificate.not_before if not_before is None else not_before,
            not_after=self.certificate.not_after if not_after is None else not_after,
            issuer_fingerprint=self.keypair.public.fingerprint(),
            is_ca=True,
            issuer_keypair=self.keypair,
        )
        child = CertificateAuthority(
            name, keypair, certificate, self._rng.fork(f"ca:{name}"), self._key_bits
        )
        self.children.append(child)
        return child

    def issue_ee_certificate(
        self,
        subject: str,
        resources: ResourceSet,
        not_before: Optional[float] = None,
        not_after: Optional[float] = None,
        enforce_coverage: bool = True,
    ) -> Tuple[ResourceCertificate, KeyPair]:
        """Issue a one-time end-entity certificate and its key pair.

        ``enforce_coverage=False`` lets tests create deliberately
        over-claiming certificates that the validator must reject.
        """
        if enforce_coverage and not self.certificate.resources.covers(resources):
            raise IssuanceError(
                f"{self.name} does not hold all of {resources} "
                f"for EE certificate {subject!r}"
            )
        keypair = generate_keypair(
            self._rng.fork(f"ee-key:{subject}:{self._peek_serial()}"),
            bits=self._key_bits,
        )
        certificate = _sign_certificate(
            subject=subject,
            serial=next(self._serials),
            public_key=keypair.public,
            resources=resources,
            not_before=self.certificate.not_before if not_before is None else not_before,
            not_after=self.certificate.not_after if not_after is None else not_after,
            issuer_fingerprint=self.keypair.public.fingerprint(),
            is_ca=False,
            issuer_keypair=self.keypair,
        )
        return certificate, keypair

    def rollover_child(self, child: "CertificateAuthority") -> ResourceCertificate:
        """Start a staged key rollover for ``child`` (RFC 6489 step 1).

        Mints a fresh key pair for the child, re-signs its certificate
        (same subject, same resources, new serial) under this CA, and
        swaps the child's key pair and certificate in place.  The
        superseded certificate is *returned, not revoked*: a staged
        rollover keeps both keys valid while the child re-signs its
        products under the new key; the caller revokes the old serial
        (and withdraws the old publication point) once that completes.
        """
        if child not in self.children:
            raise IssuanceError(
                f"{child.name!r} is not a child of {self.name!r}"
            )
        old_certificate = child.certificate
        keypair = generate_keypair(
            self._rng.fork(
                f"ca-rollover:{child.name}:{old_certificate.serial}"
            ),
            bits=self._key_bits,
        )
        child.keypair = keypair
        child.certificate = _sign_certificate(
            subject=child.name,
            serial=next(self._serials),
            public_key=keypair.public,
            resources=old_certificate.resources,
            not_before=old_certificate.not_before,
            not_after=old_certificate.not_after,
            issuer_fingerprint=self.keypair.public.fingerprint(),
            is_ca=True,
            issuer_keypair=self.keypair,
        )
        return old_certificate

    def _peek_serial(self) -> int:
        # itertools.count has no peek; a fork label only needs to be unique
        # per issuance, so draw a label from the CA's own RNG instead.
        return self._rng.getrandbits(32)

    # -- revocation ------------------------------------------------------

    def revoke(self, serial: int) -> None:
        """Add a serial to this CA's revocation set."""
        self.revoked_serials.add(serial)

    def next_serial(self) -> int:
        """Expose serial allocation for ROA/manifest issuance helpers."""
        return next(self._serials)

    def __repr__(self) -> str:
        return f"<CertificateAuthority {self.name!r}>"
