"""Certificate Revocation Lists.

Each CA publishes one CRL at its publication point listing the serial
numbers of certificates it has revoked.  The relying party refuses any
certificate whose serial appears on its issuer's (valid) CRL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.crypto.digest import canonical_bytes, sha256_hex
from repro.crypto.rsa import sign, verify
from repro.rpki.cert import CertificateAuthority


@dataclass(frozen=True)
class CertificateRevocationList:
    """A signed list of revoked serial numbers."""

    issuer_fingerprint: str
    revoked_serials: FrozenSet[int]
    this_update: float
    next_update: float
    signature: int

    def tbs_bytes(self) -> bytes:
        return canonical_bytes(
            {
                "issuer": self.issuer_fingerprint,
                "revoked": sorted(self.revoked_serials),
                "this_update": self.this_update,
                "next_update": self.next_update,
            }
        )

    def object_hash(self) -> str:
        blob = self.tbs_bytes() + self.signature.to_bytes(
            (self.signature.bit_length() + 7) // 8 or 1, "big"
        )
        return sha256_hex(blob)

    def verify_signature(self, issuer_key) -> bool:
        return verify(self.tbs_bytes(), self.signature, issuer_key)

    def is_current(self, now: float) -> bool:
        return self.this_update <= now <= self.next_update

    def is_revoked(self, serial: int) -> bool:
        return serial in self.revoked_serials

    def __repr__(self) -> str:
        return (
            f"<CRL {self.issuer_fingerprint[:12]} "
            f"{len(self.revoked_serials)} revoked>"
        )


def issue_crl(
    ca: CertificateAuthority,
    this_update: float = 0.0,
    next_update: Optional[float] = None,
) -> CertificateRevocationList:
    """Sign a CRL covering the CA's current revocation set."""
    if next_update is None:
        next_update = ca.certificate.not_after
    unsigned = CertificateRevocationList(
        issuer_fingerprint=ca.keypair.public.fingerprint(),
        revoked_serials=frozenset(ca.revoked_serials),
        this_update=this_update,
        next_update=next_update,
        signature=0,
    )
    signature = sign(unsigned.tbs_bytes(), ca.keypair)
    return CertificateRevocationList(
        issuer_fingerprint=unsigned.issuer_fingerprint,
        revoked_serials=unsigned.revoked_serials,
        this_update=this_update,
        next_update=next_update,
        signature=signature,
    )
