"""Exception hierarchy for the RPKI substrate."""

from repro.errors import ReproError


class RPKIError(ReproError):
    """Base class for RPKI failures."""


class ValidationError(RPKIError):
    """An object failed relying-party validation."""


class IssuanceError(RPKIError):
    """A CA refused to issue an object (e.g. resources not held)."""
