"""Manifests (RFC 6486).

A manifest enumerates every object a CA currently publishes, with
their hashes, so a relying party can detect withheld or substituted
objects.  For simplicity the manifest is signed directly with the CA
key (the real encoding uses a one-time EE certificate like ROAs do;
the security property exercised here — detecting tampered publication
points — is identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.digest import canonical_bytes
from repro.crypto.rsa import sign, verify
from repro.rpki.cert import CertificateAuthority


@dataclass(frozen=True)
class Manifest:
    """A signed listing of published objects: name -> SHA-256 hash."""

    issuer_fingerprint: str
    manifest_number: int
    entries: Tuple[Tuple[str, str], ...]  # (object name, hex hash), sorted
    this_update: float
    next_update: float
    signature: int

    def tbs_bytes(self) -> bytes:
        return canonical_bytes(
            {
                "issuer": self.issuer_fingerprint,
                "number": self.manifest_number,
                "entries": [list(entry) for entry in self.entries],
                "this_update": self.this_update,
                "next_update": self.next_update,
            }
        )

    def verify_signature(self, issuer_key) -> bool:
        return verify(self.tbs_bytes(), self.signature, issuer_key)

    def is_current(self, now: float) -> bool:
        return self.this_update <= now <= self.next_update

    def listed_hash(self, name: str) -> Optional[str]:
        for entry_name, entry_hash in self.entries:
            if entry_name == name:
                return entry_hash
        return None

    def as_dict(self) -> Dict[str, str]:
        return dict(self.entries)

    def __repr__(self) -> str:
        return f"<Manifest #{self.manifest_number} {len(self.entries)} entries>"


def issue_manifest(
    ca: CertificateAuthority,
    entries: Dict[str, str],
    manifest_number: int = 1,
    this_update: float = 0.0,
    next_update: Optional[float] = None,
) -> Manifest:
    """Sign a manifest over ``entries`` (object name -> hex hash)."""
    if next_update is None:
        next_update = ca.certificate.not_after
    sorted_entries = tuple(sorted(entries.items()))
    unsigned = Manifest(
        issuer_fingerprint=ca.keypair.public.fingerprint(),
        manifest_number=manifest_number,
        entries=sorted_entries,
        this_update=this_update,
        next_update=next_update,
        signature=0,
    )
    signature = sign(unsigned.tbs_bytes(), ca.keypair)
    return Manifest(
        issuer_fingerprint=unsigned.issuer_fingerprint,
        manifest_number=manifest_number,
        entries=sorted_entries,
        this_update=this_update,
        next_update=next_update,
        signature=signature,
    )
