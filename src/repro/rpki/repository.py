"""RPKI repositories and publication points.

Every CA publishes its products — child CA certificates, ROAs, its
CRL, and a manifest — at a publication point.  A :class:`Repository`
aggregates the publication points of all CAs below the trust anchors,
which is what a relying party synchronises before validation (the
paper's step 4: "ROA data of all trust anchors ... are collected").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.crypto.digest import sha256_hex
from repro.rpki.cert import CertificateAuthority, ResourceCertificate
from repro.rpki.crl import CertificateRevocationList, issue_crl
from repro.rpki.manifest import Manifest, issue_manifest
from repro.rpki.roa import ROA


def certificate_hash(cert: ResourceCertificate) -> str:
    """Hash of a published certificate object (TBS plus signature)."""
    blob = cert.tbs_bytes() + cert.signature.to_bytes(
        (cert.signature.bit_length() + 7) // 8 or 1, "big"
    )
    return sha256_hex(blob)


class PublicationPoint:
    """The published products of one CA, addressed by object name."""

    def __init__(self, ca_fingerprint: str):
        self.ca_fingerprint = ca_fingerprint
        self.child_certificates: Dict[str, ResourceCertificate] = {}
        self.roas: Dict[str, ROA] = {}
        self.crl: Optional[CertificateRevocationList] = None
        self.manifest: Optional[Manifest] = None

    def add_certificate(self, name: str, cert: ResourceCertificate) -> None:
        self.child_certificates[name] = cert

    def add_roa(self, name: str, roa: ROA) -> None:
        self.roas[name] = roa

    def remove(self, name: str) -> bool:
        """Withdraw a published object by name (True when found)."""
        if name in self.child_certificates:
            del self.child_certificates[name]
            return True
        if name in self.roas:
            del self.roas[name]
            return True
        return False

    def object_hashes(self) -> Dict[str, str]:
        """Current hash listing for the manifest (CRL included)."""
        hashes = {
            name: certificate_hash(cert)
            for name, cert in self.child_certificates.items()
        }
        hashes.update({name: roa.object_hash() for name, roa in self.roas.items()})
        if self.crl is not None:
            hashes["crl.crl"] = self.crl.object_hash()
        return hashes

    def __repr__(self) -> str:
        return (
            f"<PublicationPoint {self.ca_fingerprint[:12]} "
            f"{len(self.child_certificates)} certs, {len(self.roas)} roas>"
        )


class Repository:
    """The global collection of publication points and TA certificates."""

    def __init__(self):
        self._points: Dict[str, PublicationPoint] = {}
        self.trust_anchor_certificates: Dict[str, ResourceCertificate] = {}

    def point_for(self, ca_fingerprint: str) -> PublicationPoint:
        """Get or create the publication point of a CA."""
        if ca_fingerprint not in self._points:
            self._points[ca_fingerprint] = PublicationPoint(ca_fingerprint)
        return self._points[ca_fingerprint]

    def lookup(self, ca_fingerprint: str) -> Optional[PublicationPoint]:
        return self._points.get(ca_fingerprint)

    def remove_point(self, ca_fingerprint: str) -> bool:
        """Withdraw a whole publication point (True when it existed).

        Completing a key rollover retires the old key's publication
        point; relying parties must no longer see its products.
        """
        return self._points.pop(ca_fingerprint, None) is not None

    def add_trust_anchor(self, cert: ResourceCertificate) -> None:
        self.trust_anchor_certificates[cert.fingerprint()] = cert

    def points(self) -> Iterator[PublicationPoint]:
        return iter(self._points.values())

    def iter_roas(self) -> Iterator[Tuple[str, ROA]]:
        """All published ROAs across every publication point."""
        for point in self._points.values():
            yield from point.roas.items()

    def roa_count(self) -> int:
        return sum(len(point.roas) for point in self._points.values())

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return f"<Repository {len(self._points)} publication points>"


def publish_ca_products(
    repository: Repository,
    ca: CertificateAuthority,
    roas: List[ROA] = (),
    now: float = 0.0,
    manifest_number: int = 1,
) -> PublicationPoint:
    """Publish a CA's children, ROAs, CRL, and a fresh manifest.

    Child CA certificates already attached to ``ca`` are published
    automatically; call again after issuing more products to refresh
    the manifest.
    """
    point = repository.point_for(ca.keypair.public.fingerprint())
    for child in ca.children:
        point.add_certificate(f"{child.name}.cer", child.certificate)
    for index, roa in enumerate(roas):
        point.add_roa(f"roa-{int(roa.as_id)}-{index}.roa", roa)
    point.crl = issue_crl(ca, this_update=now)
    point.manifest = issue_manifest(
        ca, point.object_hashes(), manifest_number=manifest_number, this_update=now
    )
    return point
