"""RFC 3779-style number resource sets.

A :class:`ResourceSet` holds IP prefixes and AS number ranges.  The
validator uses :meth:`ResourceSet.covers` to enforce the RPKI
containment rule: a certificate must not claim resources its issuer
does not hold, and a ROA's prefixes must be covered by its EE
certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.net import ASN, Prefix


@dataclass(frozen=True, order=True)
class ASNRange:
    """An inclusive range of AS numbers."""

    low: ASN
    high: ASN

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"inverted ASN range: {self.low}..{self.high}")

    @classmethod
    def single(cls, asn: Union[int, ASN]) -> "ASNRange":
        asn = ASN(asn)
        return cls(asn, asn)

    def contains(self, asn: Union[int, ASN]) -> bool:
        return self.low <= int(asn) <= self.high

    def covers(self, other: "ASNRange") -> bool:
        return self.low <= other.low and other.high <= self.high

    def __str__(self) -> str:
        if self.low == self.high:
            return str(self.low)
        return f"{self.low}-AS{int(self.high)}"


class ResourceSet:
    """An immutable collection of prefixes and ASN ranges."""

    __slots__ = ("_prefixes", "_asn_ranges")

    def __init__(
        self,
        prefixes: Iterable[Prefix] = (),
        asn_ranges: Iterable[ASNRange] = (),
    ):
        self._prefixes: Tuple[Prefix, ...] = tuple(sorted(set(prefixes)))
        self._asn_ranges: Tuple[ASNRange, ...] = tuple(sorted(set(asn_ranges)))

    @classmethod
    def from_strings(
        cls,
        prefixes: Iterable[str] = (),
        asns: Iterable[Union[int, str]] = (),
    ) -> "ResourceSet":
        """Build from prefix literals and single AS numbers."""
        parsed_prefixes = [Prefix.parse(text) for text in prefixes]
        ranges = []
        for asn in asns:
            if isinstance(asn, str) and "-" in asn:
                low_text, high_text = asn.split("-", 1)
                ranges.append(
                    ASNRange(ASN(int(low_text)), ASN(int(high_text)))
                )
            else:
                ranges.append(ASNRange.single(int(asn)))
        return cls(parsed_prefixes, ranges)

    @classmethod
    def all_resources(cls) -> "ResourceSet":
        """The full number space — held by trust anchors."""
        return cls(
            [Prefix.parse("0.0.0.0/0"), Prefix.parse("::/0")],
            [ASNRange(ASN(0), ASN((1 << 32) - 1))],
        )

    @property
    def prefixes(self) -> Tuple[Prefix, ...]:
        return self._prefixes

    @property
    def asn_ranges(self) -> Tuple[ASNRange, ...]:
        return self._asn_ranges

    def is_empty(self) -> bool:
        return not self._prefixes and not self._asn_ranges

    def covers_prefix(self, prefix: Prefix) -> bool:
        """True when some held prefix covers ``prefix``."""
        return any(held.covers(prefix) for held in self._prefixes)

    def covers_asn(self, asn: Union[int, ASN]) -> bool:
        return any(held.contains(asn) for held in self._asn_ranges)

    def covers(self, other: "ResourceSet") -> bool:
        """RFC 3779 containment: every resource of ``other`` is held."""
        for prefix in other._prefixes:
            if not self.covers_prefix(prefix):
                return False
        for rng in other._asn_ranges:
            if not any(held.covers(rng) for held in self._asn_ranges):
                return False
        return True

    def union(self, other: "ResourceSet") -> "ResourceSet":
        return ResourceSet(
            self._prefixes + other._prefixes,
            self._asn_ranges + other._asn_ranges,
        )

    def with_prefixes(self, prefixes: Iterable[Prefix]) -> "ResourceSet":
        return ResourceSet(self._prefixes + tuple(prefixes), self._asn_ranges)

    def with_asns(self, asns: Iterable[Union[int, ASN]]) -> "ResourceSet":
        new_ranges = tuple(ASNRange.single(asn) for asn in asns)
        return ResourceSet(self._prefixes, self._asn_ranges + new_ranges)

    def iter_asns(self, limit: int = 1 << 20) -> Iterator[ASN]:
        """Iterate individual ASNs (guarded against huge ranges)."""
        count = sum(int(r.high) - int(r.low) + 1 for r in self._asn_ranges)
        if count > limit:
            raise ValueError(f"refusing to iterate {count} ASNs (limit {limit})")
        for rng in self._asn_ranges:
            for value in range(int(rng.low), int(rng.high) + 1):
                yield ASN(value)

    def to_dict(self) -> Dict[str, List]:
        """Canonical serialisable form (used in signed payloads)."""
        return {
            "prefixes": [str(p) for p in self._prefixes],
            "asns": [[int(r.low), int(r.high)] for r in self._asn_ranges],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, List]) -> "ResourceSet":
        prefixes = [Prefix.parse(text) for text in data.get("prefixes", [])]
        ranges = [
            ASNRange(ASN(low), ASN(high)) for low, high in data.get("asns", [])
        ]
        return cls(prefixes, ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceSet):
            return NotImplemented
        return (
            self._prefixes == other._prefixes
            and self._asn_ranges == other._asn_ranges
        )

    def __hash__(self) -> int:
        return hash((self._prefixes, self._asn_ranges))

    def __repr__(self) -> str:
        return (
            f"<ResourceSet {len(self._prefixes)} prefixes, "
            f"{len(self._asn_ranges)} ASN ranges>"
        )

    def __str__(self) -> str:
        parts = [str(p) for p in self._prefixes]
        parts += [str(r) for r in self._asn_ranges]
        return "{" + ", ".join(parts) + "}"
