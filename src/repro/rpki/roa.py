"""Route Origin Authorizations (RFC 6482).

A ROA binds one origin AS number to a list of prefixes, each with an
optional ``maxLength``.  The payload is signed with a one-time EE key
whose certificate covers exactly the ROA's prefixes; the EE
certificate travels with the ROA (as in the real CMS encoding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.crypto.digest import canonical_bytes, sha256_hex
from repro.crypto.rsa import sign, verify
from repro.net import ASN, Prefix
from repro.rpki.cert import CertificateAuthority, ResourceCertificate
from repro.rpki.errors import IssuanceError
from repro.rpki.resources import ResourceSet


@dataclass(frozen=True)
class ROAPrefix:
    """One prefix entry of a ROA, with its effective maxLength."""

    prefix: Prefix
    max_length: int

    def __post_init__(self):
        if not self.prefix.length <= self.max_length <= self.prefix.bits:
            raise ValueError(
                f"maxLength {self.max_length} outside "
                f"[{self.prefix.length}, {self.prefix.bits}] for {self.prefix}"
            )

    @classmethod
    def make(
        cls, prefix: Union[str, Prefix], max_length: Optional[int] = None
    ) -> "ROAPrefix":
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        # Absent maxLength means "exactly the prefix length" (RFC 6482).
        return cls(prefix, prefix.length if max_length is None else max_length)

    def __str__(self) -> str:
        return f"{self.prefix}-{self.max_length}"


@dataclass(frozen=True)
class ROA:
    """A signed Route Origin Authorization."""

    as_id: ASN
    prefixes: Tuple[ROAPrefix, ...]
    ee_certificate: ResourceCertificate
    signature: int

    def payload_bytes(self) -> bytes:
        """The signed ROA payload (eContent)."""
        return canonical_bytes(
            {
                "asID": int(self.as_id),
                "prefixes": [
                    [str(entry.prefix), entry.max_length] for entry in self.prefixes
                ],
                "ee": self.ee_certificate.fingerprint(),
            }
        )

    def object_hash(self) -> str:
        """Hash over the full object, for manifest listings."""
        blob = self.payload_bytes() + self.ee_certificate.tbs_bytes()
        blob += self.signature.to_bytes((self.signature.bit_length() + 7) // 8 or 1, "big")
        return sha256_hex(blob)

    def verify_payload_signature(self) -> bool:
        """Check the payload signature against the embedded EE key."""
        return verify(self.payload_bytes(), self.signature, self.ee_certificate.public_key)

    def prefix_resources(self) -> ResourceSet:
        """The resources the EE certificate must cover."""
        return ResourceSet(prefixes=[entry.prefix for entry in self.prefixes])

    def __repr__(self) -> str:
        entries = ", ".join(str(entry) for entry in self.prefixes)
        return f"<ROA {self.as_id} [{entries}]>"


def issue_roa(
    ca: CertificateAuthority,
    as_id: Union[int, ASN],
    prefixes: Sequence[Union[str, Prefix, ROAPrefix, Tuple[Union[str, Prefix], int]]],
    not_before: Optional[float] = None,
    not_after: Optional[float] = None,
    enforce_coverage: bool = True,
) -> ROA:
    """Issue a ROA under ``ca``.

    ``prefixes`` entries may be prefix literals, :class:`Prefix`
    objects, ``(prefix, max_length)`` pairs, or ready
    :class:`ROAPrefix` instances.  The authorized ``as_id`` does *not*
    need to be held by the CA — authorizing a foreign origin AS is
    exactly the business-relation disclosure the paper discusses in
    Section 5.2 — but the prefixes do.
    """
    entries = []
    for item in prefixes:
        if isinstance(item, ROAPrefix):
            entries.append(item)
        elif isinstance(item, tuple):
            entries.append(ROAPrefix.make(item[0], item[1]))
        else:
            entries.append(ROAPrefix.make(item))
    if not entries:
        raise IssuanceError("a ROA needs at least one prefix")

    resources = ResourceSet(prefixes=[entry.prefix for entry in entries])
    ee_cert, ee_key = ca.issue_ee_certificate(
        subject=f"ROA-EE:{ca.name}:AS{int(as_id)}",
        resources=resources,
        not_before=not_before,
        not_after=not_after,
        enforce_coverage=enforce_coverage,
    )
    unsigned = ROA(
        as_id=ASN(as_id),
        prefixes=tuple(entries),
        ee_certificate=ee_cert,
        signature=0,
    )
    signature = sign(unsigned.payload_bytes(), ee_key)
    return ROA(
        as_id=ASN(as_id),
        prefixes=tuple(entries),
        ee_certificate=ee_cert,
        signature=signature,
    )
