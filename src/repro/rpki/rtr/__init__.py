"""RPKI-to-Router (RTR) protocol, RFC 8210.

How validated ROA payloads actually reach BGP routers: a relying
party exposes its VRP set through an RTR cache server; routers run an
RTR client that synchronises a local copy (full sync via Reset Query,
incremental via Serial Query) and feed it to origin validation.

The paper cites RTRlib [31] — the authors' own open-source RTR
client — as part of the measurement/deployment toolchain; this
package provides a wire-faithful Python implementation: binary PDU
encoding, a serial-diff cache server, and a router-side client.
"""

from repro.errors import ReproError
from repro.rpki.rtr.cache import RTRCache, Session, SessionState
from repro.rpki.rtr.client import RTRClient
from repro.rpki.rtr.errors import RTRError, RTRProtocolError
from repro.rpki.rtr.pdus import (
    CacheResetPDU,
    CacheResponsePDU,
    EndOfDataPDU,
    ErrorCode,
    ErrorReportPDU,
    IPv4PrefixPDU,
    IPv6PrefixPDU,
    PDU,
    PduType,
    ResetQueryPDU,
    SerialNotifyPDU,
    SerialQueryPDU,
    decode_pdu,
    decode_stream,
)
from repro.rpki.rtr.transport import InMemoryTransport, TransportPair

__all__ = [
    "CacheResetPDU",
    "CacheResponsePDU",
    "EndOfDataPDU",
    "ErrorCode",
    "ErrorReportPDU",
    "IPv4PrefixPDU",
    "IPv6PrefixPDU",
    "InMemoryTransport",
    "PDU",
    "PduType",
    "RTRCache",
    "RTRClient",
    "ReproError",
    "RTRError",
    "RTRProtocolError",
    "ResetQueryPDU",
    "SerialNotifyPDU",
    "SerialQueryPDU",
    "Session",
    "SessionState",
    "TransportPair",
    "decode_pdu",
    "decode_stream",
]
