"""RTR cache server (the relying-party side).

Holds the current VRP snapshot plus a bounded history of serial diffs
so routers can synchronise incrementally.  Updating the cache with a
new snapshot computes announce/withdraw diffs automatically; a reload
that changes nothing keeps the serial (and the routers) untouched.

Connection state is explicit: every connected router owns a
:class:`Session` (id, receive buffer, per-direction accounting, a
small state machine), created by :meth:`RTRCache.register` and torn
down by :meth:`RTRCache.unregister`.  Sessions are keyed by the
session object itself — never by ``id(transport)``, whose values are
recycled after garbage collection and would let a new router inherit
a dead session's partial frame.

Per RFC 8210 an Error Report is fatal to the session: a decode error
(or a protocol violation) quarantines the session — buffered bytes
are untrusted once framing is lost — until a frame-aligned Reset
Query arrives, which models the router reconnecting and starting
over.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.rpki.rtr.errors import RTRProtocolError
from repro.rpki.rtr.pdus import (
    FLAG_ANNOUNCE,
    FLAG_WITHDRAW,
    CacheResetPDU,
    CacheResponsePDU,
    EndOfDataPDU,
    ErrorCode,
    ErrorReportPDU,
    PDU,
    ResetQueryPDU,
    SerialNotifyPDU,
    SerialQueryPDU,
    decode_stream,
    prefix_pdu,
)
from repro.obs.runtime import metrics
from repro.rpki.rtr.transport import InMemoryTransport
from repro.rpki.vrp import VRP


def _vrp_key(vrp: VRP) -> Tuple:
    return (vrp.prefix, vrp.max_length, int(vrp.asn))


class SessionState(enum.Enum):
    ACTIVE = "active"
    QUARANTINED = "quarantined"
    CLOSED = "closed"


class Session:
    """Cache-side state of one connected router.

    ``reported_serial`` is the serial the router last acknowledged
    owning (via Serial Query); ``served_serial`` is the serial of the
    last End of Data we sent it; ``notified_serial`` de-duplicates
    Serial Notify pushes.  The byte counters split response traffic
    into snapshot vs diff payloads so the delta-vs-snapshot saving is
    measurable per session.
    """

    __slots__ = (
        "sid",
        "transport",
        "buffer",
        "state",
        "reported_serial",
        "served_serial",
        "notified_serial",
        "snapshot_bytes_sent",
        "diff_bytes_sent",
        "snapshots_sent",
        "diffs_sent",
        "resets_sent",
        "errors_sent",
    )

    def __init__(self, sid: int, transport: InMemoryTransport):
        self.sid = sid
        self.transport = transport
        self.buffer = b""
        self.state = SessionState.ACTIVE
        self.reported_serial: Optional[int] = None
        self.served_serial: Optional[int] = None
        self.notified_serial: Optional[int] = None
        self.snapshot_bytes_sent = 0
        self.diff_bytes_sent = 0
        self.snapshots_sent = 0
        self.diffs_sent = 0
        self.resets_sent = 0
        self.errors_sent = 0

    @property
    def synchronized(self) -> bool:
        """The router has committed at least one End of Data."""
        return (
            self.state is SessionState.ACTIVE
            and self.served_serial is not None
        )

    @property
    def bytes_sent(self) -> int:
        return self.snapshot_bytes_sent + self.diff_bytes_sent

    def __repr__(self) -> str:
        return (
            f"<Session {self.sid} {self.state.value} "
            f"served={self.served_serial}>"
        )


class RTRCache:
    """A cache server speaking RTR over per-session transports."""

    def __init__(
        self,
        session_id: int = 1,
        history_limit: int = 16,
        refresh_interval: int = 3600,
    ):
        self.session_id = session_id
        self.serial = 0
        self._current: Dict[Tuple, VRP] = {}
        # serial -> (announced, withdrawn) leading *to* that serial.
        self._diffs: Dict[int, Tuple[List[VRP], List[VRP]]] = {}
        self._history_limit = history_limit
        self._refresh_interval = refresh_interval
        self._sid_counter = itertools.count(1)
        self._sessions: Dict[int, Session] = {}
        # Transport -> session, keyed by object identity while the
        # session lives (the strong reference is what makes the key
        # stable; ``id()`` alone is recycled after collection).
        self._by_transport: Dict[InMemoryTransport, Session] = {}
        # Encoded-response caches, invalidated whenever the serial
        # moves: with thousands of sessions the same snapshot/diff is
        # served many times, so each is encoded once per serial.
        self._snapshot_frame: Optional[bytes] = None
        self._diff_frames: Dict[int, bytes] = {}

    # -- data management ---------------------------------------------------

    def load(self, payloads: Iterable[VRP]) -> Tuple[int, int]:
        """Install a new VRP snapshot; returns (announced, withdrawn).

        A no-change reload in steady state keeps the serial, records
        no diff, and bumps no counter — a refresh loop that re-derives
        the same world must not wake every connected router with a
        notify followed by an empty diff.  The very first load always
        advances (even when empty) so routers can End-of-Data against
        something.
        """
        new: Dict[Tuple, VRP] = {_vrp_key(v): v for v in payloads}
        announced = [v for key, v in new.items() if key not in self._current]
        withdrawn = [
            v for key, v in self._current.items() if key not in new
        ]
        self._current = new
        if self.serial > 0 and not announced and not withdrawn:
            return 0, 0
        self.serial += 1
        self._diffs[self.serial] = (announced, withdrawn)
        while len(self._diffs) > self._history_limit:
            del self._diffs[min(self._diffs)]
        self._snapshot_frame = None
        self._diff_frames.clear()
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_serial_advances_total",
                "Snapshot loads that advanced the cache serial",
            ).inc()
            counters.counter(
                "ripki_rtr_cache_vrp_changes_total",
                "VRPs announced/withdrawn across snapshot loads",
                labelnames=("change",),
            ).labels(change="announce").inc(len(announced))
            counters.counter(
                "ripki_rtr_cache_vrp_changes_total",
                "VRPs announced/withdrawn across snapshot loads",
                labelnames=("change",),
            ).labels(change="withdraw").inc(len(withdrawn))
            counters.gauge(
                "ripki_rtr_cache_vrps", "VRPs in the cache's current snapshot"
            ).set(len(self._current))
            counters.gauge(
                "ripki_rtr_cache_serial", "The cache's current serial"
            ).set(self.serial)
        return len(announced), len(withdrawn)

    def vrps(self) -> List[VRP]:
        return list(self._current.values())

    def can_diff_from(self, serial: int) -> bool:
        """True when every diff after ``serial`` is still in history."""
        if serial == self.serial:
            return True
        needed = range(serial + 1, self.serial + 1)
        return bool(needed) and all(s in self._diffs for s in needed)

    # -- session lifecycle -------------------------------------------------

    def register(self, transport: InMemoryTransport) -> Session:
        """Open a session for a router connection (idempotent)."""
        existing = self._by_transport.get(transport)
        if existing is not None:
            return existing
        session = Session(next(self._sid_counter), transport)
        self._sessions[session.sid] = session
        self._by_transport[transport] = session
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_sessions_opened_total",
                "Router sessions registered with the cache",
            ).inc()
            self._set_session_gauge(counters)
        return session

    def unregister(self, session: Session) -> None:
        """Tear a session down, evicting every per-session buffer."""
        if session.state is SessionState.CLOSED:
            return
        session.state = SessionState.CLOSED
        session.buffer = b""
        self._sessions.pop(session.sid, None)
        self._by_transport.pop(session.transport, None)
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_sessions_closed_total",
                "Router sessions torn down (buffers evicted)",
            ).inc()
            self._set_session_gauge(counters)

    def sessions(self) -> List[Session]:
        return list(self._sessions.values())

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def session_for(
        self, transport: InMemoryTransport
    ) -> Optional[Session]:
        return self._by_transport.get(transport)

    def _set_session_gauge(self, counters) -> None:
        counters.gauge(
            "ripki_rtr_cache_sessions", "Currently registered router sessions"
        ).set(len(self._sessions))

    # -- protocol ------------------------------------------------------------

    def notify(self, transport: InMemoryTransport) -> None:
        """Push a Serial Notify (new data available) to a router."""
        session = self._by_transport.get(transport)
        if session is not None:
            self.notify_session(session)
        else:
            transport.send(
                SerialNotifyPDU(self.session_id, self.serial).encode()
            )

    def notify_session(self, session: Session) -> bool:
        """Serial-Notify one session; False when suppressed.

        Quarantined/closed sessions are skipped (the router must
        resync first), and a session already notified at this serial
        is not poked again.
        """
        if session.state is not SessionState.ACTIVE:
            return False
        if session.notified_serial == self.serial:
            return False
        session.transport.send(
            SerialNotifyPDU(self.session_id, self.serial).encode()
        )
        session.notified_serial = self.serial
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_notifies_sent_total",
                "Serial Notify PDUs pushed to router sessions",
            ).inc()
        return True

    def serve(self, transport: InMemoryTransport) -> None:
        """Process every pending router query on ``transport``.

        Auto-registers a session on first contact; long-lived callers
        use :meth:`register`/:meth:`serve_session`/:meth:`unregister`
        directly.
        """
        self.serve_session(self.register(transport))

    def serve_session(self, session: Session) -> None:
        """Process every pending query on one session."""
        if session.state is SessionState.CLOSED:
            return
        data = session.transport.receive()
        if session.state is SessionState.QUARANTINED:
            self._try_revive(session, data)
            return
        buffer = session.buffer + data
        try:
            pdus, remainder = decode_stream(buffer)
        except RTRProtocolError as error:
            self._quarantine(
                session, ErrorCode(error.error_code), str(error)
            )
            return
        session.buffer = remainder
        for pdu in pdus:
            self._handle(pdu, session)
            if session.state is not SessionState.ACTIVE:
                break  # RFC 8210: an Error Report ends the exchange

    def _try_revive(self, session: Session, data: bytes) -> None:
        """Quarantine exit: only a frame-aligned Reset Query counts.

        Once framing is lost, buffered bytes are untrusted — anything
        that is not a cleanly-decodable stream starting with a Reset
        Query is dropped on the floor, exactly as a closed TCP
        connection would drop it.
        """
        if not data:
            return
        try:
            pdus, remainder = decode_stream(data)
        except RTRProtocolError:
            return
        if not pdus or not isinstance(pdus[0], ResetQueryPDU):
            return
        session.state = SessionState.ACTIVE
        session.buffer = remainder
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_sessions_revived_total",
                "Quarantined sessions revived by a fresh Reset Query",
            ).inc()
        for pdu in pdus:
            self._handle(pdu, session)
            if session.state is not SessionState.ACTIVE:
                break

    def _quarantine(
        self,
        session: Session,
        code: ErrorCode,
        message: str,
        erroneous: bytes = b"",
        reply: bool = True,
    ) -> None:
        """Fatal error: report it (once) and park the session."""
        if reply:
            session.transport.send(
                ErrorReportPDU(code, erroneous, message).encode()
            )
            session.errors_sent += 1
        session.state = SessionState.QUARANTINED
        session.buffer = b""
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_sessions_quarantined_total",
                "Sessions parked after a fatal protocol error",
                labelnames=("code",),
            ).labels(code=code.name.lower()).inc()

    def _handle(self, pdu: PDU, session: Session) -> None:
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_queries_total",
                "Router queries served, by PDU type",
                labelnames=("type",),
            ).labels(type=type(pdu).__name__).inc()
        if isinstance(pdu, ResetQueryPDU):
            self._send_snapshot(session)
        elif isinstance(pdu, SerialQueryPDU):
            session.reported_serial = pdu.serial
            if pdu.session_id != self.session_id:
                self._count_reset(counters)
                session.resets_sent += 1
                session.transport.send(CacheResetPDU().encode())
            elif not self.can_diff_from(pdu.serial):
                self._count_reset(counters)
                session.resets_sent += 1
                session.transport.send(CacheResetPDU().encode())
            else:
                self._send_diff(session, pdu.serial)
        elif isinstance(pdu, ErrorReportPDU):
            # The router reported a fatal error: its session is dead
            # on their side too.  Never answer an error with an error.
            self._quarantine(
                session,
                pdu.error_code,
                pdu.error_text,
                reply=False,
            )
        else:
            self._quarantine(
                session,
                ErrorCode.INVALID_REQUEST,
                f"unexpected {type(pdu).__name__} at cache",
                erroneous=pdu.encode(),
            )

    @staticmethod
    def _count_reset(counters) -> None:
        counters.counter(
            "ripki_rtr_cache_resets_sent_total",
            "Cache Reset PDUs sent (router must full-resync)",
        ).inc()

    # -- responses -----------------------------------------------------------

    def snapshot_frame(self) -> bytes:
        """The full snapshot response, encoded once per serial."""
        if self._snapshot_frame is None:
            out = bytearray(CacheResponsePDU(self.session_id).encode())
            for vrp in self._current.values():
                out += prefix_pdu(FLAG_ANNOUNCE, vrp).encode()
            out += EndOfDataPDU(
                self.session_id, self.serial, self._refresh_interval
            ).encode()
            self._snapshot_frame = bytes(out)
        return self._snapshot_frame

    def diff_frame(self, since: int) -> bytes:
        """The incremental response from ``since``, encoded once."""
        frame = self._diff_frames.get(since)
        if frame is None:
            out = bytearray(CacheResponsePDU(self.session_id).encode())
            for serial in range(since + 1, self.serial + 1):
                announced, withdrawn = self._diffs[serial]
                for vrp in announced:
                    out += prefix_pdu(FLAG_ANNOUNCE, vrp).encode()
                for vrp in withdrawn:
                    out += prefix_pdu(FLAG_WITHDRAW, vrp).encode()
            out += EndOfDataPDU(
                self.session_id, self.serial, self._refresh_interval
            ).encode()
            frame = bytes(out)
            self._diff_frames[since] = frame
        return frame

    def _send_snapshot(self, session: Session) -> None:
        metrics().counter(
            "ripki_rtr_cache_snapshots_sent_total",
            "Full snapshot responses served",
        ).inc()
        frame = self.snapshot_frame()
        session.transport.send(frame)
        session.snapshot_bytes_sent += len(frame)
        session.snapshots_sent += 1
        session.served_serial = self.serial

    def _send_diff(self, session: Session, since: int) -> None:
        metrics().counter(
            "ripki_rtr_cache_diffs_sent_total",
            "Incremental diff responses served",
        ).inc()
        frame = self.diff_frame(since)
        session.transport.send(frame)
        session.diff_bytes_sent += len(frame)
        session.diffs_sent += 1
        session.served_serial = self.serial

    def __repr__(self) -> str:
        return (
            f"<RTRCache session={self.session_id} serial={self.serial} "
            f"{len(self._current)} VRPs, {len(self._sessions)} sessions>"
        )
