"""RTR cache server (the relying-party side).

Holds the current VRP snapshot plus a bounded history of serial diffs
so routers can synchronise incrementally.  Updating the cache with a
new snapshot computes announce/withdraw diffs automatically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.rpki.rtr.errors import RTRProtocolError
from repro.rpki.rtr.pdus import (
    FLAG_ANNOUNCE,
    FLAG_WITHDRAW,
    CacheResetPDU,
    CacheResponsePDU,
    EndOfDataPDU,
    ErrorCode,
    ErrorReportPDU,
    PDU,
    ResetQueryPDU,
    SerialNotifyPDU,
    SerialQueryPDU,
    decode_stream,
    prefix_pdu,
)
from repro.obs.runtime import metrics
from repro.rpki.rtr.transport import InMemoryTransport
from repro.rpki.vrp import VRP, ValidatedPayloads


def _vrp_key(vrp: VRP) -> Tuple:
    return (vrp.prefix, vrp.max_length, int(vrp.asn))


class RTRCache:
    """A cache server speaking RTR over a transport."""

    def __init__(
        self,
        session_id: int = 1,
        history_limit: int = 16,
        refresh_interval: int = 3600,
    ):
        self.session_id = session_id
        self.serial = 0
        self._current: Dict[Tuple, VRP] = {}
        # serial -> (announced, withdrawn) leading *to* that serial.
        self._diffs: Dict[int, Tuple[List[VRP], List[VRP]]] = {}
        self._history_limit = history_limit
        self._refresh_interval = refresh_interval
        self._buffers: Dict[int, bytes] = {}

    # -- data management ---------------------------------------------------

    def load(self, payloads: Iterable[VRP]) -> Tuple[int, int]:
        """Install a new VRP snapshot; returns (announced, withdrawn)."""
        new: Dict[Tuple, VRP] = {_vrp_key(v): v for v in payloads}
        announced = [v for key, v in new.items() if key not in self._current]
        withdrawn = [
            v for key, v in self._current.items() if key not in new
        ]
        self._current = new
        if self.serial == 0 and not announced and not withdrawn:
            # First load of an empty set still advances the serial so
            # routers can End-of-Data against something.
            pass
        self.serial += 1
        self._diffs[self.serial] = (announced, withdrawn)
        while len(self._diffs) > self._history_limit:
            del self._diffs[min(self._diffs)]
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_serial_advances_total",
                "Snapshot loads that advanced the cache serial",
            ).inc()
            counters.counter(
                "ripki_rtr_cache_vrp_changes_total",
                "VRPs announced/withdrawn across snapshot loads",
                labelnames=("change",),
            ).labels(change="announce").inc(len(announced))
            counters.counter(
                "ripki_rtr_cache_vrp_changes_total",
                "VRPs announced/withdrawn across snapshot loads",
                labelnames=("change",),
            ).labels(change="withdraw").inc(len(withdrawn))
            counters.gauge(
                "ripki_rtr_cache_vrps", "VRPs in the cache's current snapshot"
            ).set(len(self._current))
            counters.gauge(
                "ripki_rtr_cache_serial", "The cache's current serial"
            ).set(self.serial)
        return len(announced), len(withdrawn)

    def vrps(self) -> List[VRP]:
        return list(self._current.values())

    def can_diff_from(self, serial: int) -> bool:
        """True when every diff after ``serial`` is still in history."""
        if serial == self.serial:
            return True
        needed = range(serial + 1, self.serial + 1)
        return bool(needed) and all(s in self._diffs for s in needed)

    # -- protocol ------------------------------------------------------------

    def notify(self, transport: InMemoryTransport) -> None:
        """Push a Serial Notify (new data available) to a router."""
        transport.send(SerialNotifyPDU(self.session_id, self.serial).encode())

    def serve(self, transport: InMemoryTransport) -> None:
        """Process every pending router query on ``transport``."""
        key = id(transport)
        buffer = self._buffers.get(key, b"") + transport.receive()
        try:
            pdus, remainder = decode_stream(buffer)
        except RTRProtocolError as error:
            transport.send(
                ErrorReportPDU(
                    ErrorCode(error.error_code), b"", str(error)
                ).encode()
            )
            self._buffers[key] = b""
            return
        self._buffers[key] = remainder
        for pdu in pdus:
            self._handle(pdu, transport)

    def _handle(self, pdu: PDU, transport: InMemoryTransport) -> None:
        counters = metrics()
        if counters.enabled:
            counters.counter(
                "ripki_rtr_cache_queries_total",
                "Router queries served, by PDU type",
                labelnames=("type",),
            ).labels(type=type(pdu).__name__).inc()
        if isinstance(pdu, ResetQueryPDU):
            self._send_snapshot(transport)
        elif isinstance(pdu, SerialQueryPDU):
            if pdu.session_id != self.session_id:
                self._count_reset(counters)
                transport.send(CacheResetPDU().encode())
            elif not self.can_diff_from(pdu.serial):
                self._count_reset(counters)
                transport.send(CacheResetPDU().encode())
            else:
                self._send_diff(transport, pdu.serial)
        elif isinstance(pdu, ErrorReportPDU):
            pass  # router gave up; nothing to do for an in-memory peer
        else:
            transport.send(
                ErrorReportPDU(
                    ErrorCode.INVALID_REQUEST,
                    pdu.encode(),
                    f"unexpected {type(pdu).__name__} at cache",
                ).encode()
            )

    @staticmethod
    def _count_reset(counters) -> None:
        counters.counter(
            "ripki_rtr_cache_resets_sent_total",
            "Cache Reset PDUs sent (router must full-resync)",
        ).inc()

    def _send_snapshot(self, transport: InMemoryTransport) -> None:
        metrics().counter(
            "ripki_rtr_cache_snapshots_sent_total",
            "Full snapshot responses served",
        ).inc()
        out = bytearray(CacheResponsePDU(self.session_id).encode())
        for vrp in self._current.values():
            out += prefix_pdu(FLAG_ANNOUNCE, vrp).encode()
        out += EndOfDataPDU(
            self.session_id, self.serial, self._refresh_interval
        ).encode()
        transport.send(bytes(out))

    def _send_diff(self, transport: InMemoryTransport, since: int) -> None:
        metrics().counter(
            "ripki_rtr_cache_diffs_sent_total",
            "Incremental diff responses served",
        ).inc()
        out = bytearray(CacheResponsePDU(self.session_id).encode())
        for serial in range(since + 1, self.serial + 1):
            announced, withdrawn = self._diffs[serial]
            for vrp in announced:
                out += prefix_pdu(FLAG_ANNOUNCE, vrp).encode()
            for vrp in withdrawn:
                out += prefix_pdu(FLAG_WITHDRAW, vrp).encode()
        out += EndOfDataPDU(
            self.session_id, self.serial, self._refresh_interval
        ).encode()
        transport.send(bytes(out))

    def __repr__(self) -> str:
        return (
            f"<RTRCache session={self.session_id} serial={self.serial} "
            f"{len(self._current)} VRPs>"
        )
