"""RTR client (the router side).

Maintains a local VRP table synchronised from a cache: Reset Query on
first contact or after a Cache Reset, Serial Query after a Serial
Notify.  The table is exposed as a
:class:`~repro.rpki.vrp.ValidatedPayloads` so a BGP speaker can run
RFC 6811 origin validation directly against it.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.rpki.rtr.errors import RTRProtocolError
from repro.rpki.rtr.pdus import (
    FLAG_ANNOUNCE,
    CacheResetPDU,
    CacheResponsePDU,
    EndOfDataPDU,
    ErrorCode,
    ErrorReportPDU,
    IPv4PrefixPDU,
    IPv6PrefixPDU,
    PDU,
    ResetQueryPDU,
    SerialNotifyPDU,
    SerialQueryPDU,
    decode_stream,
)
from repro.obs.runtime import metrics
from repro.rpki.rtr.transport import InMemoryTransport
from repro.rpki.vrp import VRP, ValidatedPayloads


def _pdu_counter():
    return metrics().counter(
        "ripki_rtr_client_pdus_total",
        "PDUs handled by the router side, by type",
        labelnames=("type",),
    )


class ClientState(enum.Enum):
    DISCONNECTED = "disconnected"
    SYNCING = "syncing"
    SYNCHRONISED = "synchronised"
    ERROR = "error"


class RTRClient:
    """A router-side RTR endpoint over one transport."""

    def __init__(self, transport: InMemoryTransport, trust_anchor: str = "rtr"):
        self._transport = transport
        self._trust_anchor = trust_anchor
        self._buffer = b""
        self._table: Dict[Tuple, VRP] = {}
        self._pending: Optional[Dict[Tuple, VRP]] = None
        self.state = ClientState.DISCONNECTED
        self.session_id: Optional[int] = None
        self.serial: Optional[int] = None
        self.refresh_interval: Optional[int] = None
        self.last_error: Optional[ErrorReportPDU] = None

    # -- queries ---------------------------------------------------------

    def start(self) -> None:
        """Initial synchronisation: full snapshot via Reset Query.

        The state transition precedes the send: a fault-injected
        transport may raise mid-query, and the session must already
        read as SYNCING (query outstanding) rather than stale.
        """
        self.state = ClientState.SYNCING
        self._transport.send(ResetQueryPDU().encode())

    def refresh(self) -> None:
        """Incremental synchronisation from the last known serial."""
        if self.session_id is None or self.serial is None:
            self.start()
            return
        self.state = ClientState.SYNCING
        self._transport.send(
            SerialQueryPDU(self.session_id, self.serial).encode()
        )

    # -- event pump --------------------------------------------------------

    def poll(self) -> None:
        """Consume every PDU the cache has queued for us."""
        self._buffer += self._transport.receive()
        try:
            pdus, self._buffer = decode_stream(self._buffer)
        except RTRProtocolError as error:
            self._fail(ErrorCode(error.error_code), str(error))
            return
        for pdu in pdus:
            self._handle(pdu)
            if self.state is ClientState.ERROR:
                break  # RFC 8210: an error is fatal to the session

    def _handle(self, pdu: PDU) -> None:
        counters = metrics()
        if counters.enabled:
            _pdu_counter().labels(type=type(pdu).__name__).inc()
        if isinstance(pdu, SerialNotifyPDU):
            # Out-of-band poke: fetch the diff unless already syncing.
            if self.state is ClientState.SYNCING:
                return
            if self.session_id is None:
                self.session_id = pdu.session_id
            elif pdu.session_id != self.session_id:
                # The cache restarted under a fresh session: our table
                # and serial mean nothing to it any more.  Detecting
                # the mismatch here (instead of round-tripping a
                # Serial Query destined for a Cache Reset) goes
                # straight to the full resync.
                self._resync(
                    "ripki_rtr_client_notify_session_mismatch_total",
                    "Serial Notifies whose session id forced a resync",
                )
                return
            if self.serial is not None and pdu.serial == self.serial:
                # Already at the notified serial: a Serial Query would
                # only fetch an empty diff.
                counters.counter(
                    "ripki_rtr_client_notify_noop_total",
                    "Serial Notifies ignored because the serial was "
                    "already current",
                ).inc()
                return
            self.refresh()
        elif isinstance(pdu, CacheResponsePDU):
            if self.session_id is not None and pdu.session_id != self.session_id:
                self._fail(
                    ErrorCode.CORRUPT_DATA,
                    f"session id changed {self.session_id} -> {pdu.session_id}",
                )
                return
            self.session_id = pdu.session_id
            # Diffs apply on top of the current table; a response after
            # a Reset Query starts from scratch (table empty on first
            # sync, and we cleared it when we saw Cache Reset).
            self._pending = dict(self._table)
        elif isinstance(pdu, (IPv4PrefixPDU, IPv6PrefixPDU)):
            if self._pending is None:
                self._fail(
                    ErrorCode.CORRUPT_DATA, "prefix PDU outside a response"
                )
                return
            vrp = pdu.to_vrp(self._trust_anchor)
            key = (vrp.prefix, vrp.max_length, int(vrp.asn))
            if pdu.flags & FLAG_ANNOUNCE:
                self._pending[key] = vrp
            elif key in self._pending:
                del self._pending[key]
            else:
                self._fail(
                    ErrorCode.WITHDRAWAL_OF_UNKNOWN_RECORD, f"withdraw {vrp}"
                )
                return
        elif isinstance(pdu, EndOfDataPDU):
            if self._pending is None:
                self._fail(ErrorCode.CORRUPT_DATA, "End of Data outside response")
                return
            self._table = self._pending
            self._pending = None
            if self.serial is None or pdu.serial != self.serial:
                counters.counter(
                    "ripki_rtr_client_serial_advances_total",
                    "End-of-Data PDUs that moved the router's serial",
                ).inc()
            self.serial = pdu.serial
            self.refresh_interval = pdu.refresh_interval
            self.state = ClientState.SYNCHRONISED
            counters.gauge(
                "ripki_rtr_client_vrps", "VRPs in the router's local table"
            ).set(len(self._table))
            counters.gauge(
                "ripki_rtr_client_serial", "The router's last committed serial"
            ).set(pdu.serial)
        elif isinstance(pdu, CacheResetPDU):
            self._resync(
                "ripki_rtr_client_resyncs_total",
                "Cache Resets forcing a full snapshot resync",
            )
        elif isinstance(pdu, ErrorReportPDU):
            self.last_error = pdu
            self.state = ClientState.ERROR
        else:
            self._fail(
                ErrorCode.UNSUPPORTED_PDU_TYPE,
                f"unexpected {type(pdu).__name__} at router",
            )

    def _resync(self, metric: str, help_text: str) -> None:
        """Drop every piece of session state and start from scratch.

        The session id is forgotten too — the trigger (a Cache Reset,
        or a Serial Notify under an unknown session) may follow a
        cache restart under a fresh session.
        """
        self._table = {}
        self._pending = None
        self.serial = None
        self.session_id = None
        metrics().counter(metric, help_text).inc()
        self.start()

    def _fail(self, code: ErrorCode, message: str) -> None:
        self.state = ClientState.ERROR
        self._pending = None
        self.last_error = ErrorReportPDU(code, b"", message)
        metrics().counter(
            "ripki_rtr_client_errors_total",
            "Fatal session errors raised by the router side",
            labelnames=("code",),
        ).labels(code=code.name.lower()).inc()
        self._transport.send(self.last_error.encode())

    # -- table access -----------------------------------------------------------

    def vrps(self) -> List[VRP]:
        return list(self._table.values())

    def payloads(self) -> ValidatedPayloads:
        """A fresh ValidatedPayloads over the current table."""
        return ValidatedPayloads(self._table.values())

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        return (
            f"<RTRClient {self.state.value} serial={self.serial} "
            f"{len(self._table)} VRPs>"
        )
