"""Exception hierarchy for the RTR protocol."""

from repro.errors import ReproError


class RTRError(ReproError):
    """Base class for RTR failures."""


class RTRProtocolError(RTRError):
    """A PDU was malformed or violated the session state machine."""

    def __init__(self, message: str, error_code: int = 0):
        super().__init__(message)
        self.error_code = error_code
