"""RTR protocol data units (RFC 8210, version 1).

Every PDU shares an eight-byte header::

    0          8          16         24        31
    +----------+----------+-----------------------+
    | version  | pdu type |    session id / zero  |
    +----------+----------+-----------------------+
    |                    length                   |
    +---------------------------------------------+

Encoding and decoding are byte-exact per the RFC so a transcript of a
session is a valid RTR byte stream.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net import ASN, Prefix
from repro.net.addr import IPV4, IPV6
from repro.rpki.rtr.errors import RTRProtocolError
from repro.rpki.vrp import VRP

PROTOCOL_VERSION = 1
HEADER = struct.Struct("!BBHI")

# Largest frame either side will buffer for.  The biggest legitimate
# PDU is an Error Report embedding a full PDU plus diagnostic text —
# nowhere near 64 KiB.  Without a cap, a corrupt length field (the
# header's u32 can claim 4 GiB) would make the receiver buffer
# forever: no error, no progress, a silently black-holed session.
MAX_PDU_SIZE = 65536

FLAG_ANNOUNCE = 1
FLAG_WITHDRAW = 0


class PduType(enum.IntEnum):
    SERIAL_NOTIFY = 0
    SERIAL_QUERY = 1
    RESET_QUERY = 2
    CACHE_RESPONSE = 3
    IPV4_PREFIX = 4
    IPV6_PREFIX = 6
    END_OF_DATA = 7
    CACHE_RESET = 8
    ERROR_REPORT = 10


class ErrorCode(enum.IntEnum):
    CORRUPT_DATA = 0
    INTERNAL_ERROR = 1
    NO_DATA_AVAILABLE = 2
    INVALID_REQUEST = 3
    UNSUPPORTED_VERSION = 4
    UNSUPPORTED_PDU_TYPE = 5
    WITHDRAWAL_OF_UNKNOWN_RECORD = 6
    DUPLICATE_ANNOUNCEMENT = 7


class PDU:
    """Base class; subclasses implement ``body()`` and ``session_field``."""

    pdu_type: PduType

    def session_field(self) -> int:
        return 0

    def body(self) -> bytes:
        return b""

    def encode(self) -> bytes:
        body = self.body()
        header = HEADER.pack(
            PROTOCOL_VERSION,
            int(self.pdu_type),
            self.session_field(),
            HEADER.size + len(body),
        )
        return header + body


@dataclass
class SerialNotifyPDU(PDU):
    """Cache -> router: new data is available."""

    session_id: int
    serial: int
    pdu_type = PduType.SERIAL_NOTIFY

    def session_field(self) -> int:
        return self.session_id

    def body(self) -> bytes:
        return struct.pack("!I", self.serial)


@dataclass
class SerialQueryPDU(PDU):
    """Router -> cache: send me the diff since ``serial``."""

    session_id: int
    serial: int
    pdu_type = PduType.SERIAL_QUERY

    def session_field(self) -> int:
        return self.session_id

    def body(self) -> bytes:
        return struct.pack("!I", self.serial)


@dataclass
class ResetQueryPDU(PDU):
    """Router -> cache: send me everything."""

    pdu_type = PduType.RESET_QUERY


@dataclass
class CacheResponsePDU(PDU):
    """Cache -> router: data follows."""

    session_id: int
    pdu_type = PduType.CACHE_RESPONSE

    def session_field(self) -> int:
        return self.session_id


@dataclass
class IPv4PrefixPDU(PDU):
    """One IPv4 VRP, announced or withdrawn."""

    flags: int
    prefix: Prefix
    max_length: int
    asn: ASN
    pdu_type = PduType.IPV4_PREFIX

    def body(self) -> bytes:
        return struct.pack(
            "!BBBB4sI",
            self.flags,
            self.prefix.length,
            self.max_length,
            0,
            self.prefix.value.to_bytes(4, "big"),
            int(self.asn),
        )

    def to_vrp(self, trust_anchor: str = "rtr") -> VRP:
        return VRP(self.prefix, self.max_length, self.asn, trust_anchor)


@dataclass
class IPv6PrefixPDU(PDU):
    """One IPv6 VRP, announced or withdrawn."""

    flags: int
    prefix: Prefix
    max_length: int
    asn: ASN
    pdu_type = PduType.IPV6_PREFIX

    def body(self) -> bytes:
        return struct.pack(
            "!BBBB16sI",
            self.flags,
            self.prefix.length,
            self.max_length,
            0,
            self.prefix.value.to_bytes(16, "big"),
            int(self.asn),
        )

    def to_vrp(self, trust_anchor: str = "rtr") -> VRP:
        return VRP(self.prefix, self.max_length, self.asn, trust_anchor)


def prefix_pdu(flags: int, vrp: VRP) -> PDU:
    """Build the family-appropriate prefix PDU for a VRP."""
    if vrp.prefix.family == IPV4:
        return IPv4PrefixPDU(flags, vrp.prefix, vrp.max_length, vrp.asn)
    return IPv6PrefixPDU(flags, vrp.prefix, vrp.max_length, vrp.asn)


@dataclass
class EndOfDataPDU(PDU):
    """Cache -> router: transfer complete; includes refresh timers."""

    session_id: int
    serial: int
    refresh_interval: int = 3600
    retry_interval: int = 600
    expire_interval: int = 7200
    pdu_type = PduType.END_OF_DATA

    def session_field(self) -> int:
        return self.session_id

    def body(self) -> bytes:
        return struct.pack(
            "!IIII",
            self.serial,
            self.refresh_interval,
            self.retry_interval,
            self.expire_interval,
        )


@dataclass
class CacheResetPDU(PDU):
    """Cache -> router: I cannot diff from your serial, reset."""

    pdu_type = PduType.CACHE_RESET


@dataclass
class ErrorReportPDU(PDU):
    """Either direction: a fatal protocol error."""

    error_code: ErrorCode
    erroneous_pdu: bytes = b""
    error_text: str = ""
    pdu_type = PduType.ERROR_REPORT

    def session_field(self) -> int:
        return int(self.error_code)

    def body(self) -> bytes:
        text = self.error_text.encode("utf-8")
        return (
            struct.pack("!I", len(self.erroneous_pdu))
            + self.erroneous_pdu
            + struct.pack("!I", len(text))
            + text
        )


def decode_pdu(data: bytes) -> Tuple[PDU, int]:
    """Decode one PDU from the front of ``data``.

    Returns the PDU and the number of bytes consumed.  Raises
    :class:`RTRProtocolError` on malformed input; raises
    ``IncompleteRead`` sentinel via returning ``(None, 0)``?  No —
    callers must pass at least one whole PDU; use
    :func:`decode_stream` for buffers.
    """
    if len(data) < HEADER.size:
        raise RTRProtocolError("truncated header", ErrorCode.CORRUPT_DATA)
    version, pdu_type_raw, session, length = HEADER.unpack_from(data)
    if version != PROTOCOL_VERSION:
        raise RTRProtocolError(
            f"unsupported version {version}", ErrorCode.UNSUPPORTED_VERSION
        )
    if length < HEADER.size or len(data) < length:
        raise RTRProtocolError("truncated PDU", ErrorCode.CORRUPT_DATA)
    body = data[HEADER.size:length]
    try:
        pdu_type = PduType(pdu_type_raw)
    except ValueError:
        raise RTRProtocolError(
            f"unknown PDU type {pdu_type_raw}", ErrorCode.UNSUPPORTED_PDU_TYPE
        ) from None

    if pdu_type is PduType.SERIAL_NOTIFY:
        pdu: PDU = SerialNotifyPDU(session, _u32(body, pdu_type))
    elif pdu_type is PduType.SERIAL_QUERY:
        pdu = SerialQueryPDU(session, _u32(body, pdu_type))
    elif pdu_type is PduType.RESET_QUERY:
        _expect(body, 0, pdu_type)
        pdu = ResetQueryPDU()
    elif pdu_type is PduType.CACHE_RESPONSE:
        _expect(body, 0, pdu_type)
        pdu = CacheResponsePDU(session)
    elif pdu_type is PduType.IPV4_PREFIX:
        pdu = _decode_prefix(body, IPV4, pdu_type)
    elif pdu_type is PduType.IPV6_PREFIX:
        pdu = _decode_prefix(body, IPV6, pdu_type)
    elif pdu_type is PduType.END_OF_DATA:
        if len(body) != 16:
            raise RTRProtocolError("bad End of Data body", ErrorCode.CORRUPT_DATA)
        serial, refresh, retry, expire = struct.unpack("!IIII", body)
        pdu = EndOfDataPDU(session, serial, refresh, retry, expire)
    elif pdu_type is PduType.CACHE_RESET:
        _expect(body, 0, pdu_type)
        pdu = CacheResetPDU()
    else:  # ERROR_REPORT
        pdu = _decode_error(body, session)
    return pdu, length


def decode_stream(buffer: bytes) -> Tuple[List[PDU], bytes]:
    """Decode every complete PDU in ``buffer``; return the remainder."""
    pdus: List[PDU] = []
    offset = 0
    while len(buffer) - offset >= HEADER.size:
        _v, _t, _s, length = HEADER.unpack_from(buffer, offset)
        if length < HEADER.size or length > MAX_PDU_SIZE:
            raise RTRProtocolError("bad length field", ErrorCode.CORRUPT_DATA)
        if len(buffer) - offset < length:
            break  # incomplete tail, keep buffering
        pdu, consumed = decode_pdu(buffer[offset:offset + length])
        pdus.append(pdu)
        offset += consumed
    return pdus, buffer[offset:]


def _u32(body: bytes, pdu_type: PduType) -> int:
    if len(body) != 4:
        raise RTRProtocolError(f"bad {pdu_type.name} body", ErrorCode.CORRUPT_DATA)
    return struct.unpack("!I", body)[0]


def _expect(body: bytes, size: int, pdu_type: PduType) -> None:
    if len(body) != size:
        raise RTRProtocolError(f"bad {pdu_type.name} body", ErrorCode.CORRUPT_DATA)


def _decode_prefix(body: bytes, family: int, pdu_type: PduType) -> PDU:
    addr_len = 4 if family == IPV4 else 16
    expected = 4 + addr_len + 4
    if len(body) != expected:
        raise RTRProtocolError(f"bad {pdu_type.name} body", ErrorCode.CORRUPT_DATA)
    flags, length, max_length, _zero = struct.unpack_from("!BBBB", body)
    value = int.from_bytes(body[4:4 + addr_len], "big")
    asn = ASN(struct.unpack_from("!I", body, 4 + addr_len)[0])
    bits = addr_len * 8
    if length > bits or not length <= max_length <= bits:
        raise RTRProtocolError(
            f"bad prefix/maxLength in {pdu_type.name}", ErrorCode.CORRUPT_DATA
        )
    host_bits = bits - length
    if host_bits and value & ((1 << host_bits) - 1):
        raise RTRProtocolError(
            "prefix has host bits set", ErrorCode.CORRUPT_DATA
        )
    prefix = Prefix(family, value, length)
    if family == IPV4:
        return IPv4PrefixPDU(flags, prefix, max_length, asn)
    return IPv6PrefixPDU(flags, prefix, max_length, asn)


def _decode_error(body: bytes, error_code_raw: int) -> ErrorReportPDU:
    try:
        error_code = ErrorCode(error_code_raw)
    except ValueError:
        error_code = ErrorCode.INTERNAL_ERROR
    if len(body) < 4:
        raise RTRProtocolError("bad Error Report body", ErrorCode.CORRUPT_DATA)
    pdu_len = struct.unpack_from("!I", body)[0]
    if len(body) < 4 + pdu_len + 4:
        raise RTRProtocolError("bad Error Report body", ErrorCode.CORRUPT_DATA)
    erroneous = body[4:4 + pdu_len]
    text_len = struct.unpack_from("!I", body, 4 + pdu_len)[0]
    text_start = 4 + pdu_len + 4
    if len(body) < text_start + text_len:
        raise RTRProtocolError("bad Error Report body", ErrorCode.CORRUPT_DATA)
    text = body[text_start:text_start + text_len].decode("utf-8", "replace")
    return ErrorReportPDU(error_code, erroneous, text)
