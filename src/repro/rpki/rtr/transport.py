"""In-memory byte transport for RTR sessions.

A deterministic stand-in for a TCP connection: two FIFO byte pipes.
Using raw bytes (not PDU objects) forces both endpoints through the
real framing/encoding path, so transcripts are wire-faithful.
"""

from __future__ import annotations

from typing import Tuple


class InMemoryTransport:
    """One endpoint of a duplex byte channel."""

    def __init__(self):
        self._outbox = bytearray()
        self._peer: "InMemoryTransport" = None  # set by TransportPair

    def send(self, data: bytes) -> None:
        """Queue bytes towards the peer."""
        if self._peer is None:
            raise RuntimeError("transport is not connected")
        self._peer._outbox.extend(data)

    def receive(self) -> bytes:
        """Drain every byte queued for this endpoint."""
        data = bytes(self._outbox)
        del self._outbox[:]
        return data

    def pending(self) -> int:
        """Bytes waiting to be received."""
        return len(self._outbox)


class TransportPair:
    """A connected pair of in-memory endpoints."""

    def __init__(self):
        self.cache_side = InMemoryTransport()
        self.router_side = InMemoryTransport()
        self.cache_side._peer = self.router_side
        self.router_side._peer = self.cache_side

    def endpoints(self) -> Tuple[InMemoryTransport, InMemoryTransport]:
        return self.cache_side, self.router_side
