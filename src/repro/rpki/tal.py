"""Trust Anchor Locators (RFC 8630, simplified).

A TAL carries the expected public key of a trust anchor so relying
parties can bootstrap validation without trusting the repository
content itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.keys import PublicKey
from repro.rpki.cert import CertificateAuthority, ResourceCertificate


@dataclass(frozen=True)
class TrustAnchorLocator:
    """Name plus pinned public key of one trust anchor."""

    name: str
    public_key: PublicKey

    @classmethod
    def for_authority(cls, ca: CertificateAuthority) -> "TrustAnchorLocator":
        return cls(name=ca.name, public_key=ca.keypair.public)

    def fingerprint(self) -> str:
        return self.public_key.fingerprint()

    def matches(self, certificate: ResourceCertificate) -> bool:
        """True when the certificate carries exactly the pinned key."""
        return certificate.public_key == self.public_key

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "public_key": self.public_key.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrustAnchorLocator":
        return cls(
            name=str(data["name"]),
            public_key=PublicKey.from_dict(data["public_key"]),
        )

    def __repr__(self) -> str:
        return f"<TAL {self.name!r} {self.fingerprint()[:12]}>"
