"""The relying-party validator.

Starting from a set of trust anchor locators, the validator walks the
CA hierarchy through the repository and checks, for every object:

1. the signature verifies under the issuer's key,
2. the validity window contains the validation time,
3. the resource extension is covered by the issuer (no over-claims),
4. the serial is not on the issuer's current CRL,
5. the object is listed on the issuer's manifest with a matching hash
   (in strict mode unlisted objects are rejected; otherwise warned).

Only ROAs that survive every check contribute VRPs — mirroring the
paper's step 4: "Only cryptographically correct ROAs are further used".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rpki.cert import ResourceCertificate
from repro.rpki.repository import Repository, certificate_hash
from repro.rpki.roa import ROA
from repro.rpki.tal import TrustAnchorLocator
from repro.rpki.vrp import VRP, ValidatedPayloads


@dataclass
class ValidationReport:
    """Statistics and per-object outcomes of a validation run."""

    accepted_certificates: int = 0
    accepted_roas: int = 0
    rejected: List[Tuple[str, str]] = field(default_factory=list)  # (object, reason)
    warnings: List[str] = field(default_factory=list)

    def reject(self, obj: str, reason: str) -> None:
        self.rejected.append((obj, reason))

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    @property
    def rejected_count(self) -> int:
        return len(self.rejected)

    def summary(self) -> str:
        return (
            f"{self.accepted_certificates} certificates and "
            f"{self.accepted_roas} ROAs accepted; "
            f"{self.rejected_count} objects rejected; "
            f"{len(self.warnings)} warnings"
        )


class RelyingParty:
    """Validates a repository against trust anchors to produce VRPs."""

    def __init__(self, repository: Repository, strict_manifests: bool = False):
        self._repository = repository
        self._strict_manifests = strict_manifests

    def validate(
        self,
        tals: Sequence[TrustAnchorLocator],
        now: float = 0.0,
    ) -> Tuple[ValidatedPayloads, ValidationReport]:
        """Run validation under every TAL; returns VRPs and a report."""
        payloads = ValidatedPayloads()
        report = ValidationReport()
        for tal in tals:
            ta_cert = self._repository.trust_anchor_certificates.get(
                tal.fingerprint()
            )
            if ta_cert is None:
                report.reject(f"TA:{tal.name}", "trust anchor certificate missing")
                continue
            if not tal.matches(ta_cert):
                report.reject(f"TA:{tal.name}", "public key does not match TAL")
                continue
            if not ta_cert.is_self_signed() or not ta_cert.verify_signature(
                ta_cert.public_key
            ):
                report.reject(f"TA:{tal.name}", "invalid self-signature")
                continue
            if not ta_cert.valid_at(now):
                report.reject(f"TA:{tal.name}", "trust anchor expired")
                continue
            report.accepted_certificates += 1
            self._walk(ta_cert, tal.name, now, payloads, report, depth=0)
        return payloads, report

    # -- internals -------------------------------------------------------

    _MAX_DEPTH = 32  # defend against pathological or cyclic hierarchies

    def _walk(
        self,
        ca_cert: ResourceCertificate,
        trust_anchor: str,
        now: float,
        payloads: ValidatedPayloads,
        report: ValidationReport,
        depth: int,
    ) -> None:
        if depth > self._MAX_DEPTH:
            report.reject(ca_cert.subject, "hierarchy too deep (possible cycle)")
            return
        point = self._repository.lookup(ca_cert.fingerprint())
        if point is None:
            return  # a CA without products is fine

        crl = point.crl
        crl_usable = (
            crl is not None
            and crl.verify_signature(ca_cert.public_key)
            and crl.is_current(now)
        )
        if crl is not None and not crl_usable:
            report.warn(f"{ca_cert.subject}: CRL invalid or stale, ignoring")

        manifest = point.manifest
        manifest_usable = (
            manifest is not None
            and manifest.verify_signature(ca_cert.public_key)
            and manifest.is_current(now)
        )
        if manifest is not None and not manifest_usable:
            report.warn(f"{ca_cert.subject}: manifest invalid or stale")

        for name, child_cert in sorted(point.child_certificates.items()):
            if not self._check_listed(
                name, certificate_hash(child_cert), manifest, manifest_usable, report
            ):
                report.reject(name, "not listed on manifest (strict mode)")
                continue
            if not self._check_certificate(
                child_cert, ca_cert, crl if crl_usable else None, now, report, name
            ):
                continue
            report.accepted_certificates += 1
            self._walk(child_cert, trust_anchor, now, payloads, report, depth + 1)

        for name, roa in sorted(point.roas.items()):
            if not self._check_listed(
                name, roa.object_hash(), manifest, manifest_usable, report
            ):
                report.reject(name, "not listed on manifest (strict mode)")
                continue
            if not self._check_roa(
                roa, ca_cert, crl if crl_usable else None, now, report, name
            ):
                continue
            report.accepted_roas += 1
            for entry in roa.prefixes:
                payloads.add(
                    VRP(
                        prefix=entry.prefix,
                        max_length=entry.max_length,
                        asn=roa.as_id,
                        trust_anchor=trust_anchor,
                    )
                )

    def _check_listed(
        self,
        name: str,
        object_hash: str,
        manifest,
        manifest_usable: bool,
        report: ValidationReport,
    ) -> bool:
        """Manifest consistency; returns False only when fatal."""
        if not manifest_usable:
            if self._strict_manifests:
                return False
            return True
        listed = manifest.listed_hash(name)
        if listed is None:
            if self._strict_manifests:
                return False
            report.warn(f"{name}: not listed on manifest")
            return True
        if listed != object_hash:
            # A hash mismatch means substitution; always fatal.
            report.reject(name, "manifest hash mismatch")
            return False
        return True

    def _check_certificate(
        self,
        cert: ResourceCertificate,
        issuer: ResourceCertificate,
        crl,
        now: float,
        report: ValidationReport,
        name: str,
    ) -> bool:
        if cert.issuer_fingerprint != issuer.fingerprint():
            report.reject(name, "issuer fingerprint mismatch")
            return False
        if not cert.verify_signature(issuer.public_key):
            report.reject(name, "bad signature")
            return False
        if not cert.valid_at(now):
            report.reject(name, "outside validity window")
            return False
        if not issuer.resources.covers(cert.resources):
            report.reject(name, "resource over-claim")
            return False
        if crl is not None and crl.is_revoked(cert.serial):
            report.reject(name, "revoked")
            return False
        return True

    def _check_roa(
        self,
        roa: ROA,
        issuer: ResourceCertificate,
        crl,
        now: float,
        report: ValidationReport,
        name: str,
    ) -> bool:
        ee = roa.ee_certificate
        if ee.is_ca:
            report.reject(name, "ROA EE certificate has the CA bit set")
            return False
        if not self._check_certificate(ee, issuer, crl, now, report, name):
            return False
        if not roa.verify_payload_signature():
            report.reject(name, "ROA payload signature invalid")
            return False
        if not ee.resources.covers(roa.prefix_resources()):
            report.reject(name, "ROA prefixes exceed EE certificate resources")
            return False
        return True
