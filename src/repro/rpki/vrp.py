"""Validated ROA Payloads and RFC 6811 prefix origin validation.

The relying party distils the validated ROA set into VRPs — triples
of (prefix, maxLength, origin AS).  :class:`ValidatedPayloads` indexes
them in a radix trie and implements the origin-validation algorithm a
BGP router runs on each received route:

* **NOT_FOUND** — no VRP covers the announced prefix,
* **VALID** — some covering VRP matches the origin AS and the
  announced prefix is no longer than its maxLength,
* **INVALID** — covering VRPs exist but none matches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.net import ASN, Prefix, PrefixTrie


class OriginValidation(enum.Enum):
    """RFC 6811 route validation states."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not_found"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class VRP:
    """One Validated ROA Payload."""

    prefix: Prefix
    max_length: int
    asn: ASN
    trust_anchor: str = ""

    def __post_init__(self):
        if not self.prefix.length <= self.max_length <= self.prefix.bits:
            raise ValueError(
                f"maxLength {self.max_length} invalid for {self.prefix}"
            )

    def covers(self, announced: Prefix) -> bool:
        """True when this VRP's prefix covers the announcement."""
        return self.prefix.covers(announced)

    def matches(self, announced: Prefix, origin: Union[int, ASN]) -> bool:
        """Full RFC 6811 match: coverage, maxLength, and origin AS."""
        return (
            self.covers(announced)
            and announced.length <= self.max_length
            and int(self.asn) == int(origin)
        )

    def __str__(self) -> str:
        return f"{self.prefix}-{self.max_length} => {self.asn}"


class ValidatedPayloads:
    """An indexed set of VRPs supporting origin validation."""

    def __init__(self, vrps: Iterable[VRP] = ()):
        self._trie: PrefixTrie = PrefixTrie()
        self._vrps: List[VRP] = []
        for vrp in vrps:
            self.add(vrp)

    def add(self, vrp: VRP) -> None:
        self._trie.insert(vrp.prefix, vrp)
        self._vrps.append(vrp)

    def covering_vrps(self, announced: Prefix) -> List[VRP]:
        """Every VRP whose prefix covers the announced prefix."""
        return [vrp for _prefix, vrp in self._trie.covering(announced)]

    def validate_origin(
        self, announced: Prefix, origin: Union[int, ASN]
    ) -> OriginValidation:
        """RFC 6811 origin validation of one announcement."""
        state, _covering = self.validate_with_covering(announced, origin)
        return state

    def validate_with_covering(
        self, announced: Prefix, origin: Union[int, ASN]
    ) -> Tuple[OriginValidation, List[VRP]]:
        """Verdict plus the covering VRPs it was judged against.

        One trie walk serves both; the serving layer's ``validate``
        query returns the evidence (covering ROAs, shortest prefix
        first) alongside the verdict, the way an RTR-attached router
        operator would audit an INVALID.
        """
        covering = self.covering_vrps(announced)
        if not covering:
            return OriginValidation.NOT_FOUND, covering
        for vrp in covering:
            if vrp.matches(announced, origin):
                return OriginValidation.VALID, covering
        return OriginValidation.INVALID, covering

    def covered(self, announced: Prefix) -> bool:
        """True when the RPKI says *anything* about the prefix."""
        return bool(self.covering_vrps(announced))

    def asns(self) -> set:
        """Distinct origin ASes appearing in the VRP set."""
        return {vrp.asn for vrp in self._vrps}

    def __iter__(self) -> Iterator[VRP]:
        return iter(self._vrps)

    def __len__(self) -> int:
        return len(self._vrps)

    def __contains__(self, vrp: VRP) -> bool:
        return vrp in self._vrps

    def __repr__(self) -> str:
        return f"<ValidatedPayloads {len(self._vrps)} VRPs>"
