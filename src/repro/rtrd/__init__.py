"""The long-lived RTR cache daemon (``ripki rtrd``).

Where :mod:`repro.rpki.rtr` provides the wire protocol and
:mod:`repro.core.continuous` re-derives the VRP world, this package
is the piece that keeps routers fed *between* derivations: a daemon
holding one hardened cache and a population of router sessions,
pushing streaming deltas on every world change, with a seeded churn
generator to batter it and a differential check that no surviving
router ever drifts from the cache's table.
"""

from repro.rtrd.churn import (
    ChurnProfile,
    ChurnSummary,
    SyntheticVRPWorld,
    run_churn,
)
from repro.rtrd.daemon import (
    PUSH_SLO,
    PublishStats,
    RTRDaemon,
    RtrdConfig,
    summarize_publishes,
    wire_table,
)
from repro.rtrd.session import SessionManager, SimulatedRouter

__all__ = [
    "ChurnProfile",
    "ChurnSummary",
    "PUSH_SLO",
    "PublishStats",
    "RTRDaemon",
    "RtrdConfig",
    "SessionManager",
    "SimulatedRouter",
    "SyntheticVRPWorld",
    "run_churn",
    "summarize_publishes",
    "wire_table",
]
