"""Seeded router-churn load generator for the RTR daemon.

Drives an :class:`~repro.rtrd.daemon.RTRDaemon` through rounds of
realistic misbehaviour: routers connect and disconnect, some stop
reading their sockets for a few rounds (lag), some blast garbage
bytes mid-session, and the VRP world keeps changing underneath.
Everything draws from one :class:`~repro.crypto.rng.DeterministicRNG`
seed, so a churn run is replayable bit-for-bit — the property the
differential harness leans on to assert that every surviving router's
table is identical to the cache snapshot no matter the interleaving.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.crypto.rng import DeterministicRNG, Seed
from repro.net import ASN, Prefix
from repro.rpki.vrp import VRP
from repro.rtrd.daemon import RTRDaemon


class SyntheticVRPWorld:
    """A deterministic, mutating VRP universe.

    Prefixes are allocated from a monotone index (so they never
    collide); ASNs and maxLengths are drawn from the seeded stream.
    :meth:`advance` withdraws some existing VRPs and announces fresh
    ones, producing exactly the announce/withdraw churn an RTR cache
    must turn into serial diffs.
    """

    def __init__(self, size: int, seed: Seed = "rtrd-world"):
        self._rng = DeterministicRNG(seed).fork("vrps")
        self._index = itertools.count(1)
        self._vrps: Dict[Tuple, VRP] = {}
        self.grow(size)

    def _mint(self) -> VRP:
        # Index-addressed /24s cover the v4 space without collisions.
        prefix = Prefix(4, next(self._index) << 8, 24)
        max_length = self._rng.randint(24, 28)
        asn = ASN(self._rng.randint(64496, 65534))
        vrp = VRP(prefix, max_length, asn, "rtrd-world")
        self._vrps[(vrp.prefix, vrp.max_length, int(vrp.asn))] = vrp
        return vrp

    def grow(self, count: int) -> None:
        for _ in range(count):
            self._mint()

    def advance(self, changes: int) -> Tuple[int, int]:
        """Mutate the world by ``changes`` VRPs; (announced, withdrawn).

        Half the changes withdraw existing VRPs (capped by what
        exists), the rest announce fresh ones — total size drifts
        slowly while every round still exercises both diff flags.
        """
        withdraw = min(changes // 2, len(self._vrps))
        for key in self._rng.sample(sorted(self._vrps), withdraw):
            del self._vrps[key]
        announce = changes - withdraw
        self.grow(announce)
        return announce, withdraw

    def vrps(self) -> List[VRP]:
        return list(self._vrps.values())

    def __len__(self) -> int:
        return len(self._vrps)


@dataclass(frozen=True)
class ChurnProfile:
    """One seeded churn scenario.

    Fractions apply to the population each round: ``disconnect``
    removes routers for good, ``lag`` makes routers stop reading for
    up to ``max_lag_rounds`` rounds, ``garbage`` injects junk bytes
    mid-stream (quarantining the session until the simulated router
    software restarts).  ``world_changes`` VRPs mutate per round.
    """

    rounds: int = 8
    target_sessions: int = 32
    disconnect: float = 0.05
    lag: float = 0.1
    garbage: float = 0.05
    max_lag_rounds: int = 3
    world_changes: int = 20
    seed: Seed = "rtrd-churn"

    def __post_init__(self):
        for name in ("disconnect", "lag", "garbage"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a fraction, got {value}")
        if self.rounds < 1 or self.target_sessions < 1:
            raise ValueError("rounds and target_sessions must be >= 1")
        if self.max_lag_rounds < 1:
            raise ValueError("max_lag_rounds must be >= 1")


@dataclass
class ChurnSummary:
    """What a churn run did and where it ended up."""

    rounds: int = 0
    connects: int = 0
    disconnects: int = 0
    revives: int = 0
    wedge_reconnects: int = 0
    garbage_frames: int = 0
    lag_assignments: int = 0
    world_announced: int = 0
    world_withdrawn: int = 0
    final_serial: int = 0
    final_sessions: int = 0
    final_synchronized: int = 0
    final_quarantined: int = 0
    diverged: int = 0
    converged: bool = False
    publish_rounds: List[int] = field(default_factory=list)


def run_churn(
    daemon: RTRDaemon,
    world: SyntheticVRPWorld,
    profile: ChurnProfile,
) -> ChurnSummary:
    """Drive ``daemon`` through ``profile.rounds`` rounds of churn.

    Round shape: restart broken routers (half revived in place via a
    fresh Reset Query, half torn down and reconnected), disconnect a
    few healthy ones, top the population back up to target, inject
    garbage and lag, then mutate the world and publish it.  After the
    last round all lag is cleared and the daemon synchronizes, so the
    summary's convergence fields describe a quiescent end state.
    """
    summary = ChurnSummary()
    manager = daemon.manager
    rng = DeterministicRNG(profile.seed).fork("churn")
    for round_index in range(profile.rounds):
        round_rng = rng.fork(f"round-{round_index}")
        _restart_broken(daemon, round_rng, summary)
        _disconnect_some(daemon, round_rng, profile, summary)
        while len(manager) < profile.target_sessions:
            daemon.connect()
            summary.connects += 1
        _inject_garbage(daemon, round_rng, profile, summary)
        _assign_lag(daemon, round_rng, profile, summary)
        announced, withdrawn = world.advance(profile.world_changes)
        summary.world_announced += announced
        summary.world_withdrawn += withdrawn
        stats = daemon.publish(world.vrps())
        summary.publish_rounds.append(stats.rounds)
        for router in manager.routers():
            if router.lag > 0:
                router.lag -= 1
        summary.rounds += 1
    # Quiesce: every straggler catches up, then judge convergence.
    # Iterated because a poisoned session buffer can stay dormant
    # under an idle router and only break (wedge or quarantine) when
    # the catch-up traffic finally touches it.
    for router in manager.routers():
        router.lag = 0
    for attempt in range(3):
        _restart_broken(daemon, rng.fork(f"final-{attempt}"), summary)
        daemon.synchronize()
        if all(
            router.alive and not router.wedged
            for router in manager.routers()
        ):
            break
    summary.final_serial = daemon.serial
    summary.final_sessions = len(manager)
    summary.final_synchronized = len(manager.synchronized())
    summary.final_quarantined = len(manager.quarantined())
    summary.diverged = len(daemon.diverged_routers())
    summary.converged = daemon.converged and summary.diverged == 0
    return summary


def _restart_broken(
    daemon: RTRDaemon, rng: DeterministicRNG, summary: ChurnSummary
) -> None:
    """Restart every router whose session died or stream wedged.

    Dead sessions split deterministically between the two recovery
    paths: an in-place software restart (Reset Query revives the
    quarantined session) and a full reconnect (teardown plus a fresh
    session).  A *wedged* router — its query swallowed by a poisoned
    session buffer — always reconnects: only tearing the connection
    down resynchronises a desynced byte stream, exactly like the
    query timeout a real router would fire.
    """
    manager = daemon.manager
    broken = [r for r in manager.routers() if not r.alive or r.wedged]
    for router in broken:
        if router.wedged or rng.random() >= 0.5:
            daemon.disconnect(router.name)
            daemon.connect()
            if router.wedged:
                summary.wedge_reconnects += 1
            summary.disconnects += 1
            summary.connects += 1
        else:
            manager.revive(router)
            summary.revives += 1
    if broken:
        daemon.pump()


def _disconnect_some(
    daemon: RTRDaemon,
    rng: DeterministicRNG,
    profile: ChurnProfile,
    summary: ChurnSummary,
) -> None:
    routers = daemon.manager.routers()
    count = int(len(routers) * profile.disconnect)
    for router in rng.sample(routers, min(count, len(routers))):
        daemon.disconnect(router.name)
        summary.disconnects += 1


def _inject_garbage(
    daemon: RTRDaemon,
    rng: DeterministicRNG,
    profile: ChurnProfile,
    summary: ChurnSummary,
) -> None:
    alive = daemon.manager.alive()
    count = int(len(alive) * profile.garbage)
    for router in rng.sample(alive, min(count, len(alive))):
        junk = rng.bytes(rng.randint(1, 40))
        router.pair.router_side.send(junk)
        summary.garbage_frames += 1


def _assign_lag(
    daemon: RTRDaemon,
    rng: DeterministicRNG,
    profile: ChurnProfile,
    summary: ChurnSummary,
) -> None:
    candidates = [r for r in daemon.manager.alive() if not r.lagging]
    count = int(len(candidates) * profile.lag)
    for router in rng.sample(candidates, min(count, len(candidates))):
        router.lag = rng.randint(1, profile.max_lag_rounds)
        summary.lag_assignments += 1
