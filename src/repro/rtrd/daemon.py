"""The long-lived RTR cache daemon.

:class:`RTRDaemon` is the push-side counterpart of ``repro.serve``'s
pull-side query service: instead of answering queries against a
frozen index, it *pushes* world changes to every connected router.
One :class:`~repro.rpki.rtr.cache.RTRCache` holds the VRP snapshot
and its bounded diff history; a
:class:`~repro.rtrd.session.SessionManager` holds the router
population; :meth:`publish` installs a new VRP world, fans a Serial
Notify out to every synchronized session, and pumps the resulting
serve/poll exchanges to quiescence.

Dispatch mirrors the query service's model exactly: the router list
is cut into contiguous batches with the executor's planner
(:func:`repro.exec.sharding.plan_batches`); the threaded backend runs
batches on a pool with per-batch instrument isolation
(:func:`repro.obs.runtime.thread_scope`) merged parent-side in batch
order, so serial and threaded pumps produce identical router tables
and identical counter totals.  Batches are disjoint router sets and
the cache's world state is read-only during a pump, so threads never
contend on session state; the encoded snapshot/diff frame caches are
a benign race (both threads compute the same bytes).
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec.sharding import plan_batches
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    metrics,
    observability_enabled,
    thread_scope,
    tracer,
)
from repro.obs.tracing import TraceCollector
from repro.rpki.rtr.cache import RTRCache
from repro.rpki.rtr.pdus import FLAG_ANNOUNCE, prefix_pdu
from repro.rpki.vrp import VRP
from repro.rtrd.session import SessionManager, SimulatedRouter

DISPATCH_MODES: Tuple[str, ...] = ("auto", "serial", "thread")

# The daemon's latency objective in an attached SLO tracker: one
# event per publish, good when the fan-out met the deadline.
PUSH_SLO = "rtrd.push"

PUSH_LATENCY_METRIC = "ripki_rtrd_push_seconds"
PUSH_BYTES_METRIC = "ripki_rtrd_push_bytes_total"
PUBLISHES_METRIC = "ripki_rtrd_publishes_total"

_METRIC_HELP = {
    PUSH_LATENCY_METRIC:
        "Wall time from publish to all-sessions-converged",
    PUSH_BYTES_METRIC:
        "Response bytes pushed to routers, by response kind",
    PUBLISHES_METRIC:
        "World publishes, by outcome (advanced vs no-op)",
}


def wire_table(vrps: Iterable[VRP]) -> bytes:
    """Canonical wire encoding of a VRP table.

    Sorted announce-flagged prefix PDUs — the byte string two tables
    must share to count as bit-identical *on the wire* (the wire
    carries no trust-anchor names, so tables that differ only there
    compare equal, exactly as a router would see them).
    """
    return b"".join(
        sorted(prefix_pdu(FLAG_ANNOUNCE, vrp).encode() for vrp in vrps)
    )


@dataclass(frozen=True)
class RtrdConfig:
    """Every dispatch knob of one daemon."""

    workers: int = 1
    mode: str = "auto"                # auto | serial | thread
    batch_size: Optional[int] = None
    session_id: int = 1
    history_limit: int = 16
    refresh_interval: int = 3600
    # Serve/poll rounds a single pump may take before giving up; a
    # healthy exchange converges in 2-3 (notify -> query -> diff).
    max_rounds: int = 12

    def __post_init__(self):
        if self.mode not in DISPATCH_MODES:
            raise ValueError(
                f"mode must be one of {DISPATCH_MODES}, got {self.mode!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")

    @property
    def resolved_mode(self) -> str:
        if self.mode == "auto":
            return "thread" if self.workers > 1 else "serial"
        return self.mode


@dataclass
class PublishStats:
    """Accounting for one :meth:`RTRDaemon.publish` call."""

    serial: int
    announced: int = 0
    withdrawn: int = 0
    advanced: bool = False
    notified: int = 0
    rounds: int = 0
    elapsed_s: float = 0.0
    delta_bytes: int = 0            # diff-response bytes this publish
    snapshot_bytes: int = 0         # snapshot-response bytes this publish
    # Size of ONE full-snapshot response for the post-publish world —
    # what every notified router would have paid without diffs.
    snapshot_frame_bytes: int = 0
    synchronized: int = 0

    @property
    def pushed_bytes(self) -> int:
        return self.delta_bytes + self.snapshot_bytes

    @property
    def delta_saving_fraction(self) -> float:
        """Fraction of the snapshot-equivalent bytes the diffs saved."""
        equivalent = self.snapshot_frame_bytes * self.notified
        if equivalent <= 0:
            return 0.0
        return max(0.0, 1.0 - self.pushed_bytes / equivalent)


def summarize_publishes(
    daemon: "RTRDaemon", elapsed_s: Optional[float] = None
) -> Dict[str, object]:
    """JSON-ready summary of a daemon's publish history.

    The CLI's closing table, the benchmark's ``BENCH_rtr_serve.json``,
    and the CI smoke checks all consume this one shape.  Push-latency
    quantiles are bucket-estimated with the same estimator the live
    SLO gauges use (:func:`repro.obs.window.estimate_quantiles`).
    """
    from repro.obs.window import estimate_quantiles

    advanced = [s for s in daemon.publishes if s.advanced]
    latencies = [s.elapsed_s for s in advanced]
    p50, p99 = (
        estimate_quantiles(latencies, (0.50, 0.99))
        if latencies
        else (0.0, 0.0)
    )
    delta_bytes = sum(s.delta_bytes for s in advanced)
    snapshot_bytes = sum(s.snapshot_bytes for s in advanced)
    notified = sum(s.notified for s in advanced)
    equivalent = sum(s.snapshot_frame_bytes * s.notified for s in advanced)
    pushed = delta_bytes + snapshot_bytes
    manager = daemon.manager
    summary: Dict[str, object] = {
        "serial": daemon.serial,
        "publishes": len(daemon.publishes),
        "advanced": len(advanced),
        "noop": len(daemon.publishes) - len(advanced),
        "sessions": len(manager),
        "synchronized": len(manager.synchronized()),
        "quarantined": len(manager.quarantined()),
        "total_connects": manager.total_connects,
        "total_disconnects": manager.total_disconnects,
        "push_p50_ms": round(p50 * 1000, 3),
        "push_p99_ms": round(p99 * 1000, 3),
        "notified": notified,
        "delta_bytes": delta_bytes,
        "snapshot_bytes": snapshot_bytes,
        "snapshot_equivalent_bytes": equivalent,
        # >1 means the delta stream is cheaper than re-snapshotting
        # every notified router each publish.
        "delta_saving_ratio": (
            round(equivalent / pushed, 3) if pushed else 0.0
        ),
    }
    if elapsed_s is not None:
        summary["elapsed_s"] = round(elapsed_s, 3)
    return summary


class RTRDaemon:
    """A long-running RTR cache server over simulated router sessions."""

    def __init__(
        self,
        config: Optional[RtrdConfig] = None,
        cache: Optional[RTRCache] = None,
    ):
        self.config = config or RtrdConfig()
        self._cache = cache or RTRCache(
            session_id=self.config.session_id,
            history_limit=self.config.history_limit,
            refresh_interval=self.config.refresh_interval,
        )
        self._manager = SessionManager(self._cache)
        self._clock: Callable[[], float] = time.perf_counter
        self._slo = None
        self._health = None
        self._push_deadline_s = 1.0
        self.publishes: List[PublishStats] = []

    # -- wiring ------------------------------------------------------------

    @property
    def cache(self) -> RTRCache:
        return self._cache

    @property
    def manager(self) -> SessionManager:
        return self._manager

    @property
    def serial(self) -> int:
        return self._cache.serial

    def vrps(self) -> List[VRP]:
        return self._cache.vrps()

    def attach_telemetry(
        self,
        slo=None,
        health=None,
        clock: Optional[Callable[[], float]] = None,
        push_deadline_s: float = 1.0,
    ) -> "RTRDaemon":
        """Wire publishes into the live telemetry plane.

        ``slo`` (an :class:`~repro.obs.window.SLOTracker`) gets a
        ``rtrd.push`` latency objective — each publish's fan-out wall
        time is one event, good when it met ``push_deadline_s``.
        ``health`` (an :class:`~repro.obs.http.HealthSource`) is
        stamped after every publish, driving ``/health``'s freshness
        and ``/ready``.  Returns ``self`` to chain.
        """
        self._slo = slo
        self._health = health
        if clock is not None:
            self._clock = clock
        self._push_deadline_s = push_deadline_s
        if slo is not None:
            slo.declare(
                PUSH_SLO, threshold_s=push_deadline_s, target=0.95
            )
        return self

    # -- router lifecycle --------------------------------------------------

    def connect(self, name: Optional[str] = None) -> SimulatedRouter:
        """Connect a router and pump its initial full sync."""
        router = self._manager.connect(name)
        self.pump([router])
        return router

    def connect_many(self, count: int) -> List[SimulatedRouter]:
        """Connect ``count`` routers, then sync them all in one pump."""
        routers = [self._manager.connect() for _ in range(count)]
        self.pump(routers)
        return routers

    def disconnect(self, name: str) -> SimulatedRouter:
        return self._manager.disconnect(name)

    def routers(self) -> List[SimulatedRouter]:
        return self._manager.routers()

    # -- the push path -----------------------------------------------------

    def publish(self, vrps: Iterable[VRP]) -> PublishStats:
        """Install a new VRP world and push it to every router.

        A no-change publish is a true no-op on the wire: the hardened
        cache keeps its serial, so no session is notified and no
        router round-trips an empty diff.
        """
        started = self._clock()
        before_delta, before_snapshot = self._byte_totals()
        serial_before = self._cache.serial
        announced, withdrawn = self._cache.load(vrps)
        stats = PublishStats(
            serial=self._cache.serial,
            announced=announced,
            withdrawn=withdrawn,
            advanced=self._cache.serial != serial_before,
        )
        if stats.advanced:
            stats.snapshot_frame_bytes = len(self._cache.snapshot_frame())
            stats.notified = sum(
                1
                for session in self._cache.sessions()
                if session.synchronized
                and self._cache.notify_session(session)
            )
            stats.rounds = self.pump()
        after_delta, after_snapshot = self._byte_totals()
        stats.delta_bytes = after_delta - before_delta
        stats.snapshot_bytes = after_snapshot - before_snapshot
        stats.synchronized = len(self._manager.synchronized())
        stats.elapsed_s = self._clock() - started
        self.publishes.append(stats)
        self._record_publish(stats)
        return stats

    def synchronize(self) -> int:
        """Notify every synchronized session and pump to quiescence.

        The catch-up path for routers whose lag just cleared: their
        queued notifies are finally read, stale serials turn into
        multi-serial diffs (or a Cache Reset once history has moved
        past them).  Returns the rounds used.
        """
        for session in self._cache.sessions():
            if session.synchronized:
                self._cache.notify_session(session)
        return self.pump()

    def pump(
        self, routers: Optional[Sequence[SimulatedRouter]] = None
    ) -> int:
        """Serve/poll rounds until the byte pipes drain.

        Lagging routers are served but never polled, and their unread
        responses do not count against quiescence (an unread socket
        is not undelivered work).
        """
        population = (
            list(routers) if routers is not None else self._manager.routers()
        )
        rounds = 0
        with tracer().span(
            "rtrd.pump",
            routers=len(population),
            mode=self.config.resolved_mode,
        ) as root:
            while rounds < self.config.max_rounds:
                if not self._pending(population):
                    break
                self._step_all(population, root)
                rounds += 1
        return rounds

    @staticmethod
    def _pending(population: Sequence[SimulatedRouter]) -> bool:
        for router in population:
            if router.pair.cache_side.pending():
                return True
            if not router.lagging and router.pair.router_side.pending():
                return True
        return False

    # -- dispatch ----------------------------------------------------------

    def _step_all(
        self, population: Sequence[SimulatedRouter], root
    ) -> None:
        batches = plan_batches(
            population, self.config.batch_size, self.config.workers
        )
        if (
            self.config.resolved_mode == "serial"
            or self.config.workers <= 1
            or len(batches) <= 1
        ):
            for batch in batches:
                self._step_batch(batch.index, batch.items)
            return
        self._step_threaded(batches, root)

    def _step_threaded(self, batches, root) -> None:
        observe = observability_enabled()
        registry = metrics()
        trace = tracer()
        outcomes: Dict[int, tuple] = {}
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="ripki-rtrd",
        ) as pool:
            futures = {
                pool.submit(
                    self._step_batch_scoped,
                    batch.index,
                    batch.items,
                    observe,
                ): batch.index
                for batch in batches
            }
            for future in concurrent.futures.as_completed(futures):
                outcomes[futures[future]] = future.result()
        parent_id = root.span_id if root is not None else None
        for index in sorted(outcomes):
            batch_registry, batch_collector = outcomes[index]
            if observe:
                if batch_registry is not None and registry.enabled:
                    registry.merge(batch_registry)
                if batch_collector is not None:
                    trace.absorb(
                        batch_collector.spans(),
                        parent_id=parent_id,
                        dropped=batch_collector.dropped,
                    )

    def _step_batch_scoped(self, index: int, items, observe: bool):
        registry = MetricsRegistry() if observe else None
        collector = TraceCollector() if observe else None
        with thread_scope(registry, collector):
            self._step_batch(index, items)
        return registry, collector

    def _step_batch(self, index: int, items) -> None:
        with tracer().span("rtrd.batch", batch=index, routers=len(items)):
            for router in items:
                self._manager.step_router(router)

    # -- accounting --------------------------------------------------------

    def _byte_totals(self) -> Tuple[int, int]:
        delta = snapshot = 0
        for session in self._cache.sessions():
            delta += session.diff_bytes_sent
            snapshot += session.snapshot_bytes_sent
        return delta, snapshot

    def _record_publish(self, stats: PublishStats) -> None:
        counters = metrics()
        if counters.enabled:
            counters.counter(
                PUBLISHES_METRIC,
                _METRIC_HELP[PUBLISHES_METRIC],
                labelnames=("outcome",),
            ).labels(
                outcome="advanced" if stats.advanced else "noop"
            ).inc()
            if stats.advanced:
                counters.histogram(
                    PUSH_LATENCY_METRIC, _METRIC_HELP[PUSH_LATENCY_METRIC]
                ).observe(stats.elapsed_s)
                bytes_counter = counters.counter(
                    PUSH_BYTES_METRIC,
                    _METRIC_HELP[PUSH_BYTES_METRIC],
                    labelnames=("kind",),
                )
                bytes_counter.labels(kind="diff").inc(stats.delta_bytes)
                bytes_counter.labels(kind="snapshot").inc(
                    stats.snapshot_bytes
                )
        if stats.advanced:
            if self._slo is not None:
                self._slo.observe(
                    PUSH_SLO,
                    stats.elapsed_s,
                    ok=stats.elapsed_s <= self._push_deadline_s,
                )
            if self._health is not None:
                self._health.mark_refresh()
                self._health.set_detail(
                    serial=stats.serial,
                    sessions=len(self._manager),
                )

    # -- verification ------------------------------------------------------

    @property
    def converged(self) -> bool:
        """Every alive, non-lagging router holds the current serial."""
        return all(
            router.client.serial == self._cache.serial
            for router in self._manager.routers()
            if router.alive and not router.lagging
        )

    def diverged_routers(self) -> List[SimulatedRouter]:
        """Alive, non-lagging routers whose table differs on the wire."""
        truth = wire_table(self._cache.vrps())
        return [
            router
            for router in self._manager.routers()
            if router.alive
            and not router.lagging
            and wire_table(router.client.vrps()) != truth
        ]

    def __repr__(self) -> str:
        return (
            f"<RTRDaemon serial={self._cache.serial} "
            f"{len(self._manager)} routers "
            f"{len(self._cache.vrps())} VRPs>"
        )
