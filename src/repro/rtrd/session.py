"""Simulated routers and the session book-keeping of the daemon.

A :class:`SimulatedRouter` is one end-to-end connection: a
:class:`~repro.rpki.rtr.transport.TransportPair`, an
:class:`~repro.rpki.rtr.client.RTRClient` on the router side, and the
cache-side :class:`~repro.rpki.rtr.cache.Session` the hardened
:class:`~repro.rpki.rtr.cache.RTRCache` registered for it.  The
:class:`SessionManager` owns the population: connect/disconnect with
explicit session registration and teardown (buffers are evicted the
moment a router leaves), lag modelling (a lagging router stops
reading its socket, so notifies pile up and its serial falls behind),
and the per-router serve/poll step the daemon's dispatcher fans out.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.rpki.rtr.cache import RTRCache, Session, SessionState
from repro.rpki.rtr.client import ClientState, RTRClient
from repro.rpki.rtr.transport import TransportPair


class SimulatedRouter:
    """One simulated router connection against the daemon's cache."""

    __slots__ = ("name", "pair", "client", "session", "lag")

    def __init__(
        self,
        name: str,
        pair: TransportPair,
        client: RTRClient,
        session: Session,
    ):
        self.name = name
        self.pair = pair
        self.client = client
        self.session = session
        # Rounds this router will skip reading its socket for.  The
        # churn loop assigns and decrements it; while positive, the
        # router neither polls nor queries, so pushed notifies queue
        # up exactly as they would on an unread TCP socket.
        self.lag = 0

    @property
    def alive(self) -> bool:
        """Session still registered and not killed by a fatal error."""
        return (
            self.session.state is SessionState.ACTIVE
            and self.client.state is not ClientState.ERROR
        )

    @property
    def lagging(self) -> bool:
        return self.lag > 0

    @property
    def synchronized(self) -> bool:
        return self.client.state is ClientState.SYNCHRONISED

    @property
    def wedged(self) -> bool:
        """A query is outstanding but both pipes have drained.

        This is a desynchronized byte stream: garbage formed a
        plausible-but-unfinished frame in the cache's session buffer
        and swallowed the router's query, so neither side will ever
        send another byte.  A real router cures it with its query
        timeout — tear the connection down and reconnect.  (A lagging
        router is merely unread, not wedged.)
        """
        return (
            self.alive
            and not self.lagging
            and self.client.state is ClientState.SYNCING
            and self.pending_bytes() == 0
        )

    def pending_bytes(self) -> int:
        """Bytes queued in either direction of this connection."""
        return (
            self.pair.cache_side.pending() + self.pair.router_side.pending()
        )

    def __repr__(self) -> str:
        return (
            f"<SimulatedRouter {self.name} {self.client.state.value}/"
            f"{self.session.state.value} serial={self.client.serial}>"
        )


class SessionManager:
    """The daemon's router population over one hardened cache."""

    def __init__(self, cache: RTRCache):
        self._cache = cache
        self._routers: Dict[str, SimulatedRouter] = {}
        self._name_counter = itertools.count(1)
        self.total_connects = 0
        self.total_disconnects = 0

    @property
    def cache(self) -> RTRCache:
        return self._cache

    def __len__(self) -> int:
        return len(self._routers)

    def __contains__(self, name: str) -> bool:
        return name in self._routers

    def get(self, name: str) -> Optional[SimulatedRouter]:
        return self._routers.get(name)

    def routers(self) -> List[SimulatedRouter]:
        """Connection-order list of the current population."""
        return list(self._routers.values())

    def connect(self, name: Optional[str] = None) -> SimulatedRouter:
        """Open a fresh connection: new transports, session, client."""
        if name is None:
            name = f"router-{next(self._name_counter)}"
        if name in self._routers:
            raise ValueError(f"router {name!r} is already connected")
        pair = TransportPair()
        session = self._cache.register(pair.cache_side)
        client = RTRClient(pair.router_side, trust_anchor="rtr")
        router = SimulatedRouter(name, pair, client, session)
        self._routers[name] = router
        self.total_connects += 1
        client.start()
        return router

    def disconnect(self, name: str) -> SimulatedRouter:
        """Tear a connection down; the cache evicts its buffers."""
        router = self._routers.pop(name)
        self._cache.unregister(router.session)
        self.total_disconnects += 1
        return router

    def revive(self, router: SimulatedRouter) -> SimulatedRouter:
        """Restart the router software on an existing connection.

        Stale cache replies still queued for the dead client are
        dropped (the old process never read them), a fresh client
        takes over the router side, and its opening Reset Query is
        what lifts the cache-side quarantine — the frame-aligned
        revive path, as opposed to the disconnect/reconnect path that
        tears the session down entirely.
        """
        router.pair.router_side.receive()
        router.client = RTRClient(router.pair.router_side, trust_anchor="rtr")
        router.lag = 0
        router.client.start()
        return router

    def step_router(self, router: SimulatedRouter) -> None:
        """One serve/poll exchange for a single router.

        The cache side always serves (it cannot know the router is
        slow); a lagging router skips its read, leaving responses and
        notifies queued on its side of the pipe.
        """
        self._cache.serve_session(router.session)
        if not router.lagging:
            router.client.poll()

    # -- population views ---------------------------------------------------

    def alive(self) -> List[SimulatedRouter]:
        return [r for r in self._routers.values() if r.alive]

    def synchronized(self) -> List[SimulatedRouter]:
        return [r for r in self._routers.values() if r.synchronized]

    def quarantined(self) -> List[SimulatedRouter]:
        return [
            r
            for r in self._routers.values()
            if r.session.state is SessionState.QUARANTINED
        ]

    def pending_bytes(self) -> int:
        return sum(r.pending_bytes() for r in self._routers.values())

    def __repr__(self) -> str:
        return (
            f"<SessionManager {len(self._routers)} routers "
            f"({len(self.synchronized())} synchronized)>"
        )
