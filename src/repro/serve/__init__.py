"""The concurrent validation query service (``repro.serve``).

The ROADMAP's north star serves RPKI answers to heavy live traffic;
this package is that serving layer over a *completed* study.  A
:class:`ServingIndex` (:mod:`repro.serve.index`) freezes the study's
state — VRP trie, re-indexed table dump, per-domain funnel records,
input digests — into an immutable structure answering four query
types; :class:`QueryService` (:mod:`repro.serve.service`) dispatches
request batches over it serially or on a thread pool with per-batch
instrument isolation and fault-profile degradation (answers get
``stale``/``degraded`` markers, never errors);
:mod:`repro.serve.loadgen` generates seeded Zipf-skewed query streams
over the Alexa ranking; :mod:`repro.serve.script` parses the CLI's
query-script files.
"""

from repro.serve.errors import QueryError, ServeError
from repro.serve.index import (
    DomainAnswer,
    LookupAnswer,
    RankSliceAnswer,
    ServingIndex,
    ValidateAnswer,
)
from repro.serve.loadgen import DEFAULT_MIX, LoadProfile, generate_load
from repro.serve.script import parse_query, parse_script
from repro.serve.service import (
    MARKER_DEGRADED,
    MARKER_STALE,
    QUERY_KINDS,
    SERVE_DEGRADED_METRIC,
    SERVE_FAULTS_METRIC,
    SERVE_LATENCY_METRIC,
    SERVE_MODES,
    SERVE_QUERIES_METRIC,
    SERVE_VERDICTS_METRIC,
    Query,
    QueryService,
    Response,
    ServeConfig,
    percentile,
    summarize_responses,
)

__all__ = [
    "DEFAULT_MIX",
    "DomainAnswer",
    "LoadProfile",
    "LookupAnswer",
    "MARKER_DEGRADED",
    "MARKER_STALE",
    "QUERY_KINDS",
    "Query",
    "QueryError",
    "QueryService",
    "RankSliceAnswer",
    "Response",
    "SERVE_DEGRADED_METRIC",
    "SERVE_FAULTS_METRIC",
    "SERVE_LATENCY_METRIC",
    "SERVE_MODES",
    "SERVE_QUERIES_METRIC",
    "SERVE_VERDICTS_METRIC",
    "ServeConfig",
    "ServeError",
    "ServingIndex",
    "ValidateAnswer",
    "generate_load",
    "parse_query",
    "parse_script",
    "percentile",
    "summarize_responses",
]
