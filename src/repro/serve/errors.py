"""Serving-layer errors."""

from __future__ import annotations

from repro.errors import ReproError


class ServeError(ReproError):
    """Base of every serving-layer error."""


class QueryError(ServeError):
    """A query is malformed (bad kind, missing argument, bad script line)."""
