"""The immutable serving index over one completed study.

A :class:`ServingIndex` freezes everything a finished measurement run
knows — the VRP set (trie-indexed), the collector table dump
(re-indexed for longest-match lookup), and every per-domain funnel
record — into one read-only structure that answers the four query
types of the serving layer:

* :meth:`validate` — RFC 6811 verdict for a (prefix, origin) pair
  plus the covering ROAs it was judged against,
* :meth:`lookup` — longest-match route for an IP address with the
  origin ASes announcing it and their per-origin verdicts,
* :meth:`domain` — the stored DNS→prefix→ROA funnel record of one
  ranked domain, exactly as the pipeline measured it,
* :meth:`rank_slice` — aggregate exposure statistics over a rank
  window of the Alexa list.

Answers are snapshots of the index's state at build time; the index
is never mutated after construction, which is what makes it safe to
hammer from a thread pool without locks.  Staleness is a property of
the *pair* (index, current world): :meth:`stale_against` compares the
input digests captured at build time — the same zone/dump/VRP
fingerprints the snapshot cache keys artifacts by — against a study's
current inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.bgp.collector import TableDumpEntry
from repro.core.pipeline import CacheConfig, RunConfig, StudyResult
from repro.core.records import DomainMeasurement
from repro.net import ASN, Address, Prefix, PrefixTrie
from repro.rpki.vrp import OriginValidation, VRP, ValidatedPayloads

# How the index was populated, recorded for reports.
SOURCE_STUDY = "study"
SOURCE_CACHE = "cache"


@dataclass(frozen=True)
class ValidateAnswer:
    """RFC 6811 verdict plus the covering ROAs (shortest first)."""

    prefix: Prefix
    origin: ASN
    state: OriginValidation
    covering: Tuple[VRP, ...]

    @property
    def covered(self) -> bool:
        return self.state is not OriginValidation.NOT_FOUND


@dataclass(frozen=True)
class LookupAnswer:
    """Longest-match route for an address, with per-origin verdicts.

    ``origins`` are the distinct origin ASes announcing the matched
    prefix, AS_SET rows excluded exactly as funnel step 3 excludes
    them (RFC 6472); ``verdicts`` validates the matched prefix
    against each origin.  An address no table row covers answers with
    ``prefix=None`` and empty tuples.
    """

    address: Address
    prefix: Optional[Prefix]
    origins: Tuple[ASN, ...]
    verdicts: Tuple[Tuple[ASN, OriginValidation], ...]
    as_set_excluded: int = 0

    @property
    def routed(self) -> bool:
        return self.prefix is not None


@dataclass(frozen=True)
class DomainAnswer:
    """The stored funnel record of one ranked domain (or a miss)."""

    name: str
    found: bool
    measurement: Optional[DomainMeasurement] = None

    @property
    def rank(self) -> Optional[int]:
        return self.measurement.rank if self.measurement is not None else None


@dataclass(frozen=True)
class RankSliceAnswer:
    """Aggregate exposure statistics over one rank window."""

    first: int
    last: int
    domains: int
    usable: int
    rpki_enabled: int
    fully_covered: int
    degraded: int
    pairs: int
    covered_pairs: int
    # (state value, count) over every domain's combined pairs, sorted.
    verdicts: Tuple[Tuple[str, int], ...]

    @property
    def coverage(self) -> float:
        """Fraction of pairs the RPKI says anything about."""
        if not self.pairs:
            return 0.0
        return self.covered_pairs / self.pairs


class ServingIndex:
    """Read-only query index over one completed study's state."""

    def __init__(
        self,
        payloads: ValidatedPayloads,
        routes: PrefixTrie,
        measurements: List[DomainMeasurement],
        route_count: int = 0,
        digests: Optional[Dict[str, str]] = None,
        source: str = SOURCE_STUDY,
        warm: bool = False,
    ):
        self._payloads = payloads
        self._routes = routes
        self._measurements: Tuple[DomainMeasurement, ...] = tuple(
            sorted(measurements, key=lambda m: m.rank)
        )
        self._by_name: Dict[str, DomainMeasurement] = {
            m.domain.name: m for m in self._measurements
        }
        self._route_count = route_count
        self.digests: Dict[str, str] = dict(digests or {})
        self.source = source
        self.warm = warm

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        study,
        result: StudyResult,
        source: str = SOURCE_STUDY,
        warm: bool = False,
    ) -> "ServingIndex":
        """Freeze a study's inputs and its result into an index.

        The table dump is re-indexed into a fresh trie so lookups are
        longest-match over *entries* (the dump's own trie is shared
        with the live pipeline; the index never borrows mutable
        state).  Input digests are captured with the snapshot cache's
        fingerprint functions, making staleness checks byte-compatible
        with cache invalidation.
        """
        from repro.cache.fingerprint import (
            dump_digest,
            vrp_digest,
            vrp_items,
            zone_digest,
        )

        routes: PrefixTrie = PrefixTrie()
        route_count = 0
        for entry in study.table_dump:
            routes.insert(entry.prefix, entry)
            route_count += 1
        digests = {
            "zone": zone_digest(study.resolver.namespace),
            "dump": dump_digest(study.table_dump),
            "vrps": vrp_digest(vrp_items(study.payloads)),
        }
        return cls(
            payloads=study.payloads,
            routes=routes,
            measurements=result.by_rank(),
            route_count=route_count,
            digests=digests,
            source=source,
            warm=warm,
        )

    @classmethod
    def from_cache(
        cls,
        directory: str,
        study,
        config: Optional[RunConfig] = None,
    ) -> "ServingIndex":
        """Build an index through the snapshot cache under ``directory``.

        Runs the study cache-backed: with a store whose digests match
        the study's inputs this recomputes nothing (a fully warm
        load), otherwise the run fills the store for next time.  The
        returned index records whether it was served warm.
        """
        from repro.cache.fingerprint import config_fingerprint
        from repro.cache.store import load_digests

        run_config = config or RunConfig()
        if run_config.cache is None or run_config.cache.directory != directory:
            run_config = replace(run_config, cache=CacheConfig(directory))
        stored = load_digests(directory)
        result = study.run(config=run_config)
        index = cls.build(study, result, source=SOURCE_CACHE)
        warm = stored is not None and (
            stored["zone"] == index.digests["zone"]
            and stored["dump"] == index.digests["dump"]
            and stored["vrps"] == index.digests["vrps"]
            and stored["config"] == config_fingerprint(run_config)
        )
        index.warm = warm
        return index

    def stale_against(self, study) -> bool:
        """Would this index misrepresent ``study``'s current inputs?

        True when any input digest (zone, dump, VRP set) has drifted
        since the index was built — e.g. the world re-hosted domains
        under a continuous campaign while the index kept serving.
        """
        from repro.cache.fingerprint import (
            dump_digest,
            vrp_digest,
            vrp_items,
            zone_digest,
        )

        return self.digests != {
            "zone": zone_digest(study.resolver.namespace),
            "dump": dump_digest(study.table_dump),
            "vrps": vrp_digest(vrp_items(study.payloads)),
        }

    # -- the four query types ------------------------------------------------

    def validate(
        self, prefix: Prefix, origin: Union[int, ASN]
    ) -> ValidateAnswer:
        """RFC 6811 origin validation with its evidence."""
        state, covering = self._payloads.validate_with_covering(
            prefix, origin
        )
        return ValidateAnswer(
            prefix=prefix,
            origin=ASN(int(origin)),
            state=state,
            covering=tuple(covering),
        )

    def lookup(self, address: Address) -> LookupAnswer:
        """Longest-match route lookup with per-origin verdicts."""
        match = self._routes.lookup_longest(address)
        if match is None:
            return LookupAnswer(
                address=address, prefix=None, origins=(), verdicts=()
            )
        prefix, entries = match
        origins: List[ASN] = []
        as_set_excluded = 0
        for entry in entries:
            origin = entry.origin
            if origin is None:
                as_set_excluded += 1
            elif origin not in origins:
                origins.append(origin)
        ordered = tuple(sorted(origins))
        verdicts = tuple(
            (origin, self._payloads.validate_origin(prefix, origin))
            for origin in ordered
        )
        return LookupAnswer(
            address=address,
            prefix=prefix,
            origins=ordered,
            verdicts=verdicts,
            as_set_excluded=as_set_excluded,
        )

    def domain(self, name: str) -> DomainAnswer:
        """The stored funnel record for ``name`` (www form accepted)."""
        measurement = self._by_name.get(name)
        if measurement is None and name.startswith("www."):
            measurement = self._by_name.get(name[len("www."):])
        if measurement is None:
            return DomainAnswer(name=name, found=False)
        return DomainAnswer(name=name, found=True, measurement=measurement)

    def rank_slice(self, first: int, last: int) -> RankSliceAnswer:
        """Aggregate exposure over ranks ``first..last`` (inclusive)."""
        if first > last:
            raise ValueError(f"empty rank slice [{first}, {last}]")
        usable = rpki_enabled = fully_covered = degraded = 0
        pairs = covered_pairs = 0
        verdicts: Dict[str, int] = {}
        window = [
            m for m in self._measurements if first <= m.rank <= last
        ]
        for measurement in window:
            if measurement.usable:
                usable += 1
            if measurement.rpki_enabled:
                rpki_enabled += 1
            if measurement.degraded:
                degraded += 1
            combined = measurement.combined_pairs()
            if combined and all(pair.covered for pair in combined):
                fully_covered += 1
            for pair in combined:
                pairs += 1
                if pair.covered:
                    covered_pairs += 1
                key = pair.state.value
                verdicts[key] = verdicts.get(key, 0) + 1
        return RankSliceAnswer(
            first=first,
            last=last,
            domains=len(window),
            usable=usable,
            rpki_enabled=rpki_enabled,
            fully_covered=fully_covered,
            degraded=degraded,
            pairs=pairs,
            covered_pairs=covered_pairs,
            verdicts=tuple(sorted(verdicts.items())),
        )

    # -- introspection -------------------------------------------------------

    @property
    def measurements(self) -> Tuple[DomainMeasurement, ...]:
        """Every stored funnel record, rank-ordered."""
        return self._measurements

    @property
    def vrp_count(self) -> int:
        return len(self._payloads)

    @property
    def route_count(self) -> int:
        return self._route_count

    @property
    def max_rank(self) -> int:
        return self._measurements[-1].rank if self._measurements else 0

    def __len__(self) -> int:
        return len(self._measurements)

    def __repr__(self) -> str:
        return (
            f"<ServingIndex {len(self)} domains, {self.vrp_count} VRPs, "
            f"{self.route_count} routes, source={self.source}>"
        )
