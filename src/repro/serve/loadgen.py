"""Seeded, Zipf-skewed query load over the Alexa ranking.

The paper's population is a popularity-ranked domain list, and real
resolver/validator traffic concentrates on the head of that list.
The generator reproduces that shape: a domain's probability of being
queried is proportional to ``1 / rank^s`` (Zipf with exponent ``s``),
so rank 1 dominates and the tail thins out.  Every draw comes from a
:class:`~repro.crypto.rng.DeterministicRNG` fork, so a (seed,
profile) pair always generates the same query list — which is what
lets CI pin the verdict histogram of a load run.

Queries are derived from the chosen domain's *stored measurement*:
its name for ``domain`` queries, one of its resolved addresses for
``lookup``, one of its (prefix, origin) pairs for ``validate``, and a
rank window around it for ``rank_slice``.  Domains whose measurement
lacks addresses or pairs fall back to synthetic-but-deterministic
targets, so misses and NOT_FOUNDs stay represented.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.rng import DeterministicRNG
from repro.net import Address, Prefix
from repro.net.addr import IPV4
from repro.serve.index import ServingIndex
from repro.serve.service import Query

# Share of each query kind in the generated stream; validate/lookup
# dominate (they are what a router-facing service answers), domain
# and rank_slice model operator dashboards.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("validate", 0.35),
    ("lookup", 0.30),
    ("domain", 0.25),
    ("rank_slice", 0.10),
)


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one generated load run."""

    queries: int = 1_000
    seed: int = 2015
    zipf_exponent: float = 1.1
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    slice_width: int = 100  # rank_slice window size

    def __post_init__(self):
        if self.queries < 0:
            raise ValueError("queries must be >= 0")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be > 0")
        if self.slice_width < 1:
            raise ValueError("slice_width must be >= 1")
        total = sum(weight for _kind, weight in self.mix)
        if not self.mix or total <= 0:
            raise ValueError("mix must carry positive weight")


def _zipf_cumulative(count: int, exponent: float) -> List[float]:
    """Cumulative unnormalised Zipf weights for ranks 1..count."""
    cumulative: List[float] = []
    total = 0.0
    for rank in range(1, count + 1):
        total += 1.0 / rank ** exponent
        cumulative.append(total)
    return cumulative


def generate_load(
    index: ServingIndex, profile: LoadProfile
) -> List[Query]:
    """The seeded query list one profile generates over one index."""
    measurements = index.measurements
    if not measurements:
        return []
    rng = DeterministicRNG(profile.seed).fork("serve.loadgen")
    cumulative = _zipf_cumulative(len(measurements), profile.zipf_exponent)
    scale = cumulative[-1]
    kinds = [kind for kind, _weight in profile.mix]
    kind_cumulative: List[float] = []
    running = 0.0
    for _kind, weight in profile.mix:
        running += weight
        kind_cumulative.append(running)
    queries: List[Query] = []
    for _ in range(profile.queries):
        position = bisect.bisect_left(
            cumulative, rng.random() * scale
        )
        measurement = measurements[min(position, len(measurements) - 1)]
        kind = kinds[
            bisect.bisect_left(
                kind_cumulative, rng.random() * kind_cumulative[-1]
            )
        ]
        queries.append(_make_query(rng, index, measurement, kind, profile))
    return queries


def _make_query(
    rng: DeterministicRNG, index, measurement, kind: str, profile
) -> Query:
    if kind == "domain":
        return Query.domain(measurement.domain.name)
    if kind == "rank_slice":
        first = max(1, measurement.rank - profile.slice_width // 2)
        last = min(
            max(index.max_rank, 1), first + profile.slice_width - 1
        )
        return Query.rank_slice(first, last)
    if kind == "lookup":
        addresses = list(measurement.www.addresses) + list(
            measurement.plain.addresses
        )
        if addresses:
            return Query.lookup(rng.choice(addresses))
        # Unresolvable domain: probe a deterministic random address so
        # unrouted lookups stay in the stream.
        return Query.lookup(Address(IPV4, rng.getrandbits(32)))
    pairs = measurement.combined_pairs()
    if pairs:
        pair = rng.choice(pairs)
        return Query.validate(pair.prefix, pair.origin)
    # No measured pairs: validate a synthetic /24 with a random
    # origin, exercising the NOT_FOUND/INVALID paths.
    address = Address(IPV4, rng.getrandbits(32))
    prefix = Prefix.from_address(address, 24)
    return Query.validate(prefix, rng.randint(1, 65_000))
