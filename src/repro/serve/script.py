"""Parsing query scripts for the ``serve`` CLI subcommand.

A query script is a plain-text file, one query per line::

    # comments and blank lines are skipped
    validate 93.184.216.0/24 64500
    lookup 93.184.216.34
    domain example.com
    rank_slice 1 100

Malformed lines raise :class:`~repro.serve.errors.QueryError` with
the line number — a script is configuration, not traffic, so it
fails loudly instead of degrading.
"""

from __future__ import annotations

from typing import List

from repro.net import parse_address, parse_prefix
from repro.net.errors import NetError
from repro.serve.errors import QueryError
from repro.serve.service import Query


def parse_query(text: str) -> Query:
    """One script line (already stripped of comments) to a Query."""
    parts = text.split()
    if not parts:
        raise QueryError("empty query line")
    kind, args = parts[0], parts[1:]
    try:
        if kind == "validate":
            if len(args) != 2:
                raise QueryError("validate takes <prefix> <origin-asn>")
            return Query.validate(parse_prefix(args[0]), int(args[1]))
        if kind == "lookup":
            if len(args) != 1:
                raise QueryError("lookup takes <ip-address>")
            return Query.lookup(parse_address(args[0]))
        if kind == "domain":
            if len(args) != 1:
                raise QueryError("domain takes <name>")
            return Query.domain(args[0])
        if kind == "rank_slice":
            if len(args) != 2:
                raise QueryError("rank_slice takes <first> <last>")
            return Query.rank_slice(int(args[0]), int(args[1]))
    except (NetError, ValueError) as error:
        raise QueryError(f"bad {kind} arguments {args}: {error}") from error
    raise QueryError(
        f"unknown query kind {kind!r}; "
        "known: validate, lookup, domain, rank_slice"
    )


def parse_script(text: str) -> List[Query]:
    """Every query in a script body, in line order."""
    queries: List[Query] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            queries.append(parse_query(line))
        except QueryError as error:
            raise QueryError(f"line {number}: {error}") from error
    return queries
