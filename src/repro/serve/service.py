"""The request/response layer over a :class:`ServingIndex`.

:class:`QueryService` turns the index's four query methods into a
dispatchable request stream:

* **deterministic batched dispatch** — a query list is cut into
  contiguous batches with the executor's planner
  (:func:`repro.exec.sharding.plan_batches`); the threaded backend
  runs batches on a pool and reassembles responses in batch order, so
  serial and threaded dispatch return identical response lists;
* **per-batch instrument isolation** — each threaded batch records
  into its own scoped registry/collector
  (:func:`repro.obs.runtime.thread_scope`), merged parent-side in
  batch order, so concurrent batches never interleave into one
  instrument and counter totals match the serial run exactly;
* **fault-profile degradation** — a :class:`~repro.faults.FaultPlan`
  carrying ``serve.*`` rates injects query-path faults keyed on the
  query's canonical string; the service catches the typed
  :class:`~repro.faults.InjectedServeFault` and serves the answer
  anyway, *marked* ``stale`` or ``degraded``, never erroring.  The
  schedule is a pure function of (plan seed, query), independent of
  batching and threading;
* **simulated per-query IO** — ``ServeConfig.simulated_io_s`` models
  the network hop of a live deployment (the sleep releases the GIL,
  which is what lets the threaded backend overlap queries; the pure
  in-memory evaluation itself is GIL-bound, same trade-off the study
  executor documents for its thread backend).
"""

from __future__ import annotations

import concurrent.futures
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exec.sharding import plan_batches
from repro.faults.injectors import InjectedServeFault
from repro.faults.plan import SERVE_STALE, SERVE_TIMEOUT, FaultPlan
from repro.net import ASN, Address, Prefix
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    metrics,
    observability_enabled,
    thread_scope,
    tracer,
)
from repro.obs.tracing import TraceCollector
from repro.obs.window import SLOTracker, estimate_quantiles
from repro.serve.errors import QueryError
from repro.serve.index import (
    LookupAnswer,
    ServingIndex,
    ValidateAnswer,
)

QUERY_KINDS: Tuple[str, ...] = ("validate", "lookup", "domain", "rank_slice")

SERVE_MODES: Tuple[str, ...] = ("auto", "serial", "thread")

# Degradation markers a response can carry ("" = healthy).
MARKER_STALE = "stale"
MARKER_DEGRADED = "degraded"

# Which marker each injected serve fault maps to, in the order the
# guard consults the plan (first firing kind wins).
_FAULT_MARKERS: Tuple[Tuple[str, str], ...] = (
    (SERVE_STALE, MARKER_STALE),
    (SERVE_TIMEOUT, MARKER_DEGRADED),
)

SERVE_QUERIES_METRIC = "ripki_serve_queries_total"
SERVE_LATENCY_METRIC = "ripki_serve_latency_seconds"
SERVE_VERDICTS_METRIC = "ripki_serve_verdicts_total"
SERVE_DEGRADED_METRIC = "ripki_serve_degraded_total"
SERVE_FAULTS_METRIC = "ripki_serve_faults_injected_total"

_METRIC_HELP = {
    SERVE_QUERIES_METRIC: "Queries answered, by query kind",
    SERVE_LATENCY_METRIC: "Per-query service latency, by query kind",
    SERVE_VERDICTS_METRIC:
        "RFC 6811 verdicts returned by validate/lookup answers",
    SERVE_DEGRADED_METRIC:
        "Answers served with a degradation marker instead of an error",
    SERVE_FAULTS_METRIC: "Injected serve-path faults, by kind",
}


@dataclass(frozen=True)
class Query:
    """One request against the index, in canonical form.

    Build through the per-kind constructors; the generic constructor
    validates that exactly the fields the kind needs are present.
    """

    kind: str
    prefix: Optional[Prefix] = None
    origin: Optional[ASN] = None
    address: Optional[Address] = None
    name: Optional[str] = None
    first: Optional[int] = None
    last: Optional[int] = None

    def __post_init__(self):
        if self.kind not in QUERY_KINDS:
            raise QueryError(
                f"unknown query kind {self.kind!r}; known: {QUERY_KINDS}"
            )
        needed = {
            "validate": ("prefix", "origin"),
            "lookup": ("address",),
            "domain": ("name",),
            "rank_slice": ("first", "last"),
        }[self.kind]
        for attr in needed:
            if getattr(self, attr) is None:
                raise QueryError(
                    f"{self.kind} query needs {needed}, missing {attr!r}"
                )
        if self.kind == "rank_slice" and self.first > self.last:
            raise QueryError(
                f"empty rank slice [{self.first}, {self.last}]"
            )

    @classmethod
    def validate(cls, prefix: Prefix, origin: Union[int, ASN]) -> "Query":
        return cls(kind="validate", prefix=prefix, origin=ASN(int(origin)))

    @classmethod
    def lookup(cls, address: Address) -> "Query":
        return cls(kind="lookup", address=address)

    @classmethod
    def domain(cls, name: str) -> "Query":
        return cls(kind="domain", name=name)

    @classmethod
    def rank_slice(cls, first: int, last: int) -> "Query":
        return cls(kind="rank_slice", first=first, last=last)

    def key(self) -> str:
        """Canonical site key — the fault plan hashes this string."""
        if self.kind == "validate":
            return f"validate|{self.prefix}|{int(self.origin)}"
        if self.kind == "lookup":
            return f"lookup|{self.address}"
        if self.kind == "domain":
            return f"domain|{self.name}"
        return f"rank_slice|{self.first}|{self.last}"

    def __str__(self) -> str:
        return self.key()


@dataclass(frozen=True)
class Response:
    """One answered query.

    ``marker`` is ``""`` for a healthy answer, ``"stale"`` or
    ``"degraded"`` for an answer served through a fault — the answer
    itself is always present.  ``elapsed_s`` is wall time and is
    excluded from equality so serial and threaded response lists
    compare equal.
    """

    query: Query
    answer: object
    marker: str = ""
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return not self.marker


@dataclass(frozen=True)
class ServeConfig:
    """Every dispatch knob of one :class:`QueryService`."""

    workers: int = 1
    mode: str = "auto"                 # auto | serial | thread
    batch_size: Optional[int] = None
    faults: Optional[FaultPlan] = None
    simulated_io_s: float = 0.0
    assume_stale: bool = False         # mark every answer stale
    # Windowed SLO accounting: every answered query feeds the
    # tracker's per-kind latency objective ("serve.<kind>"), a marked
    # answer counts against the error budget.  Excluded from config
    # equality — the tracker is a live accumulator, not a knob.
    slo: Optional[SLOTracker] = field(default=None, compare=False)

    def __post_init__(self):
        if self.mode not in SERVE_MODES:
            raise ValueError(
                f"mode must be one of {SERVE_MODES}, got {self.mode!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.simulated_io_s < 0:
            raise ValueError("simulated_io_s must be >= 0")

    @property
    def resolved_mode(self) -> str:
        if self.mode == "auto":
            return "thread" if self.workers > 1 else "serial"
        return self.mode


class QueryService:
    """Batched, instrumented, fault-aware dispatch over an index."""

    def __init__(
        self, index: ServingIndex, config: Optional[ServeConfig] = None
    ):
        self._index = index
        self.config = config or ServeConfig()

    # -- single-query path ---------------------------------------------------

    def query(self, query: Query) -> Response:
        """Answer one query on the calling thread.

        Records into whatever instruments are active on this thread —
        callers hammering the service from their own threads wrap
        each thread in :func:`repro.obs.runtime.thread_scope` and
        merge, exactly like the batched dispatcher does internally.
        """
        return self._evaluate(query)

    # -- batched dispatch ----------------------------------------------------

    def run(self, queries: Iterable[Query]) -> List[Response]:
        """Answer every query; responses in request order.

        Serial and threaded dispatch return identical lists (and
        identical counter totals): batches are contiguous slices, the
        threaded backend reassembles them in batch order, and every
        per-query decision — answer and degradation marker alike — is
        a pure function of the index, the config, and the query.
        """
        ordered = list(queries)
        batches = plan_batches(
            ordered, self.config.batch_size, self.config.workers
        )
        mode = self.config.resolved_mode
        with tracer().span(
            "serve.run", queries=len(ordered), mode=mode
        ) as root:
            if (
                mode == "serial"
                or self.config.workers <= 1
                or len(batches) <= 1
            ):
                responses: List[Response] = []
                for batch in batches:
                    responses.extend(
                        self._run_batch(batch.index, batch.items)
                    )
                return responses
            return self._run_threaded(batches, root)

    def _run_threaded(self, batches, root) -> List[Response]:
        observe = observability_enabled()
        registry = metrics()
        trace = tracer()
        outcomes: Dict[int, tuple] = {}
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="ripki-serve",
        ) as pool:
            futures = {
                pool.submit(
                    self._run_batch_scoped, batch.index, batch.items, observe
                ): batch.index
                for batch in batches
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                outcomes[index] = future.result()
        responses: List[Response] = []
        parent_id = root.span_id if root is not None else None
        for index in sorted(outcomes):
            batch_responses, batch_registry, batch_collector = outcomes[index]
            responses.extend(batch_responses)
            if observe:
                if batch_registry is not None and registry.enabled:
                    registry.merge(batch_registry)
                if batch_collector is not None:
                    trace.absorb(
                        batch_collector.spans(),
                        parent_id=parent_id,
                        dropped=batch_collector.dropped,
                    )
        return responses

    def _run_batch_scoped(self, index: int, items, observe: bool):
        """One batch under its own thread-local instruments."""
        registry = MetricsRegistry() if observe else None
        collector = TraceCollector() if observe else None
        with thread_scope(registry, collector):
            responses = self._run_batch(index, items)
        return responses, registry, collector

    def _run_batch(self, index: int, items) -> List[Response]:
        with tracer().span("serve.batch", batch=index, queries=len(items)):
            return [self._evaluate(query) for query in items]

    # -- one query -----------------------------------------------------------

    def _evaluate(self, query: Query) -> Response:
        started = time.perf_counter()
        marker = self._guard(query)
        if self.config.simulated_io_s > 0:
            time.sleep(self.config.simulated_io_s)
        answer = self._answer(query)
        elapsed = time.perf_counter() - started
        self._record(query, answer, marker, elapsed)
        return Response(
            query=query, answer=answer, marker=marker, elapsed_s=elapsed
        )

    def _guard(self, query: Query) -> str:
        """Consult the fault plan; a caught fault becomes a marker."""
        if self.config.assume_stale:
            return MARKER_STALE
        plan = self.config.faults
        if plan is None:
            return ""
        key = query.key()
        try:
            for kind, _marker in _FAULT_MARKERS:
                if plan.should_fail(kind, key, 0):
                    raise InjectedServeFault(kind, key)
        except InjectedServeFault as fault:
            metrics().counter(
                SERVE_FAULTS_METRIC,
                _METRIC_HELP[SERVE_FAULTS_METRIC],
                labelnames=("kind",),
            ).labels(kind=fault.kind).inc()
            return dict(_FAULT_MARKERS)[fault.kind]
        return ""

    def _answer(self, query: Query):
        if query.kind == "validate":
            return self._index.validate(query.prefix, query.origin)
        if query.kind == "lookup":
            return self._index.lookup(query.address)
        if query.kind == "domain":
            return self._index.domain(query.name)
        return self._index.rank_slice(query.first, query.last)

    def _record(
        self, query: Query, answer, marker: str, elapsed: float
    ) -> None:
        counters = metrics()
        counters.counter(
            SERVE_QUERIES_METRIC,
            _METRIC_HELP[SERVE_QUERIES_METRIC],
            labelnames=("kind",),
        ).labels(kind=query.kind).inc()
        counters.histogram(
            SERVE_LATENCY_METRIC,
            _METRIC_HELP[SERVE_LATENCY_METRIC],
            labelnames=("kind",),
        ).labels(kind=query.kind).observe(elapsed)
        for state in _answer_states(answer):
            counters.counter(
                SERVE_VERDICTS_METRIC,
                _METRIC_HELP[SERVE_VERDICTS_METRIC],
                labelnames=("state",),
            ).labels(state=state).inc()
        if marker:
            counters.counter(
                SERVE_DEGRADED_METRIC,
                _METRIC_HELP[SERVE_DEGRADED_METRIC],
                labelnames=("marker",),
            ).labels(marker=marker).inc()
        if self.config.slo is not None:
            self.config.slo.observe(
                f"serve.{query.kind}", elapsed, ok=not marker
            )


def _answer_states(answer) -> List[str]:
    """The RFC 6811 states an answer asserts (for the verdict counter)."""
    if isinstance(answer, ValidateAnswer):
        return [answer.state.value]
    if isinstance(answer, LookupAnswer):
        return [state.value for _origin, state in answer.verdicts]
    return []


# -- response summaries -------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in 0..100) of a value list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _kind_summary(latencies: List[float]) -> Dict[str, object]:
    """One kind's count/p50/p99 via the shared bucket estimator.

    The latencies pass through the registry's fixed histogram bounds
    and :func:`repro.obs.window.quantile_from_buckets` — the *same*
    estimator the windowed SLO gauges use — so this table and the
    ``ripki_serve_latency_*``/``ripki_slo_latency_*`` series can
    never disagree about a quantile.
    """
    p50, p99 = estimate_quantiles(latencies, (0.50, 0.99))
    return {
        "count": len(latencies),
        "p50_ms": round(p50 * 1000, 3),
        "p99_ms": round(p99 * 1000, 3),
    }


def summarize_responses(
    responses: Sequence[Response], elapsed_s: Optional[float] = None
) -> Dict[str, object]:
    """JSON-ready latency/verdict summary of one dispatched run.

    The CLI's closing table, the benchmark's ``BENCH_serve.json``,
    and the CI smoke checks all consume this one shape.  Quantiles
    are bucket-estimated (see :func:`_kind_summary`), matching the
    live Prometheus series bucket for bucket.
    """
    by_kind: Dict[str, List[float]] = {}
    verdicts: Dict[str, int] = {}
    degraded: Dict[str, int] = {}
    for response in responses:
        by_kind.setdefault(response.query.kind, []).append(
            response.elapsed_s
        )
        for state in _answer_states(response.answer):
            verdicts[state] = verdicts.get(state, 0) + 1
        if response.marker:
            degraded[response.marker] = degraded.get(response.marker, 0) + 1
    summary: Dict[str, object] = {
        "queries": len(responses),
        "by_kind": {
            kind: _kind_summary(latencies)
            for kind, latencies in sorted(by_kind.items())
        },
        "verdicts": dict(sorted(verdicts.items())),
        "degraded": dict(sorted(degraded.items())),
    }
    if elapsed_s is not None:
        summary["elapsed_s"] = round(elapsed_s, 3)
        summary["qps"] = (
            round(len(responses) / elapsed_s, 1) if elapsed_s > 0 else 0.0
        )
    return summary
