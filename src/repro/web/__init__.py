"""Synthetic web ecosystem.

Builds the world the measurement pipeline observes: an Alexa-style
top list, hosting organisations (webhosters, ISPs, CDNs) with address
space and AS numbers, DNS records including CDN CNAME chains, BGP
originations, and an RPKI whose deployment pattern follows the
stakeholder behaviour the paper reports (ISPs/hosters sign some ROAs,
CDNs essentially none).
"""

from repro.web.alexa import AlexaRanking, Domain
from repro.web.cdn import CDN_CATALOGUE, CDNOperator, total_cdn_ases
from repro.web.ecosystem import EcosystemConfig, WebEcosystem
from repro.web.httparchive import HTTPArchiveClassifier
from repro.web.organisations import Organisation, OrgKind

__all__ = [
    "AlexaRanking",
    "CDN_CATALOGUE",
    "CDNOperator",
    "Domain",
    "EcosystemConfig",
    "HTTPArchiveClassifier",
    "Organisation",
    "OrgKind",
    "WebEcosystem",
    "total_cdn_ases",
]
