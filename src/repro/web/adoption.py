"""Stakeholder RPKI-adoption model.

Encodes the behaviour the paper observes:

* webhosters, eyeball ISPs, and transit providers have started
  deploying RPKI (>5% of prefixes),
* CDNs create essentially no ROAs — the single exception is Internap
  with four prefixes tied to three origin ASes,
* a small share of ROAs is misconfigured (wrong origin AS or too
  strict maxLength), producing the ~0.09% *invalid* announcements
  spread evenly over the ranking.

Given the organisation list, the model builds the five RIR trust
anchors, delegates each signing organisation a CA, issues its ROAs,
publishes everything, and runs the relying party.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto import DeterministicRNG
from repro.net import ASN, Prefix
from repro.rpki import (
    CertificateAuthority,
    RelyingParty,
    Repository,
    ResourceSet,
    TrustAnchorLocator,
    ValidatedPayloads,
    ValidationReport,
)
from repro.rpki.repository import publish_ca_products
from repro.rpki.roa import ROA, issue_roa
from repro.web.cdn import catalogue_by_name
from repro.web.organisations import Organisation, OrgKind


@dataclass
class AdoptionConfig:
    """Knobs of the adoption model (defaults match the paper)."""

    hoster_adoption: float = 0.08
    eyeball_adoption: float = 0.08
    transit_adoption: float = 0.10
    tier1_adoption: float = 0.3          # DTAG, ATT et al. signed early
    signed_prefix_fraction: float = 0.55  # partial coverage within an org
    misconfig_fraction: float = 0.015    # share of ROAs that are wrong
    # Generous maxLength (/24 v4, /48 v6) keeps announced
    # more-specifics valid; strict mode pins maxLength to the prefix
    # length, the known footgun that floods the table with invalids.
    generous_max_length: bool = True
    # Section 5.2: some signing orgs pre-authorize a partner AS (DoS
    # mitigation, secret CDN backup) that never actually announces —
    # exactly the business relation the RPKI then exposes.
    backup_authorization_fraction: float = 0.15
    key_bits: int = 512
    validation_time: float = 30.0

    def adoption_for(self, kind: OrgKind) -> float:
        return {
            OrgKind.HOSTER: self.hoster_adoption,
            OrgKind.EYEBALL: self.eyeball_adoption,
            OrgKind.TRANSIT: self.transit_adoption,
            OrgKind.TIER1: self.tier1_adoption,
            OrgKind.CDN: 0.0,  # catalogue-driven, see _cdn_roas
        }[kind]


@dataclass
class AdoptionOutcome:
    """Everything the adoption model produced."""

    repository: Repository
    tals: List[TrustAnchorLocator]
    payloads: ValidatedPayloads
    report: ValidationReport
    signing_orgs: Set[str] = field(default_factory=set)
    signed_prefixes: Dict[Prefix, ASN] = field(default_factory=dict)
    misconfigured_prefixes: Set[Prefix] = field(default_factory=set)
    # Prefix -> partner AS pre-authorized but never announcing (§5.2).
    backup_authorizations: Dict[Prefix, ASN] = field(default_factory=dict)
    # Live CA objects, retained so the world engine (repro.world) can
    # keep re-signing manifests, rolling keys, and churning ROAs over
    # the same hierarchy the adoption model built.
    anchors: Dict[str, CertificateAuthority] = field(default_factory=dict)
    authorities: Dict[str, CertificateAuthority] = field(default_factory=dict)


class AdoptionModel:
    """Builds the RPKI for a population of organisations."""

    def __init__(self, config: AdoptionConfig, rng: DeterministicRNG):
        self._config = config
        self._rng = rng.fork("adoption")
        self._roa_counter = 0

    def build(self, organisations: List[Organisation]) -> AdoptionOutcome:
        config = self._config
        anchors: Dict[str, CertificateAuthority] = {}
        repository = Repository()
        tals: List[TrustAnchorLocator] = []
        rir_names = sorted({org.rir for org in organisations})
        for rir in rir_names:
            anchor = CertificateAuthority.create_trust_anchor(
                rir, self._rng.fork(f"rir:{rir}"), key_bits=config.key_bits
            )
            anchors[rir] = anchor
            repository.add_trust_anchor(anchor.certificate)
            tals.append(TrustAnchorLocator.for_authority(anchor))

        outcome = AdoptionOutcome(
            repository=repository,
            tals=tals,
            payloads=ValidatedPayloads(),
            report=ValidationReport(),
            anchors=anchors,
        )

        # Partner pool for backup authorizations: transit providers
        # (think external DoS-mitigation services).
        partner_asns = [
            asn
            for org in organisations
            if org.kind is OrgKind.TRANSIT
            for asn in org.asns
        ]

        # Decide which organisations sign and issue their ROAs.
        pending: List[Tuple[CertificateAuthority, List[ROA]]] = []
        for org in organisations:
            roas = self._org_roas(org, anchors, outcome, partner_asns)
            if roas is not None:
                pending.append(roas)

        for ca, roas in pending:
            publish_ca_products(
                outcome.repository, ca, roas, now=config.validation_time
            )
        for rir, anchor in anchors.items():
            publish_ca_products(
                outcome.repository, anchor, [], now=config.validation_time
            )

        relying_party = RelyingParty(outcome.repository)
        outcome.payloads, outcome.report = relying_party.validate(
            tals, now=config.validation_time
        )
        return outcome

    # -- per-organisation issuance ----------------------------------------

    def _org_roas(
        self,
        org: Organisation,
        anchors: Dict[str, CertificateAuthority],
        outcome: AdoptionOutcome,
        partner_asns: List[ASN] = (),
    ) -> Optional[Tuple[CertificateAuthority, List[ROA]]]:
        config = self._config
        org_rng = self._rng.fork(f"org:{org.name}")

        if org.kind is OrgKind.CDN:
            selection = self._cdn_signed_prefixes(org, org_rng)
        else:
            if org_rng.random() >= config.adoption_for(org.kind):
                return None
            prefixes = org.prefix_list()
            signed_count = max(
                1, round(len(prefixes) * config.signed_prefix_fraction)
            )
            selection = org_rng.sample(prefixes, min(signed_count, len(prefixes)))
        if not selection:
            return None

        outcome.signing_orgs.add(org.name)
        anchor = anchors[org.rir]
        ca = anchor.issue_child_ca(
            org.name,
            ResourceSet(prefixes=org.prefixes.keys()).with_asns(org.asns),
        )
        outcome.authorities[org.name] = ca
        misconfig_every = (
            round(1 / config.misconfig_fraction)
            if config.misconfig_fraction > 0
            else 0
        )
        roas: List[ROA] = []
        for prefix in selection:
            true_origin = org.prefixes[prefix]
            origin = true_origin
            if config.generous_max_length:
                # Operators set maxLength so their announced
                # more-specifics stay valid (/24 for IPv4, /48 for IPv6).
                max_length = max(prefix.length, 24 if prefix.family == 4 else 48)
            else:
                max_length = prefix.length
            # CDN ROAs are exempt from the misconfiguration cadence:
            # Section 4.2 pins their exact contents.
            if org.kind is not OrgKind.CDN:
                self._roa_counter += 1
            # Offset the cadence so even small populations (fewer than
            # 1/f signed prefixes) see one misconfiguration.
            if (
                org.kind is not OrgKind.CDN
                and misconfig_every
                and self._roa_counter % misconfig_every == misconfig_every // 3
            ):
                # Misconfiguration: authorize the wrong origin AS
                # (deterministic cadence so the invalid rate holds at
                # every population scale).
                origin = ASN(int(true_origin) + 1)
                outcome.misconfigured_prefixes.add(prefix)
            roas.append(issue_roa(ca, origin, [(prefix, max_length)]))
            outcome.signed_prefixes[prefix] = origin

        if (
            org.kind is not OrgKind.CDN
            and partner_asns
            and org_rng.random() < config.backup_authorization_fraction
        ):
            # Pre-authorize a partner AS on the first signed prefix —
            # the relation the RPKI "documents in advance" (§5.2).
            prefix = selection[0]
            partner = org_rng.choice(
                [asn for asn in partner_asns if asn not in org.asns]
            )
            roas.append(issue_roa(ca, partner, [(prefix, prefix.length)]))
            outcome.backup_authorizations[prefix] = partner
        return ca, roas

    def _cdn_signed_prefixes(
        self, org: Organisation, org_rng: DeterministicRNG
    ) -> List[Prefix]:
        """CDNs sign nothing — except the catalogue says otherwise.

        Internap's four prefixes must come from exactly three distinct
        origin ASes (Section 4.2).
        """
        operator = catalogue_by_name().get(org.name)
        if operator is None or operator.signed_prefixes == 0:
            return []
        by_origin: Dict[ASN, List[Prefix]] = {}
        for prefix, origin in org.prefixes.items():
            by_origin.setdefault(origin, []).append(prefix)
        origins = sorted(by_origin)[: operator.signed_origin_ases]
        selection: List[Prefix] = []
        index = 0
        while len(selection) < operator.signed_prefixes and origins:
            origin = origins[index % len(origins)]
            pool = by_origin[origin]
            position = len(selection) // len(origins)
            if position < len(pool):
                selection.append(pool[position])
            index += 1
            if index > operator.signed_prefixes * len(origins):
                break
        return selection
