"""Alexa-style top-list generation.

The paper's step (1) selects the Alexa top 1M.  The generator below
produces a deterministic ranked list of plausible domain names with a
realistic TLD mix.  Only the *rank order* matters downstream, so the
list is exchangeable with the real thing for every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.crypto import DeterministicRNG

_TLDS = [
    ("com", 48.0), ("net", 7.0), ("org", 6.0), ("de", 5.0), ("ru", 4.5),
    ("co.uk", 3.5), ("info", 2.5), ("fr", 2.0), ("it", 2.0), ("nl", 1.8),
    ("br", 1.8), ("jp", 1.7), ("pl", 1.6), ("cn", 1.5), ("in", 1.4),
    ("es", 1.2), ("io", 1.0), ("biz", 0.8), ("edu", 0.7), ("gov", 0.3),
]

_SYLLABLES = [
    "an", "ar", "be", "bo", "ca", "co", "da", "de", "di", "do", "el",
    "en", "fa", "fi", "go", "ha", "in", "ka", "ki", "la", "lo", "ma",
    "me", "mi", "mo", "na", "ne", "no", "pa", "pe", "ra", "re", "ri",
    "ro", "sa", "se", "si", "so", "ta", "te", "ti", "to", "va", "ve",
    "vi", "wa", "we", "ya", "zo",
]


@dataclass(frozen=True)
class Domain:
    """One ranked domain."""

    rank: int       # 1-based Alexa rank
    name: str       # the w/o-www form, e.g. "example.com"

    @property
    def www_name(self) -> str:
        return f"www.{self.name}"

    def __str__(self) -> str:
        return f"#{self.rank} {self.name}"


class AlexaRanking:
    """A deterministic ranked list of unique domain names."""

    def __init__(self, domains: Sequence[Domain]):
        self._domains = list(domains)

    @classmethod
    def generate(cls, count: int, rng: DeterministicRNG) -> "AlexaRanking":
        """Generate ``count`` unique ranked domains."""
        rng = rng.fork("alexa")
        tlds = [tld for tld, _w in _TLDS]
        weights = [w for _t, w in _TLDS]
        seen = set()
        domains: List[Domain] = []
        rank = 1
        while len(domains) < count:
            syllable_count = rng.randint(2, 4)
            label = "".join(
                rng.choice(_SYLLABLES) for _ in range(syllable_count)
            )
            if rng.random() < 0.08:
                label += str(rng.randint(1, 99))
            tld = rng.weighted_choice(tlds, weights)
            name = f"{label}.{tld}"
            if name in seen:
                continue
            seen.add(name)
            domains.append(Domain(rank=rank, name=name))
            rank += 1
        return cls(domains)

    def __len__(self) -> int:
        return len(self._domains)

    def __iter__(self) -> Iterator[Domain]:
        return iter(self._domains)

    def __getitem__(self, index: int) -> Domain:
        return self._domains[index]

    def top(self, count: int) -> List[Domain]:
        return self._domains[:count]

    def domain_at_rank(self, rank: int) -> Domain:
        """Rank is 1-based, as in the Alexa list."""
        domain = self._domains[rank - 1]
        assert domain.rank == rank
        return domain

    def __repr__(self) -> str:
        return f"<AlexaRanking {len(self._domains)} domains>"
