"""The CDN operator catalogue.

Section 4.2 of the paper inspects sixteen named CDNs, finds 199 ASes
operated by them via keyword spotting over AS assignment lists, and
discovers exactly four RPKI entries — all owned by Internap and tied
to three origin ASes, while Internap operates at least 41 ASes.  The
catalogue below encodes those ground-truth counts so the reproduction
recovers the same in-text numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CDNOperator:
    """Static description of one CDN operator."""

    name: str
    as_count: int            # ASes found by keyword spotting (paper: 199 total)
    market_share: float      # weight when assigning CDN-served domains
    signed_prefixes: int = 0     # ROAs the operator created (Internap: 4)
    signed_origin_ases: int = 0  # distinct origin ASes on those ROAs (Internap: 3)
    edge_suffix: str = ""        # CNAME suffix of the customer-facing edge name
    cache_suffix: str = ""       # CNAME suffix of the terminal cache name

    def keyword(self) -> str:
        """The registry keyword spotted in AS assignment lists."""
        return self.name.upper()

    def __post_init__(self):
        if not self.edge_suffix:
            object.__setattr__(
                self, "edge_suffix", f"{self.name.lower()}-edge.example"
            )
        if not self.cache_suffix:
            object.__setattr__(
                self, "cache_suffix", f"{self.name.lower()}-cache.example"
            )


# AS counts sum to exactly 199; Internap holds 41 and is the only
# operator with RPKI entries (4 prefixes, 3 origin ASes).
CDN_CATALOGUE: Tuple[CDNOperator, ...] = (
    CDNOperator("Akamai", as_count=44, market_share=30.0),
    CDNOperator("Amazon", as_count=18, market_share=20.0),
    CDNOperator("Cdnetworks", as_count=8, market_share=3.0),
    CDNOperator("Chinacache", as_count=6, market_share=3.0),
    CDNOperator("Chinanet", as_count=14, market_share=5.0),
    CDNOperator("Cloudflare", as_count=10, market_share=15.0),
    CDNOperator("Cotendo", as_count=3, market_share=1.0),
    CDNOperator("Edgecast", as_count=8, market_share=6.0),
    CDNOperator("Highwinds", as_count=7, market_share=3.0),
    CDNOperator("Instart", as_count=2, market_share=1.0),
    CDNOperator(
        "Internap",
        as_count=41,
        market_share=2.0,
        signed_prefixes=4,
        signed_origin_ases=3,
    ),
    CDNOperator("Limelight", as_count=20, market_share=6.0),
    CDNOperator("Mirrorimage", as_count=5, market_share=1.0),
    CDNOperator("Netdna", as_count=6, market_share=2.0),
    CDNOperator("Simplecdn", as_count=4, market_share=1.0),
    CDNOperator("Yottaa", as_count=3, market_share=1.0),
)

PAPER_TOTAL_CDN_ASES = 199
PAPER_RPKI_ENTRIES = 4
PAPER_RPKI_ORIGIN_ASES = 3


def total_cdn_ases() -> int:
    return sum(operator.as_count for operator in CDN_CATALOGUE)


def catalogue_by_name() -> Dict[str, CDNOperator]:
    return {operator.name: operator for operator in CDN_CATALOGUE}


def market_weights() -> Tuple[List[CDNOperator], List[float]]:
    operators = list(CDN_CATALOGUE)
    return operators, [operator.market_share for operator in operators]
