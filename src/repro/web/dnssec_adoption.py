"""DNSSEC adoption model for the synthetic web (extension experiment).

The paper's conclusion plans to "compare RPKI deployment with the
adoption of other core protocols such as DNSSEC".  This module models
2015-era DNSSEC reality: virtually all registries (TLD zones) are
signed, but only a small share of second-level domains signs — with
strong per-TLD differences (.nl/.se/.cz registrars incentivised
signing; .com barely moved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import DeterministicRNG
from repro.dns import Namespace, RecordType
from repro.dns.dnssec import SecurityStatus, ValidatingResolver, ZoneTree
from repro.web.alexa import AlexaRanking, Domain


@dataclass
class DnssecConfig:
    """Adoption knobs (defaults approximate 2015 measurements)."""

    base_adoption: float = 0.015
    # Multipliers for registries that pushed DNSSEC hard.
    tld_boost: Dict[str, float] = field(
        default_factory=lambda: {
            "nl": 12.0, "se": 15.0, "cz": 14.0, "br": 4.0, "fr": 3.0,
            "gov": 20.0, "edu": 4.0,
        }
    )
    unsigned_tlds: Tuple[str, ...] = ()   # registries without DNSSEC
    key_bits: int = 512

    def adoption_for(self, tld: str) -> float:
        return min(0.9, self.base_adoption * self.tld_boost.get(tld, 1.0))


@dataclass
class DnssecDeployment:
    """The built DNSSEC world."""

    tree: ZoneTree
    resolver: ValidatingResolver
    signed_domains: Dict[str, bool] = field(default_factory=dict)

    def status_for(self, fqdn: str, records: List[str]) -> SecurityStatus:
        return self.resolver.validate(fqdn, records)


class DnssecAdoptionModel:
    """Builds the zone tree and signs adopting domains' record sets."""

    def __init__(self, config: DnssecConfig, rng: DeterministicRNG):
        self._config = config
        self._rng = rng.fork("dnssec-adoption")

    def build(
        self, ranking: AlexaRanking, namespace: Namespace
    ) -> DnssecDeployment:
        tree = ZoneTree(self._rng, key_bits=self._config.key_bits)
        deployment = DnssecDeployment(
            tree=tree, resolver=ValidatingResolver(tree)
        )
        for domain in ranking:
            tld = self._tld_of(domain.name)
            self._ensure_suffix_zones(tree, tld)
            signs = (
                self._rng.fork(f"sign:{domain.name}").random()
                < self._config.adoption_for(tld.split(".")[-1])
            )
            zone = tree.add_zone(domain.name, signed=signs)
            deployment.signed_domains[domain.name] = signs
            if signs:
                self._sign_domain_records(zone, domain, namespace)
        return deployment

    # -- internals -------------------------------------------------------

    @staticmethod
    def _tld_of(name: str) -> str:
        _label, _dot, suffix = name.partition(".")
        return suffix

    def _ensure_suffix_zones(self, tree: ZoneTree, suffix: str) -> None:
        """Create registry zones (e.g. "uk", then "co.uk") on demand."""
        parts = suffix.split(".")
        for index in range(len(parts) - 1, -1, -1):
            zone_name = ".".join(parts[index:])
            if tree.zone(zone_name) is None:
                registry = zone_name.split(".")[-1]
                signed = registry not in self._config.unsigned_tlds
                tree.add_zone(zone_name, signed=signed)

    def _sign_domain_records(
        self, zone, domain: Domain, namespace: Namespace
    ) -> None:
        """Sign the apex and www record sets as served by the namespace."""
        for name in (domain.name, domain.www_name):
            records = self._rrset_text(namespace, name)
            if records:
                zone.sign_rrset(name, records)

    @staticmethod
    def _rrset_text(namespace: Namespace, name: str) -> List[str]:
        texts: List[str] = []
        for rtype in (RecordType.A, RecordType.AAAA, RecordType.CNAME):
            for record in namespace.lookup(name, rtype):
                texts.append(str(record))
        return texts


def rrset_for_validation(namespace: Namespace, name: str) -> List[str]:
    """The record-set text form a validator checks for ``name``."""
    return DnssecAdoptionModel._rrset_text(namespace, name)
