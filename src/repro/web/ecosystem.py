"""The assembled synthetic world.

:meth:`WebEcosystem.build` wires every substrate together:

1. generate the Alexa-style ranking,
2. create organisations (tier-1s, transits, eyeballs, hosters, and
   the sixteen-CDN catalogue) with AS numbers and address space,
3. build the AS topology with business relationships,
4. originate every organisation prefix in BGP (plus a sprinkle of
   deprecated AS_SET aggregates and a few never-announced "dark"
   prefixes),
5. run the RPKI adoption model and the relying-party validator,
6. run the hosting model to produce all DNS records,
7. propagate BGP and dump the collector tables.

The result object exposes everything the measurement pipeline (and
the experiments) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp import (
    Announcement,
    ASRole,
    ASTopology,
    PropagationEngine,
    RouteCollector,
    TableDump,
)
from repro.crypto import DeterministicRNG
from repro.dns import Namespace, PublicResolver
from repro.dns.vantage import DEFAULT_RESOLVERS, make_resolvers
from repro.net import ASN, Prefix
from repro.web.adoption import AdoptionConfig, AdoptionModel, AdoptionOutcome
from repro.web.alexa import AlexaRanking
from repro.web.cdn import CDN_CATALOGUE
from repro.web.hosting import HostingConfig, HostingModel, HostingOutcome
from repro.web.organisations import (
    AddressAllocator,
    Organisation,
    OrgKind,
)

_ROLE_FOR_KIND = {
    OrgKind.TIER1: ASRole.TIER1,
    OrgKind.TRANSIT: ASRole.TRANSIT,
    OrgKind.EYEBALL: ASRole.EYEBALL,
    OrgKind.HOSTER: ASRole.HOSTER,
    OrgKind.CDN: ASRole.CDN,
}

_RIR_WEIGHTS = [
    ("RIPE", 0.30),
    ("ARIN", 0.30),
    ("APNIC", 0.20),
    ("LACNIC", 0.12),
    ("AFRINIC", 0.08),
]


@dataclass
class EcosystemConfig:
    """All knobs of the synthetic world."""

    seed: int = 2015
    domain_count: int = 20_000
    # organisation counts; None means "scale with domain_count"
    tier1_count: int = 5
    transit_count: Optional[int] = None
    eyeball_count: Optional[int] = None
    hoster_count: Optional[int] = None
    include_cdns: bool = True
    # prefix behaviour
    v6_org_fraction: float = 0.25          # orgs that also get a /32 v6
    more_specific_fraction: float = 0.25   # announce an extra /24
    as_set_fraction: float = 0.004         # deprecated aggregates
    dark_prefix_count: int = 3             # allocated but never announced
    adoption: AdoptionConfig = field(default_factory=AdoptionConfig)
    hosting: HostingConfig = field(default_factory=HostingConfig)
    first_asn: int = 1000

    def scaled_transit(self) -> int:
        return self.transit_count or min(40, max(8, self.domain_count // 2500))

    def scaled_eyeballs(self) -> int:
        return self.eyeball_count or min(600, max(30, self.domain_count // 300))

    def scaled_hosters(self) -> int:
        # Dense enough that adoption statistics stabilise (many signing
        # orgs), capped to keep BGP propagation affordable at 1M scale.
        return self.hoster_count or min(1500, max(60, self.domain_count // 120))


class WebEcosystem:
    """The built world; construct via :meth:`build`."""

    def __init__(self):
        self.config: EcosystemConfig = EcosystemConfig()
        self.ranking: AlexaRanking = AlexaRanking([])
        self.organisations: List[Organisation] = []
        self.topology: ASTopology = ASTopology()
        self.announcements: List[Announcement] = []
        self.dark_prefixes: List[Prefix] = []
        self.namespace: Namespace = Namespace()
        self.adoption: Optional[AdoptionOutcome] = None
        self.hosting: Optional[HostingOutcome] = None
        self.hosting_model: Optional[HostingModel] = None
        self.table_dump: TableDump = TableDump()
        self.collector: Optional[RouteCollector] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, config: Optional[EcosystemConfig] = None) -> "WebEcosystem":
        config = config or EcosystemConfig()
        world = cls()
        world.config = config
        rng = DeterministicRNG(config.seed)

        world.ranking = AlexaRanking.generate(config.domain_count, rng)
        world._build_organisations(rng)
        world._build_topology(rng)
        world._build_announcements(rng)

        adoption_model = AdoptionModel(config.adoption, rng)
        world.adoption = adoption_model.build(world.organisations)

        world.hosting_model = HostingModel(
            config.hosting, rng, world.organisations, world.dark_prefixes
        )
        world.hosting = world.hosting_model.build(world.ranking, world.namespace)

        world._run_bgp()
        return world

    def rehost(self, fraction: float, generation: int = 1) -> List[str]:
        """Churn: re-host a deterministic sample of domains.

        Models the infrastructure drift between two measurement
        campaigns (the Fig. 1 side observation motivates exploiting
        www/apex equality "to accelerate continuous DNS
        measurements").  Returns the churned domain names.  BGP and
        RPKI are untouched — only the DNS mapping moves.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        rng = DeterministicRNG(self.config.seed).fork(f"churn:{generation}")
        count = int(len(self.ranking) * fraction)
        changed = rng.sample([d for d in self.ranking], count)
        for domain in changed:
            self.hosting_model.rewire_domain(
                domain, self.hosting, self.namespace, generation
            )
        return [domain.name for domain in changed]

    def _build_organisations(self, rng: DeterministicRNG) -> None:
        config = self.config
        allocator = AddressAllocator()
        org_rng = rng.fork("orgs")
        next_asn = config.first_asn

        rirs = [name for name, _w in _RIR_WEIGHTS]
        rir_weights = [w for _n, w in _RIR_WEIGHTS]

        def new_org(
            name: str,
            kind: OrgKind,
            as_count: int,
            prefixes_per_as: Tuple[int, int],
            prefix_length: Tuple[int, int] = (18, 22),
        ) -> Organisation:
            nonlocal next_asn
            rir = org_rng.weighted_choice(rirs, rir_weights)
            org = Organisation(name=name, kind=kind, rir=rir)
            for index in range(as_count):
                asn = ASN(next_asn)
                next_asn += 1
                org.asns.append(asn)
                org.registry_names[asn] = f"{name.upper()}-{index + 1}"
                count = org_rng.randint(*prefixes_per_as)
                for _ in range(count):
                    length = org_rng.randint(*prefix_length)
                    org.add_prefix(allocator.allocate(rir, length), asn)
            if org_rng.random() < config.v6_org_fraction and org.asns:
                org.add_prefix(allocator.allocate_v6(rir), org.asns[0])
            self.organisations.append(org)
            return org

        for index in range(config.tier1_count):
            new_org(f"Backbone{index + 1}", OrgKind.TIER1, 1, (1, 2), (14, 16))
        for index in range(config.scaled_transit()):
            new_org(f"Transit{index + 1}", OrgKind.TRANSIT, 1, (1, 2), (16, 19))
        for index in range(config.scaled_eyeballs()):
            new_org(f"Eyeball{index + 1}", OrgKind.EYEBALL, 1, (1, 3))
        for index in range(config.scaled_hosters()):
            new_org(f"Hoster{index + 1}", OrgKind.HOSTER, 1, (1, 4))
        if config.include_cdns:
            for operator in CDN_CATALOGUE:
                new_org(
                    operator.name, OrgKind.CDN, operator.as_count, (1, 2), (20, 23)
                )

        # Dark prefixes: used for hosting but never announced in BGP.
        for _ in range(config.dark_prefix_count):
            self.dark_prefixes.append(allocator.allocate("ARIN", 24))

    def _build_topology(self, rng: DeterministicRNG) -> None:
        topo_rng = rng.fork("world-topology")
        topology = ASTopology()
        by_kind: Dict[OrgKind, List[ASN]] = {kind: [] for kind in OrgKind}
        for org in self.organisations:
            for asn in org.asns:
                topology.add_as(
                    asn,
                    name=org.registry_names[asn],
                    role=_ROLE_FOR_KIND[org.kind],
                    organisation=org.name,
                )
                by_kind[org.kind].append(asn)

        tier1 = by_kind[OrgKind.TIER1]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                topology.add_peering(a, b)

        upstream = list(tier1)
        for asn in by_kind[OrgKind.TRANSIT]:
            for provider in topo_rng.sample(
                upstream, topo_rng.randint(1, min(3, len(upstream)))
            ):
                topology.add_provider(asn, provider)
            upstream.append(asn)

        edge_pool = tier1 + by_kind[OrgKind.TRANSIT]
        edge_asns = (
            by_kind[OrgKind.EYEBALL]
            + by_kind[OrgKind.HOSTER]
            + by_kind[OrgKind.CDN]
        )
        for asn in edge_asns:
            for provider in topo_rng.sample(
                edge_pool, min(topo_rng.randint(1, 3), len(edge_pool))
            ):
                if topology.relationship(asn, provider) is None:
                    topology.add_provider(asn, provider)

        eyeballs = by_kind[OrgKind.EYEBALL]
        for cdn_asn in by_kind[OrgKind.CDN]:
            if eyeballs and topo_rng.random() < 0.5:
                peer = topo_rng.choice(eyeballs)
                if topology.relationship(cdn_asn, peer) is None:
                    topology.add_peering(cdn_asn, peer)

        self.topology = topology

    def _build_announcements(self, rng: DeterministicRNG) -> None:
        config = self.config
        bgp_rng = rng.fork("announcements")
        announcements: List[Announcement] = []
        for org in self.organisations:
            for prefix, origin in sorted(org.prefixes.items()):
                if bgp_rng.random() < config.as_set_fraction:
                    members = [origin, ASN(64512 + bgp_rng.randint(0, 1000))]
                    announcements.append(
                        Announcement.make(prefix, origin, aggregate_members=members)
                    )
                else:
                    announcements.append(Announcement.make(prefix, origin))
                if (
                    prefix.family == 4
                    and prefix.length <= 22
                    and bgp_rng.random() < config.more_specific_fraction
                ):
                    specific = Prefix(4, prefix.value, 24)
                    announcements.append(Announcement.make(specific, origin))
        self.announcements = announcements

    def _run_bgp(self) -> None:
        tier1 = [n.asn for n in self.topology.by_role(ASRole.TIER1)]
        transits = [n.asn for n in self.topology.by_role(ASRole.TRANSIT)]
        peers = tier1 + transits[:5]
        self.collector = RouteCollector("rrc-sim", peers)
        engine = PropagationEngine(self.topology)
        state = engine.propagate(self.announcements, record_ases=set(peers))
        self.table_dump = self.collector.collect(state)

    # -- convenience accessors -------------------------------------------------

    def resolvers(self) -> List[PublicResolver]:
        """The paper's three verification resolvers over this namespace."""
        return make_resolvers(self.namespace, DEFAULT_RESOLVERS)

    def payloads(self):
        return self.adoption.payloads

    def tals(self):
        return self.adoption.tals

    def org_of_asn(self, asn: ASN) -> Optional[Organisation]:
        for org in self.organisations:
            if asn in org.asns:
                return org
        return None

    def as_assignment_list(self) -> List[Tuple[ASN, str, str]]:
        """(ASN, registry name, organisation) rows for keyword spotting."""
        rows = []
        for node in self.topology.ases():
            rows.append((node.asn, node.name, node.organisation))
        return sorted(rows)

    def __repr__(self) -> str:
        return (
            f"<WebEcosystem {len(self.ranking)} domains, "
            f"{len(self.topology)} ASes, {len(self.announcements)} announcements>"
        )
