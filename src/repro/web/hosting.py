"""Domain hosting model: how websites map onto the infrastructure.

For every ranked domain the model decides whether it is CDN-served
(popularity-dependent, reproducing Figure 3's shape), wires the DNS
records — including the CNAME chains the chain-length heuristic
counts — and records ground truth for later evaluation.

Key behaviours, each traceable to the paper:

* popular domains are more often CDN-served (Fig. 3),
* some CDN deployments use a single CNAME and are therefore invisible
  to the chain heuristic but visible to HTTPArchive (Section 4.3),
* a fraction of CDN caches lives in third-party eyeball networks,
  "inheriting" whatever RPKI those networks deploy (Section 4.2),
* www and w/o-www forms mostly share prefixes, less so for popular
  CDN-heavy ranks (Fig. 1),
* a tiny share of DNS answers is invalid (special-purpose addresses)
  and a tiny share of addresses is unreachable in BGP (Section 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import DeterministicRNG
from repro.dns import Namespace
from repro.net import Address, Prefix
from repro.web.alexa import AlexaRanking, Domain
from repro.web.cdn import CDN_CATALOGUE, CDNOperator, market_weights
from repro.web.organisations import Organisation, OrgKind

# Chain styles, by number of CNAME indirections to the cache.
CHAIN_FULL = "full"      # www.d -> edge -> cache (2 CNAMEs)
CHAIN_SHORT = "short"    # www.d -> cache (1 CNAME)
CHAIN_NONE = "none"      # not CDN-served

_SPECIAL_ANSWERS = ["127.0.0.1", "10.13.37.1", "192.168.0.10", "0.0.0.0"]


@dataclass
class HostingConfig:
    """Knobs of the hosting model (defaults calibrated to the paper)."""

    cdn_top_share: float = 0.32       # CDN probability at rank 1
    cdn_bottom_share: float = 0.04    # ... and at the last rank
    cdn_decay: float = 5.0            # exponential decay in rank fraction
    cdn_chainless_fraction: float = 0.22
    cdn_apex_same_fraction: float = 0.35  # apex follows the CDN chain too
    cdn_origin_in_cloud: float = 0.9      # apex origin inside CDN-owned space
    noncdn_www_same: float = 0.96
    third_party_cache_fraction: float = 0.12
    domains_per_cache: float = 5.0    # cache-fleet sizing per operator
    invalid_dns_fraction: float = 0.0007
    unreachable_fraction: float = 0.0001
    ipv6_fraction: float = 0.05
    vantage_divergence: float = 0.3   # CDN answers differing per vantage
    popular_head_fraction: float = 0.01  # multi-homed prominent sites
    # Distribution of A-record counts per name (mean ~1.17, Section 4).
    address_count_weights: Tuple[float, ...] = (0.87, 0.10, 0.03)

    def cdn_probability(self, rank: int, total: int) -> float:
        """Popularity-dependent CDN adoption, Figure 3's shape."""
        fraction = (rank - 1) / max(total - 1, 1)
        spread = self.cdn_top_share - self.cdn_bottom_share
        return self.cdn_bottom_share + spread * math.exp(-self.cdn_decay * fraction)


@dataclass
class CDNCache:
    """One deployed CDN cache."""

    hostname: str
    operator: str
    addresses: List[Address]
    third_party: bool  # placed inside an eyeball ISP's prefix


@dataclass
class DomainHosting:
    """Ground truth for one domain."""

    domain: Domain
    cdn_operator: Optional[str] = None
    chain_style: str = CHAIN_NONE
    apex_on_cdn: bool = False
    invalid_dns: bool = False

    @property
    def uses_cdn(self) -> bool:
        return self.cdn_operator is not None


@dataclass
class HostingOutcome:
    """Everything the hosting model produced."""

    ground_truth: Dict[str, DomainHosting] = field(default_factory=dict)
    caches: Dict[str, List[CDNCache]] = field(default_factory=dict)

    def cdn_domains(self) -> List[str]:
        return [
            name
            for name, hosting in self.ground_truth.items()
            if hosting.uses_cdn
        ]


class HostingModel:
    """Assigns hosting and writes DNS records for a ranking."""

    def __init__(
        self,
        config: HostingConfig,
        rng: DeterministicRNG,
        organisations: Sequence[Organisation],
        dark_prefixes: Sequence[Prefix] = (),
    ):
        self._config = config
        self._rng = rng.fork("hosting")
        self._hosters = [o for o in organisations if o.kind is OrgKind.HOSTER]
        self._eyeballs = [o for o in organisations if o.kind is OrgKind.EYEBALL]
        self._cdns = [o for o in organisations if o.kind is OrgKind.CDN]
        self._dark_prefixes = list(dark_prefixes)
        self._available_operators: List[CDNOperator] = []
        self._available_weights: List[float] = []
        self._total = 0
        if not self._hosters:
            raise ValueError("hosting model needs at least one hoster org")

    # -- public API --------------------------------------------------------

    def build(
        self, ranking: AlexaRanking, namespace: Namespace
    ) -> HostingOutcome:
        outcome = HostingOutcome()
        outcome.caches = self._build_caches(namespace, len(ranking))
        operators, weights = market_weights()
        self._available_operators = [
            op for op in operators if outcome.caches.get(op.name)
        ]
        self._available_weights = [
            weights[index]
            for index, op in enumerate(operators)
            if outcome.caches.get(op.name)
        ]
        self._total = len(ranking)
        for domain in ranking:
            rng = self._rng.fork(f"domain:{domain.name}")
            self.wire_domain(domain, outcome, namespace, rng)
        return outcome

    def wire_domain(
        self,
        domain: Domain,
        outcome: HostingOutcome,
        namespace: Namespace,
        rng: DeterministicRNG,
    ) -> DomainHosting:
        """Assign hosting and write DNS records for one domain."""
        total = self._total
        popular_cutoff = max(
            1, int(total * self._config.popular_head_fraction)
        )
        hosting = DomainHosting(domain=domain)
        popular = domain.rank <= popular_cutoff
        if rng.random() < self._config.invalid_dns_fraction:
            hosting.invalid_dns = True
            self._wire_invalid(domain, namespace, rng)
        elif rng.random() < self._config.cdn_probability(domain.rank, total):
            operator = rng.weighted_choice(
                self._available_operators, self._available_weights
            )
            self._wire_cdn(
                domain, operator, outcome, namespace, rng, hosting, popular
            )
        else:
            self._wire_direct(domain, namespace, rng, hosting, popular=popular)
        outcome.ground_truth[domain.name] = hosting
        return hosting

    def rewire_domain(
        self,
        domain: Domain,
        outcome: HostingOutcome,
        namespace: Namespace,
        generation: int,
    ) -> DomainHosting:
        """Churn: tear a domain's records down and host it afresh.

        ``generation`` salts the per-domain RNG so each re-hosting
        draws a new (but still deterministic) assignment.
        """
        self.remove_domain_records(domain, namespace)
        rng = self._rng.fork(f"domain:{domain.name}:gen{generation}")
        return self.wire_domain(domain, outcome, namespace, rng)

    @staticmethod
    def remove_domain_records(domain: Domain, namespace: Namespace) -> int:
        """Remove the domain's own names (apex, www, CDN edge names)."""
        removed = namespace.remove_name(domain.name)
        removed += namespace.remove_name(domain.www_name)
        for operator in CDN_CATALOGUE:
            edge = f"{domain.name}.{operator.edge_suffix}"
            if namespace.exists(edge):
                removed += namespace.remove_name(edge)
        return removed

    # -- caches -------------------------------------------------------------

    def _build_caches(
        self, namespace: Namespace, population: int
    ) -> Dict[str, List[CDNCache]]:
        caches: Dict[str, List[CDNCache]] = {}
        cdn_orgs = {org.name: org for org in self._cdns}
        config = self._config
        # Expected CDN-served domains under the rank-dependent model
        # (closed form of the exponential decay).
        spread = config.cdn_top_share - config.cdn_bottom_share
        expected_cdn = population * (
            config.cdn_bottom_share
            + spread * (1 - math.exp(-config.cdn_decay)) / config.cdn_decay
        )
        total_share = sum(op.market_share for op in CDN_CATALOGUE)
        for operator in CDN_CATALOGUE:
            org = cdn_orgs.get(operator.name)
            if org is None or not org.prefixes:
                continue
            rng = self._rng.fork(f"caches:{operator.name}")
            own_prefixes = org.prefix_list()
            # Real CDNs run far more caches than customers-per-cache;
            # sizing to ~domains_per_cache keeps small worlds from
            # funnelling thousands of sites through a handful of
            # addresses (which would make Figure 4 lumpy).
            operator_domains = expected_cdn * operator.market_share / total_share
            count = max(4, round(operator_domains / config.domains_per_cache))
            pool: List[CDNCache] = []
            for index in range(count):
                third_party = (
                    bool(self._eyeballs)
                    and rng.random() < self._config.third_party_cache_fraction
                )
                if third_party:
                    eyeball = rng.choice(self._eyeballs)
                    prefix = rng.choice(eyeball.prefix_list())
                else:
                    prefix = rng.choice(own_prefixes)
                address = self._pick_address(prefix, rng)
                hostname = f"a{index}.g.{operator.cache_suffix}"
                cache = CDNCache(
                    hostname=hostname,
                    operator=operator.name,
                    addresses=[address],
                    third_party=third_party,
                )
                namespace.add_address(hostname, str(address))
                pool.append(cache)
            # Vantage-dependent answers: remote resolvers may be steered
            # to a different cache of the same operator.
            for index, cache in enumerate(pool):
                if rng.random() < self._config.vantage_divergence and len(pool) > 1:
                    other = pool[(index + 1) % len(pool)]
                    for vantage in ("us-east", "redwood-city"):
                        namespace.add_address(
                            cache.hostname, str(other.addresses[0]), vantage=vantage
                        )
            caches[operator.name] = pool
        return caches

    # -- wiring --------------------------------------------------------------

    def _wire_invalid(
        self, domain: Domain, namespace: Namespace, rng: DeterministicRNG
    ) -> None:
        """A broken deployment answering with reserved addresses."""
        answer = rng.choice(_SPECIAL_ANSWERS)
        namespace.add_address(domain.name, answer)
        namespace.add_cname(domain.www_name, domain.name)

    def _wire_direct(
        self,
        domain: Domain,
        namespace: Namespace,
        rng: DeterministicRNG,
        hosting: DomainHosting,
        name: Optional[str] = None,
        popular: bool = False,
    ) -> None:
        """Conventional hosting at a webhoster or ISP."""
        name = name or domain.name
        addresses = self._hosting_addresses(rng, popular)
        for address in addresses:
            namespace.add_address(name, str(address))
        if name != domain.name:
            return  # only wiring an alternate form; www handled by caller
        if rng.random() < self._config.noncdn_www_same:
            if rng.random() < 0.7:
                namespace.add_cname(domain.www_name, domain.name)
            else:
                for address in addresses:
                    namespace.add_address(domain.www_name, str(address))
        else:
            self._wire_direct(
                domain, namespace, rng, hosting, domain.www_name, popular
            )

    def _wire_cdn(
        self,
        domain: Domain,
        operator: CDNOperator,
        outcome: HostingOutcome,
        namespace: Namespace,
        rng: DeterministicRNG,
        hosting: DomainHosting,
        popular: bool = False,
    ) -> None:
        cache = rng.choice(outcome.caches[operator.name])
        hosting.cdn_operator = operator.name
        chainless = rng.random() < self._config.cdn_chainless_fraction
        hosting.chain_style = CHAIN_SHORT if chainless else CHAIN_FULL
        edge_name = f"{domain.name}.{operator.edge_suffix}"
        if chainless:
            namespace.add_cname(domain.www_name, cache.hostname)
        else:
            namespace.add_cname(domain.www_name, edge_name)
            namespace.add_cname(edge_name, cache.hostname)
        if rng.random() < self._config.cdn_apex_same_fraction:
            # The apex rides the same chain (common with ALIAS-style records).
            hosting.apex_on_cdn = True
            target = cache.hostname if chainless else edge_name
            namespace.add_cname(domain.name, target)
        elif rng.random() < self._config.cdn_origin_in_cloud:
            # Apex points at origin servers inside the CDN company's own
            # cloud space (think CloudFront customers on EC2) — space the
            # CDNs do not sign, keeping CDN sites poorly covered (Fig. 4).
            org = next(o for o in self._cdns if o.name == operator.name)
            prefix = rng.choice(org.prefix_list())
            namespace.add_address(
                domain.name, str(self._pick_address(prefix, rng))
            )
        else:
            # Apex points at the origin servers at a conventional hoster.
            for address in self._hosting_addresses(rng, popular):
                namespace.add_address(domain.name, str(address))

    # -- address selection ----------------------------------------------------

    def _hosting_addresses(
        self, rng: DeterministicRNG, popular: bool = False
    ) -> List[Address]:
        if popular:
            # Prominent properties are multi-homed across several
            # networks — this is what makes their coverage *partial*
            # (Table 1's "(1/3)" rows).
            counts, weights = [1, 2, 3, 4], (0.45, 0.30, 0.15, 0.10)
        else:
            counts = list(range(1, len(self._config.address_count_weights) + 1))
            weights = self._config.address_count_weights
        count = rng.weighted_choice(counts, weights)
        org = self._pick_host_org(rng)
        prefixes = org.prefix_list()
        addresses = []
        for _ in range(count):
            if popular and rng.random() < 0.5:
                org = self._pick_host_org(rng)
                prefixes = org.prefix_list()
            if (
                self._dark_prefixes
                and rng.random() < self._config.unreachable_fraction
            ):
                prefix = rng.choice(self._dark_prefixes)
            else:
                prefix = rng.choice(prefixes)
            addresses.append(self._pick_address(prefix, rng))
        if rng.random() < self._config.ipv6_fraction:
            v6_prefixes = [p for p in prefixes if p.family == 6]
            if v6_prefixes:
                addresses.append(self._pick_address(rng.choice(v6_prefixes), rng))
        return addresses

    def _pick_host_org(self, rng: DeterministicRNG) -> Organisation:
        if self._eyeballs and rng.random() < 0.15:
            return rng.choice(self._eyeballs)
        return rng.choice(self._hosters)

    @staticmethod
    def _pick_address(prefix: Prefix, rng: DeterministicRNG) -> Address:
        size = 1 << (prefix.bits - prefix.length)
        if size <= 2:
            return prefix.nth_address(0)
        # Cap the host part so huge IPv6 prefixes stay cheap.
        upper = min(size - 2, 1 << 20)
        return prefix.nth_address(rng.randint(1, upper))
