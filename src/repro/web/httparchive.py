"""HTTPArchive-style CDN classification.

The paper cross-checks its CNAME-chain heuristic against
HTTPArchive, which "classifies the first 300k Alexa domains based on
DNS pattern matching of CNAMEs" from a monitoring agent in Redwood
City.  This classifier reproduces that design: it resolves each
domain from its own (geographically distinct) vantage and matches
*any* CNAME in the chain against known CDN name patterns — so it also
catches single-CNAME deployments the chain-length heuristic misses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dns import Namespace, PublicResolver
from repro.dns.errors import DNSError, ResolutionError
from repro.dns.vantage import HTTPARCHIVE_AGENT
from repro.web.alexa import Domain
from repro.web.cdn import CDN_CATALOGUE, CDNOperator

# HTTPArchive monitors a fixed-size head of the ranking.
DEFAULT_COVERAGE = 300_000


class HTTPArchiveClassifier:
    """Pattern-based CDN detector over a bounded rank range."""

    def __init__(
        self,
        namespace: Namespace,
        operators: Iterable[CDNOperator] = CDN_CATALOGUE,
        coverage: int = DEFAULT_COVERAGE,
    ):
        self._resolver = PublicResolver(namespace, HTTPARCHIVE_AGENT)
        self._patterns: Dict[str, str] = {}
        for operator in operators:
            self._patterns[operator.edge_suffix] = operator.name
            self._patterns[operator.cache_suffix] = operator.name
        self.coverage = coverage

    def classify_name(self, name: str) -> Optional[str]:
        """CDN operator name for one domain name, or None."""
        try:
            answer = self._resolver.resolve(name)
        except (DNSError, ResolutionError):
            return None
        for target in answer.cname_chain:
            for suffix, operator in self._patterns.items():
                if target.endswith(suffix):
                    return operator
        return None

    def classify(self, domain: Domain) -> Optional[str]:
        """Classify a ranked domain; None outside the coverage window.

        Like HTTPArchive, the ``www`` form is monitored.
        """
        if domain.rank > self.coverage:
            return None
        return self.classify_name(domain.www_name)

    def classify_all(self, domains: Iterable[Domain]) -> Dict[str, str]:
        """Map of domain name -> CDN operator for covered CDN domains."""
        results: Dict[str, str] = {}
        for domain in domains:
            operator = self.classify(domain)
            if operator is not None:
                results[domain.name] = operator
        return results

    def __repr__(self) -> str:
        return (
            f"<HTTPArchiveClassifier {len(self._patterns)} patterns, "
            f"first {self.coverage} ranks>"
        )
