"""Hosting organisations and address-space allocation.

An :class:`Organisation` owns one or more ASes and IP prefixes
allocated from an RIR pool.  Webhosters and eyeball ISPs host content
directly; CDN operators own many ASes and additionally place caches
inside third-party eyeball networks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net import ASN, Prefix
from repro.crypto import DeterministicRNG


class OrgKind(enum.Enum):
    TIER1 = "tier1"
    TRANSIT = "transit"
    EYEBALL = "eyeball"
    HOSTER = "hoster"
    CDN = "cdn"

    def __str__(self) -> str:
        return self.value


@dataclass
class Organisation:
    """One network organisation."""

    name: str
    kind: OrgKind
    rir: str                      # allocating RIR (trust anchor name)
    asns: List[ASN] = field(default_factory=list)
    # prefix -> origin AS announcing it
    prefixes: Dict[Prefix, ASN] = field(default_factory=dict)
    registry_names: Dict[ASN, str] = field(default_factory=dict)

    def add_prefix(self, prefix: Prefix, origin: ASN) -> None:
        if origin not in self.asns:
            raise ValueError(f"{origin} does not belong to {self.name}")
        self.prefixes[prefix] = origin

    def prefix_list(self) -> List[Prefix]:
        return sorted(self.prefixes)

    def __repr__(self) -> str:
        return (
            f"<Organisation {self.name!r} ({self.kind}) "
            f"{len(self.asns)} ASes, {len(self.prefixes)} prefixes>"
        )


# The five RIRs and the /8 blocks they allocate from in this world.
# All blocks are globally-routable space (no IANA special entries).
RIR_POOLS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("AFRINIC", (41, 102, 105)),
    ("APNIC", (1, 14, 27, 36, 42)),
    ("ARIN", (3, 4, 6, 7, 8, 9)),
    ("LACNIC", (177, 179, 181, 186)),
    ("RIPE", (5, 31, 37, 46, 62, 77, 78, 79, 80)),
)


# Real-world IPv6 /12 super-blocks of the five RIRs.
RIR_V6_POOLS: Dict[str, str] = {
    "AFRINIC": "2c00::/12",
    "APNIC": "2400::/12",
    "ARIN": "2600::/12",
    "LACNIC": "2800::/12",
    "RIPE": "2a00::/12",
}


class AddressAllocator:
    """Sequentially carves prefixes out of the RIR /8 pools."""

    def __init__(self):
        self._cursors: Dict[str, int] = {rir: 0 for rir, _blocks in RIR_POOLS}
        self._blocks: Dict[str, Tuple[int, ...]] = dict(RIR_POOLS)
        self._v6_cursors: Dict[str, int] = {rir: 0 for rir in RIR_V6_POOLS}

    def rirs(self) -> List[str]:
        return [rir for rir, _blocks in RIR_POOLS]

    def allocate(self, rir: str, length: int = 20) -> Prefix:
        """Allocate the next free prefix of ``length`` bits from ``rir``.

        Allocation walks each /8 block in /16 steps; prefixes longer
        than /16 subdivide the current /16.
        """
        if not 9 <= length <= 24:
            raise ValueError(f"allocation length /{length} unsupported")
        blocks = self._blocks[rir]
        cursor = self._cursors[rir]
        # Each /8 holds 2**(length-8) prefixes of the requested length,
        # but mixing lengths is easier with a flat /24-granular cursor.
        step = 1 << (24 - length)
        per_block = 1 << 16  # number of /24s inside a /8
        block_index, offset = divmod(cursor, per_block)
        # Align the offset up to the prefix size.
        if offset % step:
            offset += step - (offset % step)
            cursor = block_index * per_block + offset
            block_index, offset = divmod(cursor, per_block)
        if block_index >= len(blocks):
            raise RuntimeError(f"{rir} pool exhausted")
        base = blocks[block_index] << 24
        value = (base + (offset << 8)) & ~((1 << (32 - length)) - 1)
        self._cursors[rir] = cursor + step
        return Prefix(4, value, length)

    def allocate_v6(self, rir: str) -> Prefix:
        """Allocate the next /32 from the RIR's IPv6 super-block."""
        pool = Prefix.parse(RIR_V6_POOLS[rir])
        index = self._v6_cursors[rir]
        if index >= 1 << 20:
            raise RuntimeError(f"{rir} IPv6 pool exhausted")
        self._v6_cursors[rir] = index + 1
        value = pool.value | (index << (128 - 32))
        return Prefix(6, value, 32)

    def allocated_count(self, rir: str) -> int:
        return self._cursors[rir]
