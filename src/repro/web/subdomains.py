"""Subdomain sharding (paper Section 5.3).

"complexity is also greatly increased when considered the tendency to
shard content across multiple subdomains in a website ... a
commercially motivated attacker may explicitly target subdomains,
e.g. those hosting adverts."

This module extends a built world with sharded subdomains: popular
sites spread ``static``/``img``/``api`` content over extra hosts, and
embed adverts served by a small set of shared third-party ad
networks — which makes a single ad-network prefix a high-value
hijack target affecting many websites at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto import DeterministicRNG
from repro.net import ASN, Prefix
from repro.web.alexa import Domain
from repro.web.organisations import Organisation, OrgKind

SHARD_LABELS = ("static", "img", "api")
ADS_LABEL = "ads"


@dataclass
class SubdomainConfig:
    """Sharding knobs."""

    shard_top_share: float = 0.5     # probability at rank 1
    shard_bottom_share: float = 0.05
    ads_share: float = 0.8           # sharded sites that embed adverts
    ad_network_count: int = 3        # shared third-party ad networks

    def shard_probability(self, rank: int, total: int) -> float:
        fraction = (rank - 1) / max(total - 1, 1)
        spread = self.shard_top_share - self.shard_bottom_share
        return self.shard_top_share - spread * fraction


@dataclass
class AdNetwork:
    """One shared advert-delivery network."""

    name: str
    organisation: Organisation
    prefix: Prefix
    hostname: str


@dataclass
class SubdomainDeployment:
    """Ground truth of the sharded world."""

    subdomains: Dict[str, List[str]] = field(default_factory=dict)
    ads_subdomain_of: Dict[str, str] = field(default_factory=dict)
    ad_network_of: Dict[str, AdNetwork] = field(default_factory=dict)
    ad_networks: List[AdNetwork] = field(default_factory=list)

    def domains_using_network(self, network: AdNetwork) -> List[str]:
        return [
            domain
            for domain, used in self.ad_network_of.items()
            if used.name == network.name
        ]

    def sharded_count(self) -> int:
        return sum(1 for subs in self.subdomains.values() if subs)


class SubdomainModel:
    """Adds sharded subdomains and ad networks to a built world."""

    def __init__(self, config: SubdomainConfig, rng: DeterministicRNG):
        self._config = config
        self._rng = rng.fork("subdomains")

    def build(self, world) -> SubdomainDeployment:
        deployment = SubdomainDeployment()
        deployment.ad_networks = self._create_ad_networks(world)
        total = len(world.ranking)
        for domain in world.ranking:
            rng = self._rng.fork(f"shard:{domain.name}")
            deployment.subdomains[domain.name] = []
            if rng.random() >= self._config.shard_probability(domain.rank, total):
                continue
            self._shard_domain(domain, world, rng, deployment)
        return deployment

    # -- internals ---------------------------------------------------------

    def _create_ad_networks(self, world) -> List[AdNetwork]:
        """Designate hoster orgs as shared advert networks."""
        hosters = [
            org for org in world.organisations if org.kind is OrgKind.HOSTER
        ]
        networks: List[AdNetwork] = []
        for index in range(min(self._config.ad_network_count, len(hosters))):
            org = hosters[-(index + 1)]  # late hosters, stable choice
            prefix = org.prefix_list()[0]
            hostname = f"serve{index + 1}.adnet{index + 1}.example"
            address = prefix.nth_address(7 + index)
            world.namespace.add_address(hostname, str(address))
            networks.append(
                AdNetwork(
                    name=f"AdNet{index + 1}",
                    organisation=org,
                    prefix=prefix,
                    hostname=hostname,
                )
            )
        return networks

    def _shard_domain(
        self, domain: Domain, world, rng: DeterministicRNG, deployment
    ) -> None:
        hosting = world.hosting.ground_truth.get(domain.name)
        if hosting is not None and hosting.invalid_dns:
            return
        label_count = rng.randint(1, len(SHARD_LABELS))
        for label in rng.sample(SHARD_LABELS, label_count):
            fqdn = f"{label}.{domain.name}"
            # Content shards ride the site's existing infrastructure.
            world.namespace.add_cname(fqdn, domain.www_name)
            deployment.subdomains[domain.name].append(fqdn)
        if deployment.ad_networks and rng.random() < self._config.ads_share:
            fqdn = f"{ADS_LABEL}.{domain.name}"
            network = rng.choice(deployment.ad_networks)
            world.namespace.add_cname(fqdn, network.hostname)
            deployment.subdomains[domain.name].append(fqdn)
            deployment.ads_subdomain_of[domain.name] = fqdn
            deployment.ad_network_of[domain.name] = network
