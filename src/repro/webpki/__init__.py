"""Web PKI substrate: domain-validated TLS certificates.

Section 2.3 of the paper notes that "TLS does not necessarily protect
against such an attack when prefix hijacking is in place [9]"
(Gavrichenkov, Black Hat 2015): an attacker who hijacks a website's
prefix — even briefly, even locally towards one certificate
authority — passes the CA's domain-control validation and obtains a
*valid* certificate for the victim domain.

This package models the moving parts: TLS leaf certificates, a
DV-issuing certificate authority whose validation traffic rides the
(hijackable) routing substrate, a client-side verifier, and the
end-to-end attack with and without RPKI enforcement at the CA's
network.
"""

from repro.webpki.attack import BGPCertificateAttack, AttackResult
from repro.webpki.ca import WebCA
from repro.webpki.certificates import TLSCertificate
from repro.webpki.validation import DomainControlValidator, ValidationOutcome

__all__ = [
    "AttackResult",
    "BGPCertificateAttack",
    "DomainControlValidator",
    "TLSCertificate",
    "ValidationOutcome",
    "WebCA",
]
