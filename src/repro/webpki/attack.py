"""The BGP-breaks-TLS attack (Gavrichenkov, cited as [9]).

Sequence:

1. the victim's prefix is announced normally; the CA can reach the
   genuine web server,
2. the attacker announces a more-specific (or equal) prefix — even a
   short-lived announcement suffices,
3. while the hijack is in effect the attacker requests a certificate
   for the victim's domain; the CA's validation connection lands at
   the attacker, which answers the challenge,
4. the attacker withdraws the hijack.  Routing heals, nobody keeps
   evidence — but the attacker now owns a browser-trusted certificate
   and can transparently intercept TLS whenever it gets on-path
   again.

RPKI origin validation at the CA's network stops step 3: the invalid
more-specific never enters the CA's routing table, the validation
connection reaches the real victim, issuance fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Optional, Union

from repro.bgp.messages import Announcement
from repro.bgp.session import SessionSimulator
from repro.bgp.topology import ASTopology
from repro.crypto import DeterministicRNG, generate_keypair
from repro.net import ASN, Address, Prefix
from repro.rpki.vrp import ValidatedPayloads
from repro.webpki.ca import WebCA
from repro.webpki.certificates import TLSCertificate, verify_chain


@dataclass
class AttackResult:
    """What the attacker walked away with."""

    certificate: Optional[TLSCertificate]
    hijack_messages: int          # UPDATE churn the hijack caused
    healed: bool                  # routing restored after withdrawal
    mitm_possible: bool           # browsers would accept the cert

    @property
    def succeeded(self) -> bool:
        return self.certificate is not None

    def __repr__(self) -> str:
        verdict = "SUCCEEDED" if self.succeeded else "failed"
        return f"<AttackResult {verdict}, mitm={self.mitm_possible}>"


class BGPCertificateAttack:
    """Stages the attack over a live session simulation."""

    def __init__(
        self,
        topology: ASTopology,
        legitimate_host_asn: Callable[[Address], Optional[ASN]],
    ):
        self._topology = topology
        self._legitimate_host_asn = legitimate_host_asn

    def execute(
        self,
        victim_domain: str,
        victim_announcement: Announcement,
        attacker_asn: Union[int, ASN],
        ca: WebCA,
        hijack_prefix: Optional[Union[str, Prefix]] = None,
        payloads: Optional[ValidatedPayloads] = None,
        enforcing: Iterable[ASN] = (),
        rng_seed: str = "attack",
        now: float = 0.0,
    ) -> AttackResult:
        attacker = ASN(attacker_asn)
        victim_prefix = victim_announcement.prefix
        if hijack_prefix is None:
            hijack_prefix = Prefix(
                victim_prefix.family,
                victim_prefix.value,
                min(victim_prefix.length + 2, 24),
            )
        elif isinstance(hijack_prefix, str):
            hijack_prefix = Prefix.parse(hijack_prefix)

        sim = SessionSimulator(self._topology)
        if payloads is not None:
            sim.configure_validation(payloads, enforcing)
        sim.announce(victim_announcement)
        sim.run()

        # Step 2: the hijack goes up...
        sim.announce(Announcement(prefix=hijack_prefix, origin=attacker))
        hijack_messages = sim.run()

        # Step 3: certificate request during the hijack window.
        def routing_lookup(from_asn: ASN, address: Address) -> Optional[ASN]:
            best = None
            for prefix in (victim_prefix, hijack_prefix):
                if prefix.contains(address):
                    entry = sim.route_at(from_asn, prefix)
                    if entry is not None and (
                        best is None or prefix.length > best[0]
                    ):
                        best = (prefix.length, entry.origin)
            return best[1] if best else None

        applicant_key = generate_keypair(
            DeterministicRNG(rng_seed).fork("applicant")
        )
        certificate = ca.request_certificate(
            domain=victim_domain,
            applicant_key=applicant_key.public,
            applicant_asn=attacker,
            routing_lookup=routing_lookup,
            legitimate_host_asn=self._legitimate_host_asn,
            now=now,
        )

        # Step 4: withdraw and let routing heal.
        sim.withdraw(hijack_prefix, attacker)
        sim.run()
        healed_entry = sim.route_at(ca.asn, victim_prefix)
        healed = (
            healed_entry is not None
            and healed_entry.origin == victim_announcement.origin
            and sim.route_at(ca.asn, hijack_prefix) is None
        )

        mitm = certificate is not None and verify_chain(
            certificate,
            victim_domain,
            ca.root_store_entry(),
            now=now + 1.0,  # long after the hijack ended
        )
        return AttackResult(
            certificate=certificate,
            hijack_messages=hijack_messages,
            healed=healed,
            mitm_possible=mitm,
        )
