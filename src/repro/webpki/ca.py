"""A domain-validating certificate authority."""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Union

from repro.crypto import DeterministicRNG, KeyPair, PublicKey, generate_keypair
from repro.crypto.rsa import sign
from repro.net import ASN
from repro.webpki.certificates import TLSCertificate
from repro.webpki.validation import DomainControlValidator, ValidationOutcome

DEFAULT_CERT_LIFETIME = 90.0  # days, Let's-Encrypt style


class WebCA:
    """A CA that issues after an HTTP-01-style control check."""

    def __init__(
        self,
        name: str,
        rng: DeterministicRNG,
        validator: DomainControlValidator,
        lifetime: float = DEFAULT_CERT_LIFETIME,
    ):
        self.name = name
        self.keypair: KeyPair = generate_keypair(rng.fork(f"webca:{name}"))
        self._validator = validator
        self._lifetime = lifetime
        self._serials = itertools.count(1)
        self.issued: Dict[int, TLSCertificate] = {}

    @property
    def asn(self) -> ASN:
        return self._validator.ca_asn

    def root_store_entry(self) -> Dict[str, PublicKey]:
        """What browsers pin for this CA."""
        return {self.keypair.public.fingerprint(): self.keypair.public}

    def request_certificate(
        self,
        domain: str,
        applicant_key: PublicKey,
        applicant_asn: Union[int, ASN],
        routing_lookup,
        legitimate_host_asn,
        now: float = 0.0,
    ) -> Optional[TLSCertificate]:
        """Run domain validation; issue on success, else None."""
        outcome = self._validator.validate(
            domain, applicant_asn, routing_lookup, legitimate_host_asn
        )
        if outcome is not ValidationOutcome.CONTROL_PROVEN:
            return None
        serial = next(self._serials)
        unsigned = TLSCertificate(
            domain=domain,
            subject_key=applicant_key,
            issuer=self.name,
            issuer_fingerprint=self.keypair.public.fingerprint(),
            serial=serial,
            not_before=now,
            not_after=now + self._lifetime,
            signature=0,
        )
        signature = sign(unsigned.tbs_bytes(), self.keypair)
        certificate = TLSCertificate(
            domain=domain,
            subject_key=applicant_key,
            issuer=self.name,
            issuer_fingerprint=unsigned.issuer_fingerprint,
            serial=serial,
            not_before=now,
            not_after=now + self._lifetime,
            signature=signature,
        )
        self.issued[serial] = certificate
        return certificate

    def __repr__(self) -> str:
        return f"<WebCA {self.name!r} at {self.asn}, {len(self.issued)} issued>"
