"""TLS leaf certificates (domain-validated)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.digest import canonical_bytes
from repro.crypto.keys import PublicKey
from repro.crypto.rsa import verify


@dataclass(frozen=True)
class TLSCertificate:
    """A leaf certificate binding a domain name to a subject key."""

    domain: str
    subject_key: PublicKey
    issuer: str               # CA name
    issuer_fingerprint: str   # CA key fingerprint
    serial: int
    not_before: float
    not_after: float
    signature: int

    def tbs_bytes(self) -> bytes:
        return canonical_bytes(
            {
                "domain": self.domain,
                "subject": self.subject_key.to_dict(),
                "issuer": self.issuer,
                "issuer_fp": self.issuer_fingerprint,
                "serial": self.serial,
                "not_before": self.not_before,
                "not_after": self.not_after,
            }
        )

    def verify_signature(self, issuer_key: PublicKey) -> bool:
        return verify(self.tbs_bytes(), self.signature, issuer_key)

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    def matches_domain(self, domain: str) -> bool:
        """Exact or single-label-wildcard-free match (DV certs here
        cover exactly the validated name plus its www form)."""
        domain = domain.lower().rstrip(".")
        return domain == self.domain or domain == f"www.{self.domain}"

    def __repr__(self) -> str:
        return f"<TLSCertificate {self.domain!r} by {self.issuer}>"


def verify_chain(
    certificate: TLSCertificate,
    domain: str,
    trusted_roots: dict,
    now: float,
) -> bool:
    """Client-side verification: trusted issuer, valid window, name
    match, genuine signature.  ``trusted_roots`` maps CA fingerprint
    to the CA's public key (the client's root store)."""
    issuer_key = trusted_roots.get(certificate.issuer_fingerprint)
    if issuer_key is None:
        return False
    if not certificate.valid_at(now):
        return False
    if not certificate.matches_domain(domain):
        return False
    return certificate.verify_signature(issuer_key)
