"""Domain-control validation over the routing substrate.

An HTTP-01-style check: the CA resolves the domain, then "connects"
to the resolved address *from its own AS*.  Whoever the routing
system delivers that connection to can answer the challenge.  This is
precisely the step a BGP hijack subverts — the CA's packets land at
the attacker, who happily serves the expected token.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Set, Union

from repro.dns import PublicResolver
from repro.dns.errors import DNSError, ResolutionError
from repro.net import ASN, Address, Prefix


class ValidationOutcome(enum.Enum):
    CONTROL_PROVEN = "control_proven"
    CONTROL_FAILED = "control_failed"
    UNRESOLVABLE = "unresolvable"
    UNROUTABLE = "unroutable"

    def __str__(self) -> str:
        return self.value


@dataclass
class DomainControlValidator:
    """Performs the CA-side reachability check.

    ``address_owner`` maps an address to the AS that *legitimately*
    hosts it (from the world's ground truth); the routing decision of
    the CA's AS decides where the connection actually lands.
    """

    resolver: PublicResolver
    ca_asn: ASN

    def validate(
        self,
        domain: str,
        claimant_asn: Union[int, ASN],
        routing_lookup,
        legitimate_host_asn,
    ) -> ValidationOutcome:
        """Check whether ``claimant_asn`` controls ``domain``.

        ``routing_lookup(ca_asn, address)`` must return the origin AS
        the CA's traffic for ``address`` is delivered to (or None);
        ``legitimate_host_asn(address)`` returns the AS that genuinely
        hosts the address.  Control is proven when the delivery AS is
        the claimant — legitimately or through a hijack.
        """
        try:
            answer = self.resolver.resolve(domain)
        except (DNSError, ResolutionError):
            return ValidationOutcome.UNRESOLVABLE
        if not answer.addresses:
            return ValidationOutcome.UNRESOLVABLE

        claimant = ASN(claimant_asn)
        for address in answer.addresses:
            delivered_to = routing_lookup(self.ca_asn, address)
            if delivered_to is None:
                continue
            if delivered_to == claimant:
                return ValidationOutcome.CONTROL_PROVEN
            legitimate = legitimate_host_asn(address)
            if legitimate is not None and delivered_to == legitimate:
                # The genuine host answered; the claimant (if not the
                # host) fails.
                if claimant == legitimate:
                    return ValidationOutcome.CONTROL_PROVEN
                return ValidationOutcome.CONTROL_FAILED
        return ValidationOutcome.UNROUTABLE
