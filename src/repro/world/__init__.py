"""Time-stepped CA/publication world engine (``repro.world``).

The paper's finding — sparse, operationally fragile RPKI coverage of
the web — is a statement about how the *CA side* behaves over time.
This package steps that behaviour: a deterministic, seeded engine
advances virtual time over the existing :mod:`repro.rpki` object
model, re-signing manifests and CRLs on schedule, issuing and
expiring ROAs, staging key rollovers, and letting publication points
go dark, while a relying-party view applies RFC 9286-style freshness
rules so stale points *degrade* (serve cached VRPs inside a grace
window) instead of vanishing.

* :mod:`repro.world.events` — the :class:`WorldEvent` ledger with a
  canonical digest (bit-identical replay is asserted on it);
* :mod:`repro.world.scenarios` — named scenario profiles (``calm``,
  ``sloppy-ca``, ``flap``, ``rollover-storm``) built on the
  :class:`repro.faults.FaultPlan` seeded-schedule machinery;
* :mod:`repro.world.view` — :class:`RelyingPartyView`, the freshness
  and fallback layer over the strict validator;
* :mod:`repro.world.engine` — :class:`WorldEngine` itself;
* :mod:`repro.world.sink` — :class:`WorldSink`, the
  :class:`repro.core.continuous.CampaignSink` that turns each engine
  step into a refresh campaign.
"""

from repro.world.engine import WorldConfig, WorldEngine, WorldStep, WorldSummary
from repro.world.events import EventLedger, WorldEvent
from repro.world.scenarios import WORLD_PROFILES, world_plan
from repro.world.sink import WorldSink
from repro.world.view import (
    RelyingPartyView,
    ViewObservation,
    vrp_key,
    vrp_rows,
)

__all__ = [
    "EventLedger",
    "RelyingPartyView",
    "ViewObservation",
    "WORLD_PROFILES",
    "WorldConfig",
    "WorldEngine",
    "WorldEvent",
    "WorldSink",
    "WorldStep",
    "WorldSummary",
    "world_plan",
    "vrp_key",
    "vrp_rows",
]
