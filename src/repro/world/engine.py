"""The time-stepped CA/publication world engine.

:class:`WorldEngine` advances virtual time in fixed steps over a live
:class:`repro.rpki.Repository`.  Each step, every certificate
authority (the RIR trust anchors and the delegated organisation CAs)
makes its seeded decisions — re-sign the manifest and CRL on
schedule, issue a ROA on a still-unsigned holding, withdraw or let
expire a published ROA, stage or complete a key rollover, or suffer a
publication-point outage that leaves everything to go stale — and a
:class:`~repro.world.view.RelyingPartyView` then observes the result
under strict RFC 9286-style freshness rules.

Everything is a pure function of ``(seed, profile, step)``: the
per-CA decisions come from a :class:`repro.faults.FaultPlan`, key
material from :class:`~repro.crypto.DeterministicRNG` forks, and all
iteration is in sorted order — so the same seed replays the same
event ledger and per-step VRP sets bit-for-bit, on any backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto import DeterministicRNG
from repro.faults import (
    WORLD_CRL_SKIP,
    WORLD_KEY_ROLLOVER,
    WORLD_MANIFEST_SKIP,
    WORLD_PP_OUTAGE,
    WORLD_ROA_ISSUE,
    WORLD_ROA_WITHDRAW,
    FaultPlan,
)
from repro.net import ASN, Prefix
from repro.rpki import (
    CertificateAuthority,
    Repository,
    ResourceSet,
    TrustAnchorLocator,
    ValidatedPayloads,
)
from repro.rpki.cert import ResourceCertificate
from repro.rpki.crl import issue_crl
from repro.rpki.manifest import issue_manifest
from repro.rpki.roa import issue_roa
from repro.world import events as ev
from repro.world.events import EventLedger, WorldEvent
from repro.world.scenarios import world_plan
from repro.world.view import RelyingPartyView, ViewObservation, vrp_rows


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the world's clock and object lifetimes.

    Times are in the simulation's day units (the ecosystem's
    certificates use the same scale).  The defaults make one step one
    day, with manifests and CRLs valid for a day and a half — so one
    missed re-sign leaves a point current, two open a stale window —
    and a two-day relying-party grace before stale VRPs drop.
    """

    profile: str = "calm"
    seed: int = 0
    step: float = 1.0
    manifest_validity: float = 1.5
    crl_validity: float = 1.5
    roa_validity: float = 15.0
    grace: float = 2.0
    # Synthetic-world shape (WorldEngine.synthetic only).
    synthetic_cas: int = 8
    synthetic_prefixes: int = 6
    key_bits: int = 512

    def __post_init__(self):
        if self.step <= 0:
            raise ValueError("step must be > 0")
        if self.manifest_validity <= 0 or self.crl_validity <= 0:
            raise ValueError("validity windows must be > 0")


@dataclass
class _Actor:
    """One CA's mutable world-side state."""

    name: str
    ca: CertificateAuthority
    parent: Optional[CertificateAuthority]  # None for trust anchors
    holdings: Dict[Prefix, ASN] = field(default_factory=dict)
    manifest_number: int = 1
    roa_sequence: int = 0
    retiring: Optional[ResourceCertificate] = None
    retired_fingerprint: Optional[str] = None


@dataclass
class WorldStep:
    """One advanced step: its events and the observed VRP set."""

    index: int
    time: float
    observation: ViewObservation
    events: List[WorldEvent] = field(default_factory=list)
    vrps_added: int = 0
    vrps_removed: int = 0

    @property
    def payloads(self) -> ValidatedPayloads:
        return self.observation.payloads


@dataclass
class WorldSummary:
    """Aggregates over a run, for ``obs.world_report`` and JSON."""

    profile: str
    seed: int
    steps: int
    authorities: int
    events_by_kind: Dict[str, int]
    final_vrps: int
    vrps_added_total: int
    vrps_removed_total: int
    stale_point_observations: int
    dropped_point_observations: int
    ledger_digest: str
    delta_sizes: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict shape for ``obs.world_report`` and JSON dumps."""
        return {
            "profile": self.profile,
            "seed": self.seed,
            "steps": self.steps,
            "authorities": self.authorities,
            "events_by_kind": dict(self.events_by_kind),
            "final_vrps": self.final_vrps,
            "vrps_added_total": self.vrps_added_total,
            "vrps_removed_total": self.vrps_removed_total,
            "stale_point_observations": self.stale_point_observations,
            "dropped_point_observations": self.dropped_point_observations,
            "ledger_digest": self.ledger_digest,
            "delta_sizes": list(self.delta_sizes),
        }


class WorldEngine:
    """Steps the CA-side world; see the module docstring."""

    def __init__(
        self,
        repository: Repository,
        tals: List[TrustAnchorLocator],
        actors: List[_Actor],
        config: WorldConfig,
        start_time: float = 0.0,
    ):
        self._repository = repository
        self._tals = tals
        self._actors = sorted(actors, key=lambda a: a.name)
        self._config = config
        self._plan: FaultPlan = world_plan(config.profile, seed=config.seed)
        self._view = RelyingPartyView(repository, tals, grace=config.grace)
        self._ledger = EventLedger()
        self._step_index = 0
        self._time = start_time
        self._steps: List[WorldStep] = []
        # Bootstrap: republish every point with real validity windows
        # (the adoption model publishes with effectively-infinite
        # ones) and take the step-0 observation.
        for actor in self._actors:
            self._publish_point(actor, self._time)
        self._observe_step()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_ecosystem(
        cls, world, config: Optional[WorldConfig] = None
    ) -> "WorldEngine":
        """Drive the CA hierarchy an adoption model already built.

        ``world`` is a built :class:`repro.web.WebEcosystem`; the
        engine takes over its repository, trust anchors, and the
        retained CA objects, so stepped VRP churn lands on exactly
        the prefixes the measurement funnel resolves against.
        """
        config = config or WorldConfig()
        adoption = world.adoption
        if not adoption.anchors:
            raise ValueError(
                "the ecosystem's adoption outcome retains no CA objects"
            )
        organisations = {org.name: org for org in world.organisations}
        anchors_by_fp = {
            anchor.keypair.public.fingerprint(): anchor
            for anchor in adoption.anchors.values()
        }
        actors: List[_Actor] = [
            _Actor(name=anchor.name, ca=anchor, parent=None)
            for anchor in adoption.anchors.values()
        ]
        for name in sorted(adoption.authorities):
            ca = adoption.authorities[name]
            parent = anchors_by_fp[ca.certificate.issuer_fingerprint]
            holdings = dict(organisations[name].prefixes) if name in organisations else {}
            actors.append(
                _Actor(name=name, ca=ca, parent=parent, holdings=holdings)
            )
        return cls(
            repository=adoption.repository,
            tals=list(adoption.tals),
            actors=actors,
            config=config,
            start_time=world.config.adoption.validation_time,
        )

    @classmethod
    def synthetic(cls, config: Optional[WorldConfig] = None) -> "WorldEngine":
        """A self-contained world (no ecosystem build required).

        One trust anchor delegates ``synthetic_cas`` CAs, each holding
        ``synthetic_prefixes`` /20s out of 60.0.0.0/8 with a
        documentation-range origin AS; half of each CA's holdings
        start signed.  Useful for unit tests and benchmarks.
        """
        config = config or WorldConfig()
        rng = DeterministicRNG(config.seed).fork("world-synthetic")
        anchor = CertificateAuthority.create_trust_anchor(
            "WORLD-TA", rng.fork("ta"), key_bits=config.key_bits
        )
        repository = Repository()
        repository.add_trust_anchor(anchor.certificate)
        tals = [TrustAnchorLocator.for_authority(anchor)]
        actors: List[_Actor] = [_Actor(name="WORLD-TA", ca=anchor, parent=None)]

        base = 60 << 24
        initial_roas: Dict[str, List] = {}
        for index in range(config.synthetic_cas):
            name = f"CA-{index:02d}"
            asn = ASN(64496 + index)
            holdings: Dict[Prefix, ASN] = {}
            for offset in range(config.synthetic_prefixes):
                value = base + (
                    (index * config.synthetic_prefixes + offset) << 12
                )
                holdings[Prefix(4, value, 20)] = asn
            ca = anchor.issue_child_ca(
                name,
                ResourceSet(prefixes=holdings.keys()).with_asns([asn]),
            )
            actors.append(
                _Actor(name=name, ca=ca, parent=anchor, holdings=holdings)
            )
            signed = sorted(holdings, key=str)[
                : max(1, len(holdings) // 2)
            ]
            initial_roas[name] = [
                issue_roa(ca, asn, [(prefix, 24)]) for prefix in signed
            ]

        from repro.rpki.repository import publish_ca_products

        for actor in actors:
            publish_ca_products(
                repository, actor.ca, initial_roas.get(actor.name, [])
            )
        return cls(
            repository=repository,
            tals=tals,
            actors=actors,
            config=config,
            start_time=0.0,
        )

    # -- accessors ------------------------------------------------------

    @property
    def config(self) -> WorldConfig:
        return self._config

    @property
    def repository(self) -> Repository:
        return self._repository

    @property
    def tals(self) -> List[TrustAnchorLocator]:
        return list(self._tals)

    @property
    def ledger(self) -> EventLedger:
        return self._ledger

    @property
    def time(self) -> float:
        return self._time

    @property
    def step_index(self) -> int:
        return self._step_index

    @property
    def steps(self) -> List[WorldStep]:
        return list(self._steps)

    @property
    def current(self) -> WorldStep:
        """The most recent step (step 0 right after construction)."""
        return self._steps[-1]

    @property
    def payloads(self) -> ValidatedPayloads:
        return self.current.payloads

    def authorities(self) -> List[str]:
        return [actor.name for actor in self._actors]

    def origin_asns(self) -> Set[ASN]:
        """Every origin AS the world's holdings map to."""
        return {
            asn
            for actor in self._actors
            for asn in actor.holdings.values()
        }

    # -- stepping -------------------------------------------------------

    def step(self) -> WorldStep:
        """Advance one step: mutate, publish, observe."""
        self._step_index += 1
        self._time += self._config.step
        outages = set()
        for actor in self._actors:
            if self._decide(WORLD_PP_OUTAGE, actor):
                outages.add(actor.name)
                self._emit(ev.PP_OUTAGE, actor.name)
                continue
            self._mutate_actor(actor)
        for actor in self._actors:
            if actor.name in outages:
                continue
            self._publish_point(
                actor,
                self._time,
                skip_manifest=self._decide(WORLD_MANIFEST_SKIP, actor),
                skip_crl=self._decide(WORLD_CRL_SKIP, actor),
            )
        return self._observe_step()

    def run(self, steps: int) -> List[WorldStep]:
        return [self.step() for _ in range(steps)]

    def summary(self) -> WorldSummary:
        stale = sum(s.observation.stale_points for s in self._steps)
        dropped = sum(s.observation.dropped_points for s in self._steps)
        return WorldSummary(
            profile=self._config.profile,
            seed=self._config.seed,
            steps=self._step_index,
            authorities=len(self._actors),
            events_by_kind=self._ledger.counts_by_kind(),
            final_vrps=len(self.payloads),
            vrps_added_total=sum(s.vrps_added for s in self._steps),
            vrps_removed_total=sum(s.vrps_removed for s in self._steps),
            stale_point_observations=stale,
            dropped_point_observations=dropped,
            ledger_digest=self._ledger.digest(),
            delta_sizes=[
                s.vrps_added + s.vrps_removed for s in self._steps[1:]
            ],
        )

    # -- per-actor lifecycle --------------------------------------------

    def _decide(self, kind: str, actor: _Actor) -> bool:
        return self._plan.should_fail(
            kind, f"{actor.name}#{self._step_index}", 0
        )

    def _emit(self, kind: str, subject: str, **detail) -> None:
        self._ledger.append(
            WorldEvent.make(
                self._step_index, self._time, kind, subject, **detail
            )
        )

    def _mutate_actor(self, actor: _Actor) -> None:
        self._complete_rollover(actor)
        if (
            actor.parent is not None
            and actor.retiring is None
            and self._decide(WORLD_KEY_ROLLOVER, actor)
        ):
            self._stage_rollover(actor)
        point = self._repository.point_for(
            actor.ca.keypair.public.fingerprint()
        )
        self._expire_roas(actor, point)
        if self._decide(WORLD_ROA_WITHDRAW, actor) and point.roas:
            name = sorted(point.roas)[0]
            withdrawn = point.roas[name]
            point.remove(name)
            self._emit(
                ev.ROA_WITHDRAWN,
                actor.name,
                object=name,
                prefixes=",".join(str(e.prefix) for e in withdrawn.prefixes),
            )
        if self._decide(WORLD_ROA_ISSUE, actor) and actor.holdings:
            self._issue_roa(actor, point)

    def _expire_roas(self, actor: _Actor, point) -> None:
        for name in sorted(point.roas):
            roa = point.roas[name]
            if roa.ee_certificate.not_after < self._time:
                point.remove(name)
                self._emit(
                    ev.ROA_EXPIRED,
                    actor.name,
                    object=name,
                    prefixes=",".join(str(e.prefix) for e in roa.prefixes),
                )

    def _issue_roa(self, actor: _Actor, point) -> None:
        signed = {
            entry.prefix
            for roa in point.roas.values()
            for entry in roa.prefixes
        }
        unsigned = sorted(
            (p for p in actor.holdings if p not in signed), key=str
        )
        if not unsigned:
            return
        prefix = unsigned[0]
        origin = actor.holdings[prefix]
        max_length = max(prefix.length, 24 if prefix.family == 4 else 48)
        roa = issue_roa(
            actor.ca,
            origin,
            [(prefix, max_length)],
            not_before=self._time,
            not_after=self._time + self._config.roa_validity,
        )
        actor.roa_sequence += 1
        name = f"world-{actor.roa_sequence}.roa"
        point.add_roa(name, roa)
        self._emit(
            ev.ROA_ISSUED,
            actor.name,
            object=name,
            prefix=str(prefix),
            asn=int(origin),
        )

    def _stage_rollover(self, actor: _Actor) -> None:
        old_certificate = actor.parent.rollover_child(actor.ca)
        actor.retiring = old_certificate
        actor.retired_fingerprint = old_certificate.fingerprint()
        old_point = self._repository.lookup(old_certificate.fingerprint())
        new_point = self._repository.point_for(
            actor.ca.keypair.public.fingerprint()
        )
        # Re-sign every published product under the new key; the old
        # point keeps serving the old-key copies until completion.
        if old_point is not None:
            for name in sorted(old_point.roas):
                roa = old_point.roas[name]
                new_point.add_roa(
                    name,
                    issue_roa(
                        actor.ca,
                        roa.as_id,
                        list(roa.prefixes),
                        not_before=roa.ee_certificate.not_before,
                        not_after=roa.ee_certificate.not_after,
                    ),
                )
            for name in sorted(old_point.child_certificates):
                new_point.add_certificate(
                    name, old_point.child_certificates[name]
                )
        self._emit(
            ev.ROLLOVER_STAGED,
            actor.name,
            new_serial=actor.ca.certificate.serial,
            old_serial=old_certificate.serial,
        )

    def _complete_rollover(self, actor: _Actor) -> None:
        if actor.retiring is None:
            return
        actor.parent.revoke(actor.retiring.serial)
        self._repository.remove_point(actor.retired_fingerprint)
        parent_point = self._repository.lookup(
            actor.parent.keypair.public.fingerprint()
        )
        if parent_point is not None:
            parent_point.remove(f"{actor.name}-pre.cer")
        self._emit(
            ev.ROLLOVER_COMPLETED,
            actor.name,
            revoked_serial=actor.retiring.serial,
        )
        actor.retiring = None
        actor.retired_fingerprint = None

    def _publish_point(
        self,
        actor: _Actor,
        now: float,
        skip_manifest: bool = False,
        skip_crl: bool = False,
    ) -> None:
        """Re-publish one CA's point: children, CRL, and manifest."""
        point = self._repository.point_for(
            actor.ca.keypair.public.fingerprint()
        )
        for child in actor.ca.children:
            point.add_certificate(f"{child.name}.cer", child.certificate)
        # A mid-rollover child keeps its superseded certificate
        # published until the rollover completes.
        for child_actor in self._actors:
            if (
                child_actor.parent is actor.ca
                and child_actor.retiring is not None
            ):
                point.add_certificate(
                    f"{child_actor.name}-pre.cer", child_actor.retiring
                )
        if skip_crl:
            self._emit(ev.CRL_SKIPPED, actor.name)
        else:
            point.crl = issue_crl(
                actor.ca,
                this_update=now,
                next_update=now + self._config.crl_validity,
            )
        if skip_manifest:
            self._emit(ev.MANIFEST_SKIPPED, actor.name)
        else:
            actor.manifest_number += 1
            point.manifest = issue_manifest(
                actor.ca,
                point.object_hashes(),
                manifest_number=actor.manifest_number,
                this_update=now,
                next_update=now + self._config.manifest_validity,
            )

    # -- observation ----------------------------------------------------

    def _observe_step(self) -> WorldStep:
        observation = self._view.observe(self._time)
        rows = set(observation.rows())
        previous = (
            set(self._steps[-1].observation.rows()) if self._steps else set()
        )
        step = WorldStep(
            index=self._step_index,
            time=self._time,
            observation=observation,
            vrps_added=len(rows - previous),
            vrps_removed=len(previous - rows),
        )
        self._emit(
            ev.STEP_OBSERVED,
            "world",
            vrps=observation.total_vrps,
            fresh=observation.fresh_vrps,
            stale=observation.stale_vrps,
            fresh_points=observation.fresh_points,
            stale_points=observation.stale_points,
            dropped_points=observation.dropped_points,
            rejected=observation.rejected_objects,
            added=step.vrps_added,
            removed=step.vrps_removed,
        )
        step.events = self._ledger.events_for_step(self._step_index)
        self._steps.append(step)
        return step
