"""The world's event ledger.

Every CA-side action the engine takes — and every degradation the
relying-party view observes — is appended to an :class:`EventLedger`
as a :class:`WorldEvent`.  The ledger is the world's audit trail *and*
its determinism witness: :meth:`EventLedger.digest` hashes the
canonical encoding of every event, so two runs from the same seed and
profile must produce byte-identical digests (the CI smoke asserts
exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Tuple, Union

from repro.crypto.digest import canonical_bytes, sha256_hex

Detail = Union[str, int, float]

# Event kinds the engine and view emit, namespaced by actor.
ROA_ISSUED = "roa.issued"
ROA_WITHDRAWN = "roa.withdrawn"
ROA_EXPIRED = "roa.expired"
MANIFEST_SKIPPED = "manifest.skipped"
CRL_SKIPPED = "crl.skipped"
PP_OUTAGE = "pp.outage"
ROLLOVER_STAGED = "rollover.staged"
ROLLOVER_COMPLETED = "rollover.completed"
STEP_OBSERVED = "step.observed"

EVENT_KINDS: Tuple[str, ...] = (
    ROA_ISSUED,
    ROA_WITHDRAWN,
    ROA_EXPIRED,
    MANIFEST_SKIPPED,
    CRL_SKIPPED,
    PP_OUTAGE,
    ROLLOVER_STAGED,
    ROLLOVER_COMPLETED,
    STEP_OBSERVED,
)


@dataclass(frozen=True)
class WorldEvent:
    """One CA-side action or observation at one virtual time."""

    step: int
    time: float
    kind: str
    subject: str                     # CA name, or "world" for step summaries
    detail: Tuple[Tuple[str, Detail], ...] = ()

    @classmethod
    def make(
        cls,
        step: int,
        time: float,
        kind: str,
        subject: str,
        **detail: Detail,
    ) -> "WorldEvent":
        return cls(
            step=step,
            time=time,
            kind=kind,
            subject=subject,
            detail=tuple(sorted(detail.items())),
        )

    def detail_dict(self) -> Dict[str, Detail]:
        return dict(self.detail)

    def to_row(self) -> Dict[str, Detail]:
        """A JSON-ready flat record (for ``ripki world --json``)."""
        row: Dict[str, Detail] = {
            "step": self.step,
            "time": self.time,
            "kind": self.kind,
            "subject": self.subject,
        }
        row.update(self.detail)
        return row

    def __repr__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"<WorldEvent #{self.step} {self.kind} {self.subject} {details}>"


class EventLedger:
    """Append-only event log with a canonical replay digest."""

    def __init__(self):
        self._events: List[WorldEvent] = []

    def append(self, event: WorldEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[WorldEvent]:
        return iter(self._events)

    def events_for_step(self, step: int) -> List[WorldEvent]:
        return [event for event in self._events if event.step == step]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_rows(self) -> List[Dict[str, Detail]]:
        """JSON-ready rows, in emission order."""
        return [event.to_row() for event in self._events]

    def digest(self) -> str:
        """Canonical hash over every event, in order.

        Two worlds stepped from the same seed and profile must agree
        on this digest bit-for-bit — the replay guarantee the world
        CI job pins.
        """
        return sha256_hex(
            canonical_bytes(
                [
                    [
                        event.step,
                        event.time,
                        event.kind,
                        event.subject,
                        [list(item) for item in event.detail],
                    ]
                    for event in self._events
                ]
            )
        )

    def __repr__(self) -> str:
        return f"<EventLedger {len(self._events)} events>"
