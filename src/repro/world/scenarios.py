"""Named world scenarios.

Each profile is a rate table over the ``world.*`` fault kinds,
consumed through :class:`repro.faults.FaultPlan` — the same pure
``(seed, kind, key)`` schedule the measurement-side fault layer uses.
That inheritance is the whole point: a world stepped from seed *S*
under profile *P* makes identical per-step decisions no matter which
execution backend later measures it, so the event ledger and VRP sets
replay bit-identically.

Rates are per CA per step.  ``calm`` models well-run CAs (pure ROA
churn, everything re-signed on time); ``sloppy-ca`` adds the missed
manifest/CRL re-signs Müller-Brus et al. observe in the wild;
``flap`` makes publication points wink in and out so stale windows
open and close; ``rollover-storm`` piles staged key rollovers on top.
"""

from __future__ import annotations

from typing import Dict

from repro.faults import (
    WORLD_CRL_SKIP,
    WORLD_KEY_ROLLOVER,
    WORLD_MANIFEST_SKIP,
    WORLD_PP_OUTAGE,
    WORLD_ROA_ISSUE,
    WORLD_ROA_WITHDRAW,
    FaultPlan,
)

WORLD_PROFILES: Dict[str, Dict[str, float]] = {
    "calm": {
        WORLD_ROA_ISSUE: 0.10,
        WORLD_ROA_WITHDRAW: 0.03,
    },
    "sloppy-ca": {
        WORLD_ROA_ISSUE: 0.15,
        WORLD_ROA_WITHDRAW: 0.08,
        WORLD_MANIFEST_SKIP: 0.20,
        WORLD_CRL_SKIP: 0.15,
        WORLD_PP_OUTAGE: 0.08,
    },
    "flap": {
        WORLD_ROA_ISSUE: 0.08,
        WORLD_ROA_WITHDRAW: 0.05,
        WORLD_PP_OUTAGE: 0.30,
        WORLD_MANIFEST_SKIP: 0.05,
    },
    "rollover-storm": {
        WORLD_ROA_ISSUE: 0.10,
        WORLD_ROA_WITHDRAW: 0.05,
        WORLD_KEY_ROLLOVER: 0.25,
        WORLD_MANIFEST_SKIP: 0.05,
        WORLD_CRL_SKIP: 0.05,
    },
}


def world_plan(profile: str, seed: int = 0) -> FaultPlan:
    """The seeded schedule for a named world profile."""
    try:
        rates = WORLD_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown world profile {profile!r}; "
            f"known: {sorted(WORLD_PROFILES)}"
        ) from None
    # max_consecutive=1: the engine redraws each step with a fresh
    # key, so consecutive-failure budgets would be redundant state.
    return FaultPlan.from_rates(rates, seed=seed, max_consecutive=1)
