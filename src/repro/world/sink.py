"""WorldSink: each refresh campaign measures a freshly stepped world.

Attached via ``ContinuousStudy.attach(WorldSink(engine))``, the sink
advances the :class:`~repro.world.engine.WorldEngine` one step before
every refresh campaign and swaps the step's observed VRP set into the
study.  On a cache-backed config that changes the VRP digest, so the
snapshot cache invalidates exactly the artifacts whose prefix/origin
pairs the churn touched — realistic selective invalidation instead of
synthetic diffs.  The baseline campaign measures the world's step-0
observation (strict validation of the bootstrap state).
"""

from __future__ import annotations

from typing import List

from repro.core.continuous import CampaignSink, ContinuousStudy
from repro.core.pipeline import StudyResult
from repro.world.engine import WorldEngine, WorldStep


class WorldSink(CampaignSink):
    """Steps a world engine in front of every refresh campaign."""

    def __init__(self, engine: WorldEngine):
        self._engine = engine
        self.steps: List[WorldStep] = []

    @property
    def engine(self) -> WorldEngine:
        return self._engine

    def on_attach(self, continuous: ContinuousStudy) -> None:
        # The baseline measures the bootstrap observation, not the
        # adoption model's permissive validation pass.
        continuous.study.replace_payloads(self._engine.payloads)

    def before_campaign(
        self, continuous: ContinuousStudy, campaign_index: int
    ) -> None:
        if campaign_index == 0:
            self.steps.append(self._engine.current)
            return
        step = self._engine.step()
        self.steps.append(step)
        continuous.study.replace_payloads(step.payloads)
