"""The relying-party view: freshness rules and graceful degradation.

RFC 9286 tells a relying party what to do when a publication point's
manifest is missing, stale, or inconsistent: treat the fetch as
failed and *continue using the previously validated objects* until a
local expiry — degrade, don't vanish.  :class:`RelyingPartyView`
implements that contract over the strict validator:

* a **fresh** point (current, verifiable manifest; its objects
  survive strict validation) contributes its VRPs and refreshes the
  view's per-point cache;
* a **stale** point (expired/skipped manifest, or an outage upstream
  that took its certificate chain down) serves the cached VRPs from
  its last successful fetch, for up to ``grace`` time units;
* a point stale for longer than the grace window is **dropped** — its
  VRPs finally leave the set, which is exactly the silent erosion the
  paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.rpki import (
    RelyingParty,
    Repository,
    TrustAnchorLocator,
    ValidatedPayloads,
)
from repro.rpki.vrp import VRP

# A VRP's identity for delta/caching purposes (trust anchor excluded:
# a rollover must not read as a VRP change).
VrpKey = Tuple[str, int, int]


def vrp_key(vrp: VRP) -> VrpKey:
    return (str(vrp.prefix), vrp.max_length, int(vrp.asn))


def vrp_rows(payloads_or_vrps) -> Tuple[Tuple[str, int, int, str], ...]:
    """Sorted primitive rows for digesting and delta accounting."""
    return tuple(
        sorted(
            (str(v.prefix), v.max_length, int(v.asn), v.trust_anchor)
            for v in payloads_or_vrps
        )
    )


@dataclass
class _PointCache:
    """The last successful fetch of one publication point."""

    vrps: Tuple[VRP, ...]
    fetched_at: float


@dataclass
class ViewObservation:
    """One relying-party pass over the repository at a virtual time."""

    time: float
    payloads: ValidatedPayloads
    fresh_vrps: int = 0
    stale_vrps: int = 0
    fresh_points: int = 0
    stale_points: int = 0
    dropped_points: int = 0
    rejected_objects: int = 0

    @property
    def total_vrps(self) -> int:
        return self.fresh_vrps + self.stale_vrps

    def rows(self) -> Tuple[Tuple[str, int, int, str], ...]:
        return vrp_rows(self.payloads)


class RelyingPartyView:
    """A stateful relying party with RFC 9286-style fallback.

    ``grace`` is how long (in the world's virtual time units) a
    point's previously validated VRPs stay served after its manifest
    stops being fresh.
    """

    def __init__(
        self,
        repository: Repository,
        tals: Sequence[TrustAnchorLocator],
        grace: float = 2.0,
    ):
        if grace < 0:
            raise ValueError("grace must be >= 0")
        self._repository = repository
        self._tals = list(tals)
        self._grace = grace
        self._validator = RelyingParty(repository, strict_manifests=True)
        self._cache: Dict[str, _PointCache] = {}

    @property
    def grace(self) -> float:
        return self._grace

    def observe(self, now: float) -> ViewObservation:
        """Validate at ``now`` and fold in the grace-window fallback."""
        fresh, report = self._validator.validate(self._tals, now=now)
        fresh_by_key: Dict[VrpKey, VRP] = {vrp_key(v): v for v in fresh}

        observation = ViewObservation(
            time=now,
            payloads=ValidatedPayloads(),
            rejected_objects=report.rejected_count,
        )
        combined: Dict[VrpKey, VRP] = {}

        for fingerprint, point in sorted(
            (p.ca_fingerprint, p) for p in self._repository.points()
        ):
            candidates = self._candidate_keys(point)
            manifest = point.manifest
            fresh_here = [
                fresh_by_key[key] for key in candidates if key in fresh_by_key
            ]
            manifest_current = (
                manifest is not None and manifest.is_current(now)
            )
            # A current manifest whose candidate ROAs all failed
            # strict validation means the failure is upstream (its own
            # CA certificate was rejected or revoked) — treat that
            # like a failed fetch too.
            point_fresh = manifest_current and (
                bool(fresh_here) or not candidates
            )
            if point_fresh:
                observation.fresh_points += 1
                self._cache[fingerprint] = _PointCache(
                    vrps=tuple(fresh_here), fetched_at=now
                )
                for vrp in fresh_here:
                    combined.setdefault(vrp_key(vrp), vrp)
                continue
            cached = self._cache.get(fingerprint)
            if cached is not None and now - cached.fetched_at <= self._grace:
                observation.stale_points += 1
                for vrp in cached.vrps:
                    key = vrp_key(vrp)
                    if key not in combined and key not in fresh_by_key:
                        combined[key] = vrp
                        observation.stale_vrps += 1
            else:
                observation.dropped_points += 1

        # VRPs from fresh points plus anything else strict validation
        # accepted (e.g. a point created this step, cache-less).
        for key, vrp in fresh_by_key.items():
            combined.setdefault(key, vrp)
        observation.fresh_vrps = len(combined) - observation.stale_vrps
        for _key, vrp in sorted(combined.items()):
            observation.payloads.add(vrp)
        return observation

    @staticmethod
    def _candidate_keys(point) -> List[VrpKey]:
        """The VRP identities this point's ROAs would produce."""
        keys: List[VrpKey] = []
        for roa in point.roas.values():
            for entry in roa.prefixes:
                keys.append(
                    (str(entry.prefix), entry.max_length, int(roa.as_id))
                )
        return keys
