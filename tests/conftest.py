"""Shared fixtures: a session-scoped small world for integration tests."""

import pytest

from repro.web import EcosystemConfig, WebEcosystem


@pytest.fixture(scope="session")
def small_world():
    """A small but complete ecosystem shared by integration tests."""
    config = EcosystemConfig(
        domain_count=2000, seed=42, hoster_count=150, eyeball_count=60
    )
    return WebEcosystem.build(config)
