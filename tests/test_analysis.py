"""Tests for repro.analysis."""

import pytest

from repro.analysis import (
    BinnedSeries,
    TextTable,
    bin_means,
    bin_shares,
    mean,
    quantile,
    trend_slope,
)


class TestBinMeans:
    def test_simple_binning(self):
        series = bin_means([1.0, 3.0, 5.0, 7.0], bin_size=2)
        assert series.values == [2.0, 6.0]
        assert series.counts == [2, 2]

    def test_none_values_skipped(self):
        series = bin_means([1.0, None, None, 7.0], bin_size=2)
        assert series.values == [1.0, 7.0]
        assert series.counts == [1, 1]

    def test_all_none_bin_is_zero(self):
        series = bin_means([None, None, 4.0, 6.0], bin_size=2)
        assert series.values == [0.0, 5.0]
        assert series.counts == [0, 2]

    def test_ragged_tail(self):
        series = bin_means([1.0, 1.0, 5.0], bin_size=2)
        assert series.values == [1.0, 5.0]
        assert series.counts == [2, 1]

    def test_invalid_bin_size(self):
        with pytest.raises(ValueError):
            bin_means([1.0], bin_size=0)

    def test_bin_shares(self):
        series = bin_shares([True, False, None, True], bin_size=2)
        assert series.values == [0.5, 1.0]
        assert series.counts == [2, 1]


class TestBinnedSeries:
    @pytest.fixture()
    def series(self):
        return BinnedSeries(
            label="x", bin_size=10, values=[1.0, 2.0, 3.0, 4.0],
            counts=[10, 10, 10, 10],
        )

    def test_bin_range(self, series):
        assert series.bin_range(0) == (1, 10)
        assert series.bin_range(3) == (31, 40)

    def test_head_tail_mean(self, series):
        assert series.head_mean(2) == 1.5
        assert series.tail_mean(2) == 3.5
        assert series.head_mean(100) == 2.5

    def test_weighted_mean(self):
        series = BinnedSeries("x", 10, [1.0, 3.0], counts=[30, 10])
        assert series.mean() == pytest.approx(1.5)

    def test_unweighted_mean_without_counts(self):
        series = BinnedSeries("x", 10, [1.0, 3.0])
        assert series.mean() == 2.0
        assert BinnedSeries("x", 10, []).mean() == 0.0

    def test_rows(self, series):
        rows = series.rows()
        assert rows[0] == (1, 10, 1.0)
        assert len(rows) == 4

    def test_len_and_repr(self, series):
        assert len(series) == 4
        assert "4 bins" in repr(series)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_quantile(self):
        values = list(range(100))
        assert quantile(values, 0.0) == 0
        assert quantile(values, 0.5) == 50
        assert quantile(values, 1.0) == 99
        assert quantile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            quantile(values, 1.5)

    def test_trend_slope(self):
        assert trend_slope([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        assert trend_slope([3.0, 2.0, 1.0]) == pytest.approx(-1.0)
        assert trend_slope([2.0, 2.0, 2.0]) == pytest.approx(0.0)
        assert trend_slope([1.0]) == 0.0


class TestTextTable:
    def test_render(self):
        table = TextTable(["A", "Bee"])
        table.add_row(1, 2.5)
        table.add_row("long-cell", "x")
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.5000" in text
        assert "long-cell" in text
        assert len(table) == 2

    def test_cell_count_enforced(self):
        table = TextTable(["A"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)
