"""Tests for terminal chart rendering."""

import pytest

from repro.analysis.charts import _resample, series_chart, sparkline
from repro.analysis.series import BinnedSeries


class TestSparkline:
    def test_monotone_shape(self):
        spark = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert spark == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_fixed_scale(self):
        spark = sparkline([0.5], minimum=0.0, maximum=1.0)
        assert spark in "▄▅"

    def test_values_clamped_to_scale(self):
        spark = sparkline([2.0, -1.0], minimum=0.0, maximum=1.0)
        assert spark == "█▁"


class TestSeriesChart:
    def make(self, label, values, counts=None):
        return BinnedSeries(
            label=label, bin_size=10, values=values,
            counts=counts if counts is not None else [10] * len(values),
        )

    def test_renders_all_series(self):
        chart = series_chart(
            {
                "up": self.make("up", [0.0, 0.5, 1.0]),
                "down": self.make("down", [1.0, 0.5, 0.0]),
            }
        )
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("up")
        assert "[0.0000 .. 1.0000]" in lines[0]

    def test_empty_map(self):
        assert series_chart({}) == ""

    def test_empty_bins_dropped(self):
        series = self.make("x", [0.1, 0.2, 0.0, 0.0], counts=[5, 5, 0, 0])
        values = _resample(series, width=10)
        assert values == [0.1, 0.2]

    def test_resample_weighted_average(self):
        series = self.make("x", [0.0, 1.0], counts=[30, 10])
        values = _resample(series, width=1)
        assert values == [pytest.approx(0.25)]

    def test_resample_down_to_width(self):
        series = self.make("x", [float(i) for i in range(100)])
        values = _resample(series, width=10)
        assert len(values) == 10
        assert values == sorted(values)

    def test_shared_scale_differs_from_independent(self):
        small = self.make("small", [0.0, 0.01])
        large = self.make("large", [0.0, 1.0])
        shared = series_chart({"small": small, "large": large}, shared_scale=True)
        independent = series_chart(
            {"small": small, "large": large}, shared_scale=False
        )
        # Under a shared scale the small series is flat; independently
        # scaled it spans the full range.
        assert shared.splitlines()[0] != independent.splitlines()[0]
